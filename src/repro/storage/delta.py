"""Delta relations (δ+ and δ−).

The paper assumes every base relation ``r`` has two logged delta relations,
``δ+r`` (inserted tuples) and ``δ−r`` (deleted tuples), made available to the
view-refresh mechanism.  :class:`Delta` pairs those two bags for one base
relation; :class:`DeltaStore` holds the deltas of all relations involved in a
refresh and assigns the paper's update numbering (§5.2): updates are numbered
``1 .. 2n`` with odd numbers for inserts and even numbers for deletes,
ordered by the relation order, and propagated one at a time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.relation import Relation


class DeltaKind(enum.Enum):
    """Kind of a single-relation update: insertions or deletions."""

    INSERT = "insert"
    DELETE = "delete"

    @property
    def symbol(self) -> str:
        """The δ+/δ− rendering used in plan displays."""
        return "δ+" if self is DeltaKind.INSERT else "δ-"


@dataclass
class Delta:
    """The pair of delta relations for one base relation."""

    relation: str
    inserts: Relation
    deletes: Relation

    @property
    def is_empty(self) -> bool:
        """Whether neither inserts nor deletes are present."""
        return not len(self.inserts) and not len(self.deletes)

    def part(self, kind: DeltaKind) -> Relation:
        """The insert or delete bag."""
        return self.inserts if kind is DeltaKind.INSERT else self.deletes


@dataclass(frozen=True)
class UpdateId:
    """Identifies one of the ``2n`` single-relation updates of a refresh.

    The paper numbers updates ``1 .. 2n``; entry ``2i-1`` is the insert on
    relation ``R_i`` and entry ``2i`` the delete on ``R_i``.  ``number`` here
    follows that convention (1-based), while ``relation``/``kind`` carry the
    decoded meaning.  Update number ``0`` is reserved for "the full result".
    """

    number: int
    relation: str
    kind: DeltaKind

    def __str__(self) -> str:
        return f"{self.kind.symbol}{self.relation}"


class DeltaStore:
    """Deltas for all base relations touched by one refresh round.

    The relation order passed to the constructor defines the paper's update
    numbering and therefore the order in which updates are propagated
    ("one relation at a time, one type of update at a time", §3.1.1).
    """

    def __init__(self, relation_order: Sequence[str]) -> None:
        self._order: List[str] = list(relation_order)
        self._deltas: Dict[str, Delta] = {}

    @property
    def relation_order(self) -> List[str]:
        """Relations in propagation order."""
        return list(self._order)

    def set_delta(self, delta: Delta) -> None:
        """Record the delta for one relation (must be in the relation order)."""
        if delta.relation not in self._order:
            raise KeyError(f"relation {delta.relation!r} not part of this refresh")
        self._deltas[delta.relation] = delta

    def delta(self, relation: str) -> Optional[Delta]:
        """The delta for ``relation``, or ``None`` if it has no updates."""
        return self._deltas.get(relation)

    def relation_delta(self, relation: str, kind: DeltaKind) -> Relation:
        """The δ+ or δ− bag for ``relation`` (empty relation if absent)."""
        d = self._deltas.get(relation)
        if d is None:
            raise KeyError(f"no delta recorded for {relation!r}")
        return d.part(kind)

    def has_updates(self, relation: str, kind: Optional[DeltaKind] = None) -> bool:
        """Whether ``relation`` has any (or a specific kind of) updates."""
        d = self._deltas.get(relation)
        if d is None:
            return False
        if kind is None:
            return not d.is_empty
        return len(d.part(kind)) > 0

    # -------------------------------------------------------- update numbering

    def update_ids(self, only_nonempty: bool = False) -> List[UpdateId]:
        """The ``2n`` update ids in propagation order.

        With ``only_nonempty=True``, updates whose delta bag is empty (or
        whose relation has no recorded delta) are skipped, matching the
        optimizer's practice of flagging null differentials.
        """
        ids: List[UpdateId] = []
        for i, rel in enumerate(self._order):
            for offset, kind in ((1, DeltaKind.INSERT), (2, DeltaKind.DELETE)):
                number = 2 * i + offset
                if only_nonempty and not self.has_updates(rel, kind):
                    continue
                ids.append(UpdateId(number, rel, kind))
        return ids

    def update_id(self, relation: str, kind: DeltaKind) -> UpdateId:
        """The :class:`UpdateId` for a specific relation and kind."""
        i = self._order.index(relation)
        number = 2 * i + (1 if kind is DeltaKind.INSERT else 2)
        return UpdateId(number, relation, kind)

    def __iter__(self) -> Iterator[Delta]:
        for rel in self._order:
            if rel in self._deltas:
                yield self._deltas[rel]

    def __len__(self) -> int:
        return len(self._deltas)


def update_numbering(relations: Sequence[str]) -> List[UpdateId]:
    """Stand-alone helper producing the paper's ``1..2n`` update numbering."""
    store = DeltaStore(relations)
    return store.update_ids()
