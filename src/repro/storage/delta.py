"""Delta relations (δ+ and δ−).

The paper assumes every base relation ``r`` has two logged delta relations,
``δ+r`` (inserted tuples) and ``δ−r`` (deleted tuples), made available to the
view-refresh mechanism.  :class:`Delta` pairs those two bags for one base
relation; :class:`DeltaStore` holds the deltas of all relations involved in a
refresh and assigns the paper's update numbering (§5.2): updates are numbered
``1 .. 2n`` with odd numbers for inserts and even numbers for deletes,
ordered by the relation order, and propagated one at a time.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.relation import Relation, Row, multiset_subtract


class DeltaKind(enum.Enum):
    """Kind of a single-relation update: insertions or deletions."""

    INSERT = "insert"
    DELETE = "delete"

    @property
    def symbol(self) -> str:
        """The δ+/δ− rendering used in plan displays."""
        return "δ+" if self is DeltaKind.INSERT else "δ-"


@dataclass
class Delta:
    """The pair of delta relations for one base relation."""

    relation: str
    inserts: Relation
    deletes: Relation

    @property
    def is_empty(self) -> bool:
        """Whether neither inserts nor deletes are present."""
        return not len(self.inserts) and not len(self.deletes)

    @property
    def row_count(self) -> int:
        """Total tuples across both bags (the size the refresh must propagate)."""
        return len(self.inserts) + len(self.deletes)

    def part(self, kind: DeltaKind) -> Relation:
        """The insert or delete bag."""
        return self.inserts if kind is DeltaKind.INSERT else self.deletes


@dataclass(frozen=True)
class UpdateId:
    """Identifies one of the ``2n`` single-relation updates of a refresh.

    The paper numbers updates ``1 .. 2n``; entry ``2i-1`` is the insert on
    relation ``R_i`` and entry ``2i`` the delete on ``R_i``.  ``number`` here
    follows that convention (1-based), while ``relation``/``kind`` carry the
    decoded meaning.  Update number ``0`` is reserved for "the full result".
    """

    number: int
    relation: str
    kind: DeltaKind

    def __str__(self) -> str:
        return f"{self.kind.symbol}{self.relation}"


class DeltaStore:
    """Deltas for all base relations touched by one refresh round.

    The relation order passed to the constructor defines the paper's update
    numbering and therefore the order in which updates are propagated
    ("one relation at a time, one type of update at a time", §3.1.1).
    """

    def __init__(self, relation_order: Sequence[str]) -> None:
        self._order: List[str] = list(relation_order)
        self._deltas: Dict[str, Delta] = {}

    @property
    def relation_order(self) -> List[str]:
        """Relations in propagation order."""
        return list(self._order)

    def set_delta(self, delta: Delta) -> None:
        """Record the delta for one relation (must be in the relation order)."""
        if delta.relation not in self._order:
            raise KeyError(f"relation {delta.relation!r} not part of this refresh")
        self._deltas[delta.relation] = delta

    def add_relation(self, relation: str) -> None:
        """Append a relation to the propagation order if not present yet.

        Used by consumers that grow a store incrementally (the stream
        pending buffer absorbing rounds that touch new relations).
        """
        if relation not in self._order:
            self._order.append(relation)

    def delta(self, relation: str) -> Optional[Delta]:
        """The delta for ``relation``, or ``None`` if it has no updates."""
        return self._deltas.get(relation)

    def relation_delta(self, relation: str, kind: DeltaKind) -> Relation:
        """The δ+ or δ− bag for ``relation`` (empty relation if absent)."""
        d = self._deltas.get(relation)
        if d is None:
            raise KeyError(f"no delta recorded for {relation!r}")
        return d.part(kind)

    def has_updates(self, relation: str, kind: Optional[DeltaKind] = None) -> bool:
        """Whether ``relation`` has any (or a specific kind of) updates."""
        d = self._deltas.get(relation)
        if d is None:
            return False
        if kind is None:
            return not d.is_empty
        return len(d.part(kind)) > 0

    # -------------------------------------------------------- update numbering

    def update_ids(self, only_nonempty: bool = False) -> List[UpdateId]:
        """The ``2n`` update ids in propagation order.

        With ``only_nonempty=True``, updates whose delta bag is empty (or
        whose relation has no recorded delta) are skipped, matching the
        optimizer's practice of flagging null differentials.
        """
        ids: List[UpdateId] = []
        for i, rel in enumerate(self._order):
            for offset, kind in ((1, DeltaKind.INSERT), (2, DeltaKind.DELETE)):
                number = 2 * i + offset
                if only_nonempty and not self.has_updates(rel, kind):
                    continue
                ids.append(UpdateId(number, rel, kind))
        return ids

    def update_id(self, relation: str, kind: DeltaKind) -> UpdateId:
        """The :class:`UpdateId` for a specific relation and kind."""
        i = self._order.index(relation)
        number = 2 * i + (1 if kind is DeltaKind.INSERT else 2)
        return UpdateId(number, relation, kind)

    def total_rows(self) -> int:
        """Total tuples across every relation's insert and delete bags."""
        return sum(delta.row_count for delta in self._deltas.values())

    def delta_sizes(self) -> Dict[str, Tuple[int, int]]:
        """Per-relation ``(inserts, deletes)`` bag sizes, in propagation order."""
        return {
            rel: (len(self._deltas[rel].inserts), len(self._deltas[rel].deletes))
            for rel in self._order
            if rel in self._deltas
        }

    def __iter__(self) -> Iterator[Delta]:
        for rel in self._order:
            if rel in self._deltas:
                yield self._deltas[rel]

    def __len__(self) -> int:
        return len(self._deltas)


def update_numbering(relations: Sequence[str]) -> List[UpdateId]:
    """Stand-alone helper producing the paper's ``1..2n`` update numbering."""
    store = DeltaStore(relations)
    return store.update_ids()


# ----------------------------------------------------------------- coalescing

@dataclass
class CoalesceOutcome:
    """Result of composing two consecutive deltas of one relation."""

    delta: Delta
    #: Tuples that annihilated: rows inserted by the earlier delta and deleted
    #: again by the later one (counted with multiplicity).  They vanish from
    #: both bags — the refresh never sees them.
    annihilated: int


def coalesce_delta(earlier: Delta, later: Delta) -> CoalesceOutcome:
    """Compose two consecutive single-relation deltas into one.

    For any base bag ``R`` with ``earlier = (i₁, d₁)`` applied before
    ``later = (i₂, d₂)``, the coalesced delta ``(I, D)`` satisfies

        ((R − d₁) ∪ i₁ − d₂) ∪ i₂  ==  (R − D) ∪ I        (bag equality)

    with the standard composition: later deletes first cancel against
    still-pending earlier inserts (insert-then-delete annihilates — those
    tuples never existed as far as any view is concerned), the remainder
    joins the delete bag:

        I = (i₁ − d₂) ∪ i₂
        D = d₁ ∪ (d₂ − i₁)

    Delete-then-insert is deliberately *not* cancelled: ``d₁`` rows stay in
    ``D`` even when ``i₂`` re-inserts equal tuples, preserving the multiset
    accounting without assuming anything about ``R``'s contents.

    Both bags are composed with counted multiset semantics (one cancellation
    per matching copy), vectorized over the row lists with a single
    :class:`collections.Counter` pass per bag.
    """
    if earlier.relation != later.relation:
        raise ValueError(
            f"cannot coalesce deltas of different relations "
            f"{earlier.relation!r} and {later.relation!r}"
        )
    # Stream both deltas through iter_rows: store-backed bags (vectorized
    # operator outputs) coalesce without ever caching a row-list copy.
    pending_inserts: "Counter[Row]" = Counter(earlier.inserts.iter_rows())
    # d₂ splits into the part that cancels pending inserts and the rest.
    cancelled: "Counter[Row]" = Counter()
    surviving_deletes: List[Row] = []
    for row in later.deletes.iter_rows():
        if pending_inserts[row] - cancelled[row] > 0:
            cancelled[row] += 1
        else:
            surviving_deletes.append(row)
    # i₁ minus the cancelled copies, then i₂ appended.
    kept_inserts = multiset_subtract(earlier.inserts.iter_rows(), cancelled.elements())
    kept_inserts.extend(later.inserts.iter_rows())

    schema = earlier.inserts.schema
    inserts = Relation.from_trusted_rows(schema, kept_inserts, earlier.inserts.name)
    surviving_deletes[:0] = earlier.deletes.iter_rows()
    deletes = Relation.from_trusted_rows(
        earlier.deletes.schema,
        surviving_deletes,
        earlier.deletes.name,
    )
    annihilated = sum(cancelled.values())
    return CoalesceOutcome(Delta(earlier.relation, inserts, deletes), annihilated)


def merge_delta_sizes(
    *size_maps: "Dict[str, Tuple[int, int]]",
) -> Dict[str, Tuple[int, int]]:
    """Element-wise sum of per-relation ``(inserts, deletes)`` size maps.

    First-appearance order is preserved — callers that derive an update
    numbering from the result (e.g. ``Warehouse._spec_of``) rely on it.
    """
    merged: Dict[str, Tuple[int, int]] = {}
    for sizes in size_maps:
        for relation, (inserts, deletes) in sizes.items():
            have = merged.get(relation, (0, 0))
            merged[relation] = (have[0] + inserts, have[1] + deletes)
    return merged


def merge_round(merged: DeltaStore, deltas: Iterable[Delta]) -> int:
    """Compose one round's deltas into ``merged`` in place.

    Each relation delta either lands verbatim (bags copied — the caller
    keeps ownership of the incoming round) or is coalesced onto the
    relation's pending delta via :func:`coalesce_delta`; relations the
    round does not touch are never re-copied.  Returns the number of
    tuples annihilated by this round.
    """
    annihilated = 0
    for delta in deltas:
        merged.add_relation(delta.relation)
        pending = merged.delta(delta.relation)
        if pending is None:
            merged.set_delta(
                Delta(delta.relation, delta.inserts.copy(), delta.deletes.copy())
            )
            continue
        if not len(delta.deletes):
            # Nothing can cancel: append in place to the owned bags instead
            # of re-scanning everything pending — this keeps insert-heavy
            # sessions O(arrived rows) per tick rather than O(pending).
            pending.inserts.extend(delta.inserts.iter_rows())
            continue
        outcome = coalesce_delta(pending, delta)
        annihilated += outcome.annihilated
        merged.set_delta(outcome.delta)
    return annihilated


def coalesce_stores(rounds: Sequence[DeltaStore]) -> Tuple[DeltaStore, int]:
    """Fold a sequence of update rounds into one coalesced :class:`DeltaStore`.

    The relation order of the first round wins (relations appearing only in
    later rounds are appended); returns the coalesced store plus the total
    number of annihilated tuples across all relations.
    """
    if not rounds:
        raise ValueError("cannot coalesce an empty sequence of rounds")
    merged = DeltaStore(rounds[0].relation_order)
    annihilated = 0
    for store in rounds:
        annihilated += merge_round(merged, store)
    return merged, annihilated
