"""Bag-relational storage layer.

Provides the multiset :class:`Relation` the execution engine operates on
(backed by pluggable column stores — numpy typed arrays when available, a
pure-Python tuple fallback otherwise; see ``repro.storage.columns``), delta
relations capturing inserts and deletes (the paper's δ+ and δ−), in-memory
hash and sorted indexes, and a buffer-pool descriptor consumed by the cost
model.
"""

from repro.storage.columns import (
    PythonColumnStore,
    active_backend,
    available_backends,
    forced_backend,
    numpy_enabled,
    set_active_backend,
)
from repro.storage.relation import Relation
from repro.storage.delta import Delta, DeltaKind, DeltaStore
from repro.storage.index import HashIndex, SortedIndex, build_index
from repro.storage.buffer import BufferPool

__all__ = [
    "Relation",
    "PythonColumnStore",
    "active_backend",
    "available_backends",
    "forced_backend",
    "numpy_enabled",
    "set_active_backend",
    "Delta",
    "DeltaKind",
    "DeltaStore",
    "HashIndex",
    "SortedIndex",
    "build_index",
    "BufferPool",
]
