"""Pluggable column storage backends.

A :class:`~repro.storage.relation.Relation`'s authoritative storage is a
*column store*: one contiguous array per schema column.  Two interchangeable
backends implement the same store protocol:

* :class:`NumpyColumnStore` — typed ``numpy`` arrays (``int64`` for pure-int
  columns, ``float64`` for pure-float columns, ``object`` for everything
  else: strings, dates, ``None``-bearing or mixed-type columns).  Typed
  columns are what the vectorized operator kernels in
  ``repro.engine.operators`` run whole-column mask/gather/reduce passes
  over.
* :class:`PythonColumnStore` — plain tuples of Python values.  Functionally
  identical, no third-party dependency; selected automatically when numpy
  is not importable so the engine (and tier-1 tests) keep working without
  it.

The backend is chosen once at import time — numpy if available, the Python
fallback otherwise — and can be forced with the ``REPRO_BACKEND``
environment variable (``numpy`` or ``python``) or, for tests, swapped at
runtime via :func:`set_active_backend` / :func:`forced_backend`.

Two invariants every store upholds, because the engine's correctness oracle
compares plain Python tuples:

* ``to_rows``/``iter_rows``/``column_native`` always yield *native* Python
  values (``int``, ``float``, ``str``, ...), never numpy scalars —
  ``np.int64`` is not an ``int`` subclass, and letting it leak into row
  tuples would silently change aggregate and statistics semantics.
* Columns mixing ``int`` and ``float`` stay ``object`` dtype: coercing to
  ``float64`` would turn ``5`` into ``5.0``, changing SUM results from
  ``int`` to ``float`` and breaking bag equality against the row oracle.

Stores are treated as immutable: every operation returns a new store (array
views may be shared — no store ever writes to an array it handed out).
"""

from __future__ import annotations

import contextlib
import operator as _operator
import os
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
)

Row = Tuple[Any, ...]

try:  # pragma: no cover - exercised indirectly via both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: The numpy module, or ``None`` when unavailable (import-time fallback).
numpy = _numpy

_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "==": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


class ColumnStore(Protocol):
    """The store protocol both backends implement (structural typing).

    A store holds one array per schema column for a fixed row count and is
    immutable: every operation returns a new store.  ``column`` may hand out
    backend-native arrays (numpy dtypes on the vectorized path);
    ``column_native``/``to_rows``/``iter_rows`` always yield plain Python
    values — see the module invariants.
    """

    kind: str

    @classmethod
    def from_rows(cls, rows: Sequence[Row], arity: int) -> "ColumnStore": ...

    @classmethod
    def from_columns(
        cls, columns: Sequence[Sequence[Any]], arity: int
    ) -> "ColumnStore": ...

    def __len__(self) -> int: ...

    @property
    def arity(self) -> int: ...

    def column(self, position: int) -> Sequence[Any]: ...

    def column_native(self, position: int) -> Tuple[Any, ...]: ...

    def to_rows(self) -> List[Row]: ...

    def iter_rows(self) -> Iterator[Row]: ...

    def take(self, positions: Sequence[int]) -> "ColumnStore": ...

    def gather(self, indices: Sequence[int]) -> "ColumnStore": ...

    def mask(self, keep: Sequence[bool]) -> "ColumnStore": ...

    def concat(self, other: Any) -> "ColumnStore": ...

    def hstack(self, other: Any) -> "ColumnStore": ...


class PythonColumnStore:
    """Column store backed by plain Python tuples (the no-dependency path)."""

    kind = "python"

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Sequence[Sequence[Any]], length: Optional[int] = None) -> None:
        self._columns: Tuple[Tuple[Any, ...], ...] = tuple(
            column if isinstance(column, tuple) else tuple(column) for column in columns
        )
        if length is None:
            length = len(self._columns[0]) if self._columns else 0
        self._length = length

    # --------------------------------------------------------- constructors

    @classmethod
    def from_rows(cls, rows: Sequence[Row], arity: int) -> "PythonColumnStore":
        if not rows:
            return cls(tuple(() for _ in range(arity)), 0)
        return cls(tuple(zip(*rows)), len(rows))

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[Any]], arity: int) -> "PythonColumnStore":
        return cls(columns)

    # --------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._length

    @property
    def arity(self) -> int:
        return len(self._columns)

    def column(self, position: int) -> Tuple[Any, ...]:
        return self._columns[position]

    def column_native(self, position: int) -> Tuple[Any, ...]:
        return self._columns[position]

    def to_rows(self) -> List[Row]:
        if not self._columns:
            return [()] * self._length
        return list(zip(*self._columns))

    def iter_rows(self) -> Iterator[Row]:
        if not self._columns:
            return iter([()] * self._length)
        return zip(*self._columns)

    # ----------------------------------------------------------- operations

    def take(self, positions: Sequence[int]) -> "PythonColumnStore":
        """Column subset (projection); shares the column tuples."""
        return PythonColumnStore(
            tuple(self._columns[p] for p in positions), self._length
        )

    def gather(self, indices: Sequence[int]) -> "PythonColumnStore":
        """Row subset by index list."""
        return PythonColumnStore(
            tuple(tuple(column[i] for i in indices) for column in self._columns),
            len(indices),
        )

    def mask(self, keep: Sequence[bool]) -> "PythonColumnStore":
        """Row subset by boolean mask."""
        count = sum(1 for flag in keep if flag)
        return PythonColumnStore(
            tuple(
                tuple(v for v, flag in zip(column, keep) if flag)
                for column in self._columns
            ),
            count,
        )

    def concat(self, other: "PythonColumnStore") -> "PythonColumnStore":
        """Vertical concatenation (bag union)."""
        return PythonColumnStore(
            tuple(a + b for a, b in zip(self._columns, other._columns)),
            self._length + other._length,
        )

    def hstack(self, other: "PythonColumnStore") -> "PythonColumnStore":
        """Horizontal concatenation (join output assembly)."""
        return PythonColumnStore(self._columns + other._columns, self._length)

    def partition(self, shard_ids: Sequence[int], shards: int) -> List["PythonColumnStore"]:
        """Split rows into ``shards`` stores by per-row shard id.

        Every row lands in exactly one output store (``shard_ids[i]`` names
        it); empty shards come back as empty stores, so the concatenation of
        all outputs is a permutation of the input bag.
        """
        buckets: List[List[int]] = [[] for _ in range(shards)]
        for position, shard in enumerate(shard_ids):
            buckets[shard].append(position)
        return [self.gather(bucket) for bucket in buckets]

    @classmethod
    def concat_many(cls, stores: Sequence["PythonColumnStore"]) -> "PythonColumnStore":
        """Vertical concatenation of several stores (bag union of shards)."""
        if not stores:
            raise ValueError("concat_many needs at least one store")
        if len(stores) == 1:
            return stores[0]
        columns = tuple(
            tuple(v for store in stores for v in store._columns[p])
            for p in range(stores[0].arity)
        )
        return cls(columns, sum(len(store) for store in stores))


def _typed_array(values: Sequence[Any]) -> Any:
    """Infer the tightest array for ``values`` (see module invariants).

    Pure-``int`` columns land in ``int64`` (falling back to ``object`` when a
    value overflows 64 bits), pure-``float`` columns in ``float64``; any
    other mix — strings, ``None``, ``bool``, dates, int/float blends — keeps
    native objects so no value is coerced.
    """
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            return _numpy.array(values, dtype=_numpy.int64)
        except OverflowError:
            pass
    elif kinds == {float}:
        return _numpy.array(values, dtype=_numpy.float64)
    array = _numpy.empty(len(values), dtype=object)
    array[:] = values
    return array


class NumpyColumnStore:
    """Column store backed by numpy arrays (the vectorized path)."""

    kind = "numpy"

    __slots__ = ("_arrays", "_length")

    def __init__(self, arrays: Sequence[Any], length: Optional[int] = None) -> None:
        self._arrays: Tuple[Any, ...] = tuple(arrays)
        if length is None:
            length = len(self._arrays[0]) if self._arrays else 0
        self._length = length

    # --------------------------------------------------------- constructors

    @classmethod
    def from_rows(cls, rows: Sequence[Row], arity: int) -> "NumpyColumnStore":
        if not rows:
            return cls(
                tuple(_numpy.empty(0, dtype=object) for _ in range(arity)), 0
            )
        columns = zip(*rows)
        return cls(tuple(_typed_array(list(column)) for column in columns), len(rows))

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[Any]], arity: int) -> "NumpyColumnStore":
        length = len(columns[0]) if columns else 0
        return cls(tuple(_typed_array(list(column)) for column in columns), length)

    # --------------------------------------------------------------- access

    def __len__(self) -> int:
        return self._length

    @property
    def arity(self) -> int:
        return len(self._arrays)

    def column(self, position: int) -> Any:
        """The raw backing array (numpy dtype — engine-internal use only)."""
        return self._arrays[position]

    def column_native(self, position: int) -> Tuple[Any, ...]:
        """One column as native Python values (``tolist`` unboxes scalars)."""
        return tuple(self._arrays[position].tolist())

    def to_rows(self) -> List[Row]:
        if not self._arrays:
            return [()] * self._length
        return list(zip(*(array.tolist() for array in self._arrays)))

    def iter_rows(self) -> Iterator[Row]:
        if not self._arrays:
            return iter([()] * self._length)
        return zip(*(array.tolist() for array in self._arrays))

    # ----------------------------------------------------------- operations

    def take(self, positions: Sequence[int]) -> "NumpyColumnStore":
        """Column subset (projection); shares the backing arrays."""
        return NumpyColumnStore(
            tuple(self._arrays[p] for p in positions), self._length
        )

    def gather(self, indices: Any) -> "NumpyColumnStore":
        """Row subset by fancy-index array."""
        return NumpyColumnStore(
            tuple(array[indices] for array in self._arrays), int(len(indices))
        )

    def mask(self, keep: Any) -> "NumpyColumnStore":
        """Row subset by boolean mask (ndarray or any bool sequence)."""
        keep = _numpy.asarray(keep, dtype=bool)
        arrays = tuple(array[keep] for array in self._arrays)
        length = len(arrays[0]) if arrays else int(_numpy.count_nonzero(keep))
        return NumpyColumnStore(arrays, length)

    def concat(self, other: "NumpyColumnStore") -> "NumpyColumnStore":
        """Vertical concatenation preserving per-column value semantics.

        Same-dtype typed columns concatenate directly; anything else is
        rebuilt from native values and re-inferred, so an ``int64`` column
        meeting a ``float64`` one degrades to ``object`` instead of silently
        coercing the ints.
        """
        arrays = []
        for a, b in zip(self._arrays, other._arrays):
            if a.dtype == b.dtype and a.dtype != object:
                arrays.append(_numpy.concatenate((a, b)))
            else:
                arrays.append(_typed_array(a.tolist() + b.tolist()))
        return NumpyColumnStore(tuple(arrays), self._length + other._length)

    def hstack(self, other: "NumpyColumnStore") -> "NumpyColumnStore":
        """Horizontal concatenation (join output assembly)."""
        return NumpyColumnStore(self._arrays + other._arrays, self._length)

    def partition(self, shard_ids: Any, shards: int) -> List["NumpyColumnStore"]:
        """Split rows into ``shards`` stores by per-row shard id (vectorized).

        One boolean mask per shard over the typed arrays; rows never leave
        columnar form, so shard-local execution keeps the numpy fast paths.
        """
        ids = _numpy.asarray(shard_ids, dtype=_numpy.int64)
        return [self.mask(ids == shard) for shard in range(shards)]

    @classmethod
    def concat_many(cls, stores: Sequence["NumpyColumnStore"]) -> "NumpyColumnStore":
        """Vertical concatenation of several stores (bag union of shards).

        Columns whose dtypes agree across every shard concatenate directly;
        mixed dtypes (one shard inferred ``int64`` where another saw floats)
        are rebuilt from native values and re-inferred, exactly as a
        single-store build over the merged rows would have typed them.
        """
        if not stores:
            raise ValueError("concat_many needs at least one store")
        if len(stores) == 1:
            return stores[0]
        length = sum(len(store) for store in stores)
        arrays = []
        for p in range(stores[0].arity):
            columns = [store._arrays[p] for store in stores]
            dtypes = {column.dtype for column in columns}
            if len(dtypes) == 1 and columns[0].dtype != object:
                arrays.append(_numpy.concatenate(columns))
            else:
                merged: List[Any] = []
                for column in columns:
                    merged.extend(column.tolist())
                arrays.append(_typed_array(merged))
        return cls(tuple(arrays), length)

    # --------------------------------------------- predicate vector protocol

    def full_mask(self, value: bool) -> Any:
        """A constant boolean mask over every row."""
        return _numpy.full(self._length, bool(value))

    def compare_literal(
        self, position: int, op: str, value: Any, reverse: bool = False
    ) -> Any:
        """Column-vs-literal comparison mask (``None`` cells never match)."""
        array = self._arrays[position]
        op_fn = _OPS[op]
        if array.dtype == object:
            if reverse:
                cells = (v is not None and op_fn(value, v) for v in array)
            else:
                cells = (v is not None and op_fn(v, value) for v in array)
            return _numpy.fromiter(cells, dtype=bool, count=self._length)
        result = op_fn(value, array) if reverse else op_fn(array, value)
        if not isinstance(result, _numpy.ndarray):
            # Cross-type ==/!= comparisons collapse to a scalar; broadcast.
            return _numpy.full(self._length, bool(result))
        return result

    def compare_columns(
        self, left_position: int, op: str, right_position: int
    ) -> Any:
        """Column-vs-column comparison mask (``None`` cells never match)."""
        a = self._arrays[left_position]
        b = self._arrays[right_position]
        op_fn = _OPS[op]
        if a.dtype == object or b.dtype == object:
            cells = (
                x is not None and y is not None and op_fn(x, y)
                for x, y in zip(a.tolist(), b.tolist())
            )
            return _numpy.fromiter(cells, dtype=bool, count=self._length)
        result = op_fn(a, b)
        if not isinstance(result, _numpy.ndarray):
            return _numpy.full(self._length, bool(result))
        return result

    def rowwise_mask(self, fn: Callable[[Row], bool]) -> Any:
        """Mask from an arbitrary compiled row predicate (escape hatch)."""
        return _numpy.fromiter(
            (fn(row) for row in self.iter_rows()), dtype=bool, count=self._length
        )


# -------------------------------------------------------------- backend choice

_BACKENDS: Dict[str, Type[Any]] = {"python": PythonColumnStore}
if _numpy is not None:
    _BACKENDS["numpy"] = NumpyColumnStore


def _initial_backend() -> Type[Any]:
    forced = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if forced:
        if forced not in ("python", "numpy"):
            raise ValueError(
                f"REPRO_BACKEND={forced!r} not recognized (use 'numpy' or 'python')"
            )
        if forced == "numpy" and _numpy is None:
            raise RuntimeError("REPRO_BACKEND=numpy requested but numpy is not importable")
        return _BACKENDS[forced]
    return _BACKENDS.get("numpy", PythonColumnStore)


_ACTIVE = _initial_backend()


def active_backend() -> Type[Any]:
    """The store class relations build columns with (numpy when available)."""
    return _ACTIVE


def numpy_enabled() -> bool:
    """Whether the vectorized kernels may run (active backend is numpy)."""
    return _ACTIVE.kind == "numpy"


def set_active_backend(name: str) -> None:
    """Switch the backend at runtime (tests and the benchmark harness)."""
    if name not in _BACKENDS:
        available = ", ".join(sorted(_BACKENDS))
        raise ValueError(f"unknown backend {name!r} (available: {available})")
    global _ACTIVE
    _ACTIVE = _BACKENDS[name]


def available_backends() -> Tuple[str, ...]:
    """Backend names importable in this environment."""
    return tuple(sorted(_BACKENDS))


@contextlib.contextmanager
def forced_backend(name: str) -> Iterator[Type[Any]]:
    """Context manager pinning the active backend (restores on exit)."""
    previous = _ACTIVE.kind
    set_active_backend(name)
    try:
        yield _BACKENDS[name]
    finally:
        set_active_backend(previous)
