"""In-memory indexes.

Two access methods back the optimizer's index choices: a hash index (equality
lookups) and a sorted index (equality + range lookups, and a sort order the
optimizer can exploit as a physical property).  Indexes are built over a
:class:`~repro.storage.relation.Relation` and return row positions, so the
same index structure serves both base tables and materialized views.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.storage.relation import Relation, Row

Key = Tuple[Any, ...]


def _column_keys(relation: Relation, positions: Sequence[int]) -> Iterator[Key]:
    """Key tuples over ``positions``, built column-at-a-time.

    One pass over the pre-extracted key columns instead of indexing into
    every row tuple — and for store-backed relations it never materializes
    the row list at all.
    """
    return zip(*(relation.column_at(i) for i in positions))


class HashIndex:
    """Equality index mapping key tuples to lists of row positions."""

    kind = "hash"

    def __init__(self, relation: Relation, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        self._positions = relation.schema.positions(columns)
        self._relation = relation
        self._buckets: Dict[Key, List[int]] = {}
        for pos, key in enumerate(_column_keys(relation, self._positions)):
            self._buckets.setdefault(key, []).append(pos)

    def _key(self, row: Row) -> Key:
        return tuple(row[i] for i in self._positions)

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose indexed columns equal ``key``."""
        positions = self._buckets.get(tuple(key), [])
        rows = self._relation.rows
        return [rows[p] for p in positions]

    def lookup_positions(self, key: Sequence[Any]) -> List[int]:
        """Row positions matching ``key`` (used by delete maintenance)."""
        return list(self._buckets.get(tuple(key), []))

    # ------------------------------------------------------ delta maintenance

    def retarget(self, relation: Relation) -> None:
        """Point the index at a replacement relation with identical rows.

        Used when an update produced a new :class:`Relation` object without
        changing the bag (e.g. a delete bag that matched nothing) — positions
        stay valid, only the backing object changes.
        """
        self._relation = relation

    def apply_insert(self, relation: Relation, start: int) -> None:
        """Index the rows appended at ``relation.rows[start:]``.

        ``relation`` must hold the previous contents unchanged in positions
        ``0..start-1`` (how :meth:`Database.apply_update` builds insert
        results), so existing entries stay valid and only the appended rows
        are hashed.
        """
        self._relation = relation
        rows = relation.rows
        for pos in range(start, len(rows)):
            self._buckets.setdefault(self._key(rows[pos]), []).append(pos)

    def apply_delete(self, relation: Relation, old_to_new: Sequence[Optional[int]]) -> None:
        """Remap the index after rows were deleted.

        ``old_to_new[p]`` is the deleted rows' position translation: the new
        position of the row formerly at ``p``, or ``None`` if it was removed.
        No key is re-hashed — buckets are remapped in place, which is the
        whole point of maintaining instead of rebuilding.
        """
        self._relation = relation
        for key in list(self._buckets):
            positions = self._buckets[key]
            remapped = [old_to_new[p] for p in positions]
            kept = [p for p in remapped if p is not None]
            if kept:
                self._buckets[key] = kept
            else:
                del self._buckets[key]

    def __contains__(self, key: Sequence[Any]) -> bool:
        return tuple(key) in self._buckets

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values (feeds cardinality estimation)."""
        return len(self._buckets)


class SortedIndex:
    """Sorted (B-tree-like) index supporting equality and range lookups."""

    kind = "btree"

    def __init__(self, relation: Relation, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        self._positions = relation.schema.positions(columns)
        self._relation = relation
        entries = sorted(
            ((key, pos) for pos, key in enumerate(_column_keys(relation, self._positions))),
            key=lambda kp: kp[0],
        )
        self._keys: List[Key] = [k for k, _ in entries]
        self._rowpos: List[int] = [p for _, p in entries]

    def _key(self, row: Row) -> Key:
        return tuple(row[i] for i in self._positions)

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose indexed columns equal ``key``."""
        key = tuple(key)
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        rows = self._relation.rows
        return [rows[self._rowpos[i]] for i in range(lo, hi)]

    def prefix_lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose leading indexed columns equal ``key``.

        Unlike :meth:`lookup`, the probe key may cover only a prefix of the
        index's columns — the sorted order makes the matching run contiguous.
        """
        key = tuple(key)
        width = len(key)
        if width == len(self.columns):
            return self.lookup(key)
        rows = self._relation.rows
        out: List[Row] = []
        for i in range(bisect.bisect_left(self._keys, key), len(self._keys)):
            if self._keys[i][:width] != key:
                break
            out.append(rows[self._rowpos[i]])
        return out

    def range(
        self,
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Row]:
        """Rows whose key lies in the (possibly half-open) range [low, high]."""
        lo = 0
        hi = len(self._keys)
        if low is not None:
            low = tuple(low)
            lo = bisect.bisect_left(self._keys, low) if include_low else bisect.bisect_right(self._keys, low)
        if high is not None:
            high = tuple(high)
            hi = bisect.bisect_right(self._keys, high) if include_high else bisect.bisect_left(self._keys, high)
        rows = self._relation.rows
        return [rows[self._rowpos[i]] for i in range(lo, hi)]

    # ------------------------------------------------------ delta maintenance

    def retarget(self, relation: Relation) -> None:
        """Point the index at a replacement relation with identical rows."""
        self._relation = relation

    def apply_insert(self, relation: Relation, start: int) -> None:
        """Index the rows appended at ``relation.rows[start:]``.

        Each new ``(key, position)`` entry is spliced into the sorted arrays
        at its insertion point — O(δ·n) list splicing, which beats the
        O(n log n) re-sort while the delta stays a small fraction of the
        relation (the database layer falls back to a rebuild beyond that).
        """
        self._relation = relation
        rows = relation.rows
        for pos in range(start, len(rows)):
            key = self._key(rows[pos])
            at = bisect.bisect_right(self._keys, key)
            self._keys.insert(at, key)
            self._rowpos.insert(at, pos)

    def apply_delete(self, relation: Relation, old_to_new: Sequence[Optional[int]]) -> None:
        """Remap the index after rows were deleted.

        Entries of removed rows are dropped and surviving positions
        translated; the key order is untouched, so no re-sort happens.
        """
        self._relation = relation
        keys: List[Key] = []
        rowpos: List[int] = []
        for key, pos in zip(self._keys, self._rowpos):
            new_pos = old_to_new[pos]
            if new_pos is not None:
                keys.append(key)
                rowpos.append(new_pos)
        self._keys = keys
        self._rowpos = rowpos

    def scan_sorted(self) -> Iterator[Row]:
        """Yield all rows in key order (gives the optimizer a sort order)."""
        rows = self._relation.rows
        for pos in self._rowpos:
            yield rows[pos]

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values."""
        distinct = 0
        previous: Optional[Key] = None
        for key in self._keys:
            if key != previous:
                distinct += 1
                previous = key
        return distinct


def build_index(relation: Relation, columns: Sequence[str], kind: str = "hash"):
    """Build an index of the requested ``kind`` over ``columns``."""
    if kind == "hash":
        return HashIndex(relation, columns)
    if kind in ("btree", "sorted"):
        return SortedIndex(relation, columns)
    raise ValueError(f"unknown index kind {kind!r}")
