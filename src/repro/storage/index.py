"""In-memory indexes.

Two access methods back the optimizer's index choices: a hash index (equality
lookups) and a sorted index (equality + range lookups, and a sort order the
optimizer can exploit as a physical property).  Indexes are built over a
:class:`~repro.storage.relation.Relation` and return row positions, so the
same index structure serves both base tables and materialized views.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.storage.relation import Relation, Row

Key = Tuple[Any, ...]


class HashIndex:
    """Equality index mapping key tuples to lists of row positions."""

    kind = "hash"

    def __init__(self, relation: Relation, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        self._positions = relation.schema.positions(columns)
        self._relation = relation
        self._buckets: Dict[Key, List[int]] = {}
        for pos, row in enumerate(relation.rows):
            self._buckets.setdefault(self._key(row), []).append(pos)

    def _key(self, row: Row) -> Key:
        return tuple(row[i] for i in self._positions)

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose indexed columns equal ``key``."""
        positions = self._buckets.get(tuple(key), [])
        rows = self._relation.rows
        return [rows[p] for p in positions]

    def lookup_positions(self, key: Sequence[Any]) -> List[int]:
        """Row positions matching ``key`` (used by delete maintenance)."""
        return list(self._buckets.get(tuple(key), []))

    def __contains__(self, key: Sequence[Any]) -> bool:
        return tuple(key) in self._buckets

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values (feeds cardinality estimation)."""
        return len(self._buckets)


class SortedIndex:
    """Sorted (B-tree-like) index supporting equality and range lookups."""

    kind = "btree"

    def __init__(self, relation: Relation, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        self._positions = relation.schema.positions(columns)
        self._relation = relation
        entries = sorted(
            ((self._key(row), pos) for pos, row in enumerate(relation.rows)),
            key=lambda kp: kp[0],
        )
        self._keys: List[Key] = [k for k, _ in entries]
        self._rowpos: List[int] = [p for _, p in entries]

    def _key(self, row: Row) -> Key:
        return tuple(row[i] for i in self._positions)

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose indexed columns equal ``key``."""
        key = tuple(key)
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        rows = self._relation.rows
        return [rows[self._rowpos[i]] for i in range(lo, hi)]

    def prefix_lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose leading indexed columns equal ``key``.

        Unlike :meth:`lookup`, the probe key may cover only a prefix of the
        index's columns — the sorted order makes the matching run contiguous.
        """
        key = tuple(key)
        width = len(key)
        if width == len(self.columns):
            return self.lookup(key)
        rows = self._relation.rows
        out: List[Row] = []
        for i in range(bisect.bisect_left(self._keys, key), len(self._keys)):
            if self._keys[i][:width] != key:
                break
            out.append(rows[self._rowpos[i]])
        return out

    def range(
        self,
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Row]:
        """Rows whose key lies in the (possibly half-open) range [low, high]."""
        lo = 0
        hi = len(self._keys)
        if low is not None:
            low = tuple(low)
            lo = bisect.bisect_left(self._keys, low) if include_low else bisect.bisect_right(self._keys, low)
        if high is not None:
            high = tuple(high)
            hi = bisect.bisect_right(self._keys, high) if include_high else bisect.bisect_left(self._keys, high)
        rows = self._relation.rows
        return [rows[self._rowpos[i]] for i in range(lo, hi)]

    def scan_sorted(self) -> Iterator[Row]:
        """Yield all rows in key order (gives the optimizer a sort order)."""
        rows = self._relation.rows
        for pos in self._rowpos:
            yield rows[pos]

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def distinct_keys(self) -> int:
        """Number of distinct key values."""
        distinct = 0
        previous: Optional[Key] = None
        for key in self._keys:
            if key != previous:
                distinct += 1
                previous = key
        return distinct


def build_index(relation: Relation, columns: Sequence[str], kind: str = "hash"):
    """Build an index of the requested ``kind`` over ``columns``."""
    if kind == "hash":
        return HashIndex(relation, columns)
    if kind in ("btree", "sorted"):
        return SortedIndex(relation, columns)
    raise ValueError(f"unknown index kind {kind!r}")
