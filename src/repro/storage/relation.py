"""Multiset (bag) relations.

The paper works in the multiset relational algebra: relations may contain
duplicate tuples, unions keep duplicates, and differences remove one matching
copy per deleted tuple.  :class:`Relation` implements exactly those
semantics, which the differential-maintenance tests rely on to check that
incremental refresh produces the same bag as recomputation.
"""

from __future__ import annotations

import random
from collections import Counter
from operator import itemgetter as _itemgetter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import Column, ColumnType, Schema

Row = Tuple[Any, ...]


def multiset_subtract(rows: Iterable[Row], excluded: Iterable[Row]) -> List[Row]:
    """``rows`` with one copy removed per row in ``excluded`` (bag difference).

    Order-preserving over ``rows``; excluded rows with no match are simply
    ignored.  The shared kernel for every "remove this multiset from that
    pool" scan (delete-pool filtering in the update generators, etc.).
    """
    remaining = Counter(excluded)
    if not remaining:
        return list(rows)
    kept: List[Row] = []
    for row in rows:
        if remaining.get(row, 0) > 0:
            remaining[row] -= 1
        else:
            kept.append(row)
    return kept


def reservoir_sample(rows: Iterable[Row], k: int, rng: random.Random) -> List[Row]:
    """Uniform sample of up to ``k`` rows in one pass (Vitter's algorithm R).

    Works for arbitrary iterables (streams of tuples), which is what lets
    statistics measurement avoid materializing or re-scanning a relation:
    one pass fills the reservoir, everything downstream (distinct counts,
    histograms) is bounded by ``k`` instead of the relation size.
    """
    if k <= 0:
        return []
    reservoir: List[Row] = []
    for i, row in enumerate(rows):
        if i < k:
            reservoir.append(row)
        else:
            j = rng.randint(0, i)
            if j < k:
                reservoir[j] = row
    return reservoir


class Relation:
    """A named bag of tuples with a schema.

    Tuples are plain Python tuples whose positions correspond to the schema's
    columns.  The bag is stored as a list, preserving insertion order (useful
    for deterministic tests) while all comparison helpers use counted
    multiset semantics.
    """

    def __init__(self, schema: Schema, rows: Optional[Iterable[Row]] = None, name: str = "") -> None:
        self.schema = schema
        self.name = name
        self._rows: List[Row] = [tuple(r) for r in rows] if rows is not None else []
        #: Lazily built column arrays (the columnar fast path); invalidated
        #: whenever the bag is mutated through :meth:`add`/:meth:`extend`.
        self._columns: Optional[Tuple[Tuple[Any, ...], ...]] = None
        #: Per-position column cache for single-column reads, so narrow
        #: accesses to wide relations do not materialize every column.
        self._column_cache: Dict[int, Tuple[Any, ...]] = {}
        arity = len(schema)
        for row in self._rows:
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has arity {len(row)}, schema expects {arity}"
                )

    # ------------------------------------------------------------ constructors

    @staticmethod
    def from_dicts(schema: Schema, dicts: Iterable[Dict[str, Any]], name: str = "") -> "Relation":
        """Build a relation from dictionaries keyed by column name."""
        names = schema.names
        rows = [tuple(d.get(n, d.get(n.rsplit(".", 1)[-1])) for n in names) for d in dicts]
        return Relation(schema, rows, name)

    @staticmethod
    def empty_like(other: "Relation", name: str = "") -> "Relation":
        """An empty relation with the same schema as ``other``."""
        return Relation(other.schema, [], name or other.name)

    @staticmethod
    def from_trusted_rows(schema: Schema, rows: List[Row], name: str = "") -> "Relation":
        """Wrap an already-validated list of tuples without copying it.

        Fast-path constructor for operators whose outputs are built from
        existing relation tuples (selection keeps rows, joins concatenate
        tuples), where re-tupling and arity-checking every row would double
        the cost of the hot loop.  The caller must hand over ownership of
        ``rows``.
        """
        relation = Relation.__new__(Relation)
        relation.schema = schema
        relation.name = name
        relation._rows = rows
        relation._columns = None
        relation._column_cache = {}
        return relation

    @staticmethod
    def from_columns(
        schema: Schema, columns: Sequence[Sequence[Any]], name: str = ""
    ) -> "Relation":
        """Build a relation from parallel column arrays."""
        if len(columns) != len(schema):
            raise ValueError(
                f"{len(columns)} column arrays do not match schema arity {len(schema)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise ValueError(f"column arrays have unequal lengths {sorted(lengths)}")
        return Relation(schema, zip(*columns) if columns else [], name)

    # -------------------------------------------------------------- basic bag

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> List[Row]:
        """The underlying list of tuples (do not mutate directly)."""
        return self._rows

    # ---------------------------------------------------------- columnar access

    def columns(self) -> Tuple[Tuple[Any, ...], ...]:
        """Column arrays, one tuple of values per schema column.

        Built lazily from the row storage and cached until the bag is
        mutated; hot operators (selection, join build/probe, aggregation)
        read single columns as flat arrays instead of indexing every row.
        """
        if self._columns is None:
            if self._rows:
                self._columns = tuple(zip(*self._rows))
            else:
                self._columns = tuple(() for _ in self.schema)
        return self._columns

    def column_at(self, position: int) -> Tuple[Any, ...]:
        """One column (by position) as a flat array.

        Extracts only the requested column — wide intermediate results do
        not pay for materializing every column the way :meth:`columns` does.
        """
        if self._columns is not None:
            return self._columns[position]
        cached = self._column_cache.get(position)
        if cached is None:
            if position >= len(self.schema):
                raise IndexError(f"column position {position} out of range")
            cached = tuple([row[position] for row in self._rows])
            self._column_cache[position] = cached
        return cached

    def column_values(self, name: str) -> Tuple[Any, ...]:
        """One column as a flat array (resolved like any schema lookup)."""
        return self.column_at(self.schema.index_of(name))

    def counter(self) -> Counter:
        """Counted multiset view of the bag."""
        return Counter(self._rows)

    def sample(self, k: int, seed: int = 8191) -> List[Row]:
        """A deterministic uniform sample of up to ``k`` rows.

        Used by statistics measurement (:meth:`TableStats.from_relation`) so
        distinct counts and histograms never require a full per-column scan
        of a large relation.
        """
        if k >= len(self._rows):
            return list(self._rows)
        return reservoir_sample(self._rows, k, random.Random(seed))

    def copy(self, name: str = "") -> "Relation":
        """A shallow copy of the relation."""
        return Relation(self.schema, list(self._rows), name or self.name)

    def add(self, row: Row) -> None:
        """Append one tuple."""
        row = tuple(row)
        if len(row) != len(self.schema):
            raise ValueError(f"row {row!r} does not match schema arity {len(self.schema)}")
        self._rows.append(row)
        self._columns = None
        self._column_cache.clear()

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many tuples."""
        for row in rows:
            self.add(row)

    # --------------------------------------------------------- bag operations

    def union_all(self, other: "Relation") -> "Relation":
        """Multiset union: concatenation of the two bags."""
        self._check_compatible(other)
        return Relation(self.schema, self._rows + other._rows, self.name)

    def difference(self, other: "Relation") -> "Relation":
        """Multiset difference: remove one copy per matching tuple in ``other``."""
        self._check_compatible(other)
        remaining = Counter(other._rows)
        result: List[Row] = []
        for row in self._rows:
            if remaining.get(row, 0) > 0:
                remaining[row] -= 1
            else:
                result.append(row)
        return Relation(self.schema, result, self.name)

    def apply_delta(self, inserts: Optional["Relation"] = None, deletes: Optional["Relation"] = None) -> "Relation":
        """Return ``self − deletes ∪ inserts`` (the view-update merge step)."""
        result = self
        if deletes is not None and len(deletes):
            result = result.difference(deletes)
        if inserts is not None and len(inserts):
            result = result.union_all(inserts)
        return Relation(result.schema, list(result._rows), self.name)

    def distinct(self) -> "Relation":
        """Duplicate elimination, preserving first-occurrence order."""
        seen = set()
        result = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                result.append(row)
        return Relation(self.schema, result, self.name)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Bag projection onto ``columns`` (duplicates preserved)."""
        idxs = self.schema.positions(columns)
        schema = self.schema.project(columns)
        if len(idxs) == 1:
            i = idxs[0]
            rows = [(row[i],) for row in self._rows]
        else:
            getter = _itemgetter(*idxs)
            rows = [getter(row) for row in self._rows]
        return Relation.from_trusted_rows(schema, rows, self.name)

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Bag selection by an arbitrary row predicate."""
        return Relation(self.schema, [r for r in self._rows if predicate(r)], self.name)

    def sorted_by(self, columns: Sequence[str]) -> "Relation":
        """Return a copy sorted on ``columns`` (ascending)."""
        idxs = self.schema.positions(columns)
        ordered = sorted(self._rows, key=lambda row: tuple(row[i] for i in idxs))
        return Relation(self.schema, ordered, self.name)

    # ------------------------------------------------------------- comparison

    def same_bag(self, other: "Relation") -> bool:
        """Whether the two relations contain exactly the same multiset of tuples."""
        return self.counter() == other.counter()

    def _check_compatible(self, other: "Relation") -> None:
        if len(self.schema) != len(other.schema):
            raise ValueError(
                f"incompatible schemas: {self.schema.names} vs {other.schema.names}"
            )

    # ----------------------------------------------------------------- display

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name or '<anon>'}, {len(self._rows)} rows, schema={self.schema.names})"

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by fully qualified column names."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self._rows]
