"""Multiset (bag) relations.

The paper works in the multiset relational algebra: relations may contain
duplicate tuples, unions keep duplicates, and differences remove one matching
copy per deleted tuple.  :class:`Relation` implements exactly those
semantics, which the differential-maintenance tests rely on to check that
incremental refresh produces the same bag as recomputation.

Storage is dual-representation.  A relation is authoritative either as a
list of Python row tuples (how user code and the interpreted oracle build
bags) or as a backend column store (how the vectorized operators hand
results to each other — see ``repro.storage.columns``); whichever side is
missing is derived lazily and cached.  Mutation always goes through
:meth:`_invalidate`, which drops every derived columnar view, so a cached
column read can never go stale.
"""

from __future__ import annotations

import random
from collections import Counter
from operator import itemgetter as _itemgetter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.storage import columns as _backends

Row = Tuple[Any, ...]


def multiset_subtract(rows: Iterable[Row], excluded: Iterable[Row]) -> List[Row]:
    """``rows`` with one copy removed per row in ``excluded`` (bag difference).

    Order-preserving over ``rows``; excluded rows with no match are simply
    ignored.  The shared kernel for every "remove this multiset from that
    pool" scan (delete-pool filtering in the update generators, etc.).
    """
    remaining = Counter(excluded)
    if not remaining:
        return list(rows)
    kept: List[Row] = []
    for row in rows:
        if remaining.get(row, 0) > 0:
            remaining[row] -= 1
        else:
            kept.append(row)
    return kept


def reservoir_sample(rows: Iterable[Row], k: int, rng: random.Random) -> List[Row]:
    """Uniform sample of up to ``k`` rows in one pass (Vitter's algorithm R).

    Works for arbitrary iterables (streams of tuples), which is what lets
    statistics measurement avoid materializing or re-scanning a relation:
    one pass fills the reservoir, everything downstream (distinct counts,
    histograms) is bounded by ``k`` instead of the relation size.
    """
    if k <= 0:
        return []
    reservoir: List[Row] = []
    for i, row in enumerate(rows):
        if i < k:
            reservoir.append(row)
        else:
            j = rng.randint(0, i)
            if j < k:
                reservoir[j] = row
    return reservoir


class Relation:
    """A named bag of tuples with a schema.

    Tuples are plain Python tuples whose positions correspond to the schema's
    columns.  The bag preserves insertion order (useful for deterministic
    tests) while all comparison helpers use counted multiset semantics.

    Internally the bag lives either as the row list ``_rows`` or as a
    column store ``_store`` (at least one is always present); the other
    representation is derived on first use and cached.  Row tuples exposed
    through :attr:`rows`/:meth:`iter_rows` always carry native Python
    values, whichever backend produced them.
    """

    def __init__(self, schema: Schema, rows: Optional[Iterable[Row]] = None, name: str = "") -> None:
        self.schema = schema
        self.name = name
        self._rows: Optional[List[Row]] = [tuple(r) for r in rows] if rows is not None else []
        #: Backend column store (``repro.storage.columns``), the columnar
        #: authority when ``_rows`` is None; else a cached derivation.
        self._store = None
        #: Lazily built native column tuples (the columnar read path);
        #: invalidated whenever the bag is mutated.
        self._columns: Optional[Tuple[Tuple[Any, ...], ...]] = None
        #: Per-position column cache for single-column reads, so narrow
        #: accesses to wide relations do not materialize every column.
        self._column_cache: Dict[int, Tuple[Any, ...]] = {}
        arity = len(schema)
        for row in self._rows:
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has arity {len(row)}, schema expects {arity}"
                )

    # ------------------------------------------------------------ constructors

    @staticmethod
    def from_dicts(schema: Schema, dicts: Iterable[Dict[str, Any]], name: str = "") -> "Relation":
        """Build a relation from dictionaries keyed by column name."""
        names = schema.names
        rows = [tuple(d.get(n, d.get(n.rsplit(".", 1)[-1])) for n in names) for d in dicts]
        return Relation(schema, rows, name)

    @staticmethod
    def empty_like(other: "Relation", name: str = "") -> "Relation":
        """An empty relation with the same schema as ``other``."""
        return Relation(other.schema, [], name or other.name)

    @staticmethod
    def from_trusted_rows(schema: Schema, rows: List[Row], name: str = "") -> "Relation":
        """Wrap an already-validated list of tuples without copying it.

        Fast-path constructor for operators whose outputs are built from
        existing relation tuples (selection keeps rows, joins concatenate
        tuples), where re-tupling and arity-checking every row would double
        the cost of the hot loop.  The caller must hand over ownership of
        ``rows``.
        """
        relation = Relation.__new__(Relation)
        relation.schema = schema
        relation.name = name
        relation._rows = rows
        relation._store = None
        relation._columns = None
        relation._column_cache = {}
        return relation

    @staticmethod
    def from_store(schema: Schema, store, name: str = "") -> "Relation":
        """Wrap a backend column store; rows are derived lazily on demand.

        The store must not be mutated after being handed over (stores are
        immutable by convention — see ``repro.storage.columns``).
        """
        relation = Relation.__new__(Relation)
        relation.schema = schema
        relation.name = name
        relation._rows = None
        relation._store = store
        relation._columns = None
        relation._column_cache = {}
        return relation

    @staticmethod
    def from_columns(
        schema: Schema, columns: Sequence[Sequence[Any]], name: str = ""
    ) -> "Relation":
        """Build a relation from parallel column arrays (active backend)."""
        if len(columns) != len(schema):
            raise ValueError(
                f"{len(columns)} column arrays do not match schema arity {len(schema)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise ValueError(f"column arrays have unequal lengths {sorted(lengths)}")
        store = _backends.active_backend().from_columns(columns, len(schema))
        return Relation.from_store(schema, store, name)

    # -------------------------------------------------------------- basic bag

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._store)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def rows(self) -> List[Row]:
        """The row-tuple list (do not mutate directly).

        Materialized from the column store on first access for store-backed
        relations; native Python values throughout.
        """
        if self._rows is None:
            self._rows = self._store.to_rows()
        return self._rows

    def iter_rows(self) -> Iterator[Row]:
        """Iterate row tuples without forcing the row-list cache.

        Store-backed relations stream straight out of the columns — the lazy
        row view the interpreted oracle and delta coalescing use when one
        pass is all they need.
        """
        if self._rows is not None:
            return iter(self._rows)
        return self._store.iter_rows()

    # ---------------------------------------------------------- columnar access

    def _invalidate(self) -> None:
        """Drop every derived columnar view after a mutation.

        The single chokepoint all mutation goes through: forgetting one of
        these caches means a stale column served after an ``add``.
        """
        self._store = None
        self._columns = None
        self._column_cache.clear()

    def column_store(self):
        """The backend column store, building one (active backend) if needed."""
        if self._store is None:
            self._store = _backends.active_backend().from_rows(self.rows, len(self.schema))
        return self._store

    def cached_store(self):
        """The column store if one is already built, else ``None`` (no work)."""
        return self._store

    def vector_store(self, min_rows: int = 0):
        """The numpy column store for the vectorized kernels, or ``None``.

        Returns ``None`` when the active backend is not numpy (fallback
        environment, or forced via ``REPRO_BACKEND=python``) so callers
        drop to their row paths.  An already-cached numpy store is returned
        regardless of size; building a fresh one requires at least
        ``min_rows`` rows, since array conversion costs more than it saves
        on tiny bags.
        """
        store = self._store
        if store is not None:
            return store if store.kind == "numpy" else None
        if not _backends.numpy_enabled():
            return None
        if len(self._rows) < min_rows:
            return None
        self._store = _backends.active_backend().from_rows(self._rows, len(self.schema))
        return self._store

    @property
    def has_vector_store(self) -> bool:
        """Whether a numpy store is already cached (no conversion cost)."""
        return self._store is not None and self._store.kind == "numpy"

    def adopt_store(self, store) -> None:
        """Attach a pre-built column store the caller derived columnar-ly.

        The store must hold exactly this relation's rows in order — used by
        the database's update path to carry a table's columns across an
        insert/delete (concat or mask of the previous version's store)
        instead of re-inferring dtypes from the new row list.
        """
        if len(store) != len(self):
            raise ValueError(
                f"store length {len(store)} does not match relation length {len(self)}"
            )
        self._store = store

    def columns(self) -> Tuple[Tuple[Any, ...], ...]:
        """Column arrays, one tuple of native values per schema column.

        Built lazily from whichever representation is authoritative and
        cached until the bag is mutated; hot operators (selection, join
        build/probe, aggregation) read single columns as flat arrays instead
        of indexing every row.
        """
        if self._columns is None:
            if self._rows is None:
                self._columns = tuple(
                    self._store.column_native(i) for i in range(len(self.schema))
                )
            elif self._rows:
                self._columns = tuple(zip(*self._rows))
            else:
                self._columns = tuple(() for _ in self.schema)
        return self._columns

    def column_at(self, position: int) -> Tuple[Any, ...]:
        """One column (by position) as a flat array of native values.

        Extracts only the requested column — wide intermediate results do
        not pay for materializing every column the way :meth:`columns` does.
        """
        if self._columns is not None:
            return self._columns[position]
        cached = self._column_cache.get(position)
        if cached is None:
            if position >= len(self.schema):
                raise IndexError(f"column position {position} out of range")
            if self._rows is None:
                cached = self._store.column_native(position)
            else:
                cached = tuple([row[position] for row in self._rows])
            self._column_cache[position] = cached
        return cached

    def column_values(self, name: str) -> Tuple[Any, ...]:
        """One column as a flat array (resolved like any schema lookup)."""
        return self.column_at(self.schema.index_of(name))

    def counter(self) -> Counter:
        """Counted multiset view of the bag."""
        return Counter(self.iter_rows())

    def sample(self, k: int, seed: int = 8191) -> List[Row]:
        """A deterministic uniform sample of up to ``k`` rows.

        Used by statistics measurement (:meth:`TableStats.from_relation`) so
        distinct counts and histograms never require a full per-column scan
        of a large relation.  The bag is random-access, so sampling draws
        ``k`` positions directly — O(k) work instead of a full reservoir
        pass, and store-backed relations gather without materializing rows.
        """
        if k >= len(self):
            return list(self.rows)
        positions = sorted(random.Random(seed).sample(range(len(self)), k))
        if self._rows is None:
            return self._store.gather(positions).to_rows()
        rows = self._rows
        return [rows[i] for i in positions]

    def copy(self, name: str = "") -> "Relation":
        """A shallow copy of the relation."""
        if self._rows is None:
            return Relation.from_store(self.schema, self._store, name or self.name)
        return Relation.from_trusted_rows(self.schema, list(self._rows), name or self.name)

    def add(self, row: Row) -> None:
        """Append one tuple."""
        row = tuple(row)
        if len(row) != len(self.schema):
            raise ValueError(f"row {row!r} does not match schema arity {len(self.schema)}")
        self.rows.append(row)
        self._invalidate()

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many tuples."""
        target = self.rows
        arity = len(self.schema)
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ValueError(f"row {row!r} does not match schema arity {arity}")
            target.append(row)
        self._invalidate()

    # --------------------------------------------------------- bag operations

    def union_all(self, other: "Relation") -> "Relation":
        """Multiset union: concatenation of the two bags."""
        self._check_compatible(other)
        if (
            self._store is not None
            and other._store is not None
            and self._store.kind == other._store.kind
        ):
            # Store-to-store concat: no row materialization on either side.
            return Relation.from_store(
                self.schema, self._store.concat(other._store), self.name
            )
        if self._store is not None and len(other) <= len(self):
            # State ∪ delta: convert only the (smaller) row side so the
            # columnar state survives the merge without materializing the
            # stored side's rows.
            tail = type(self._store).from_rows(other.rows, len(self.schema))
            return Relation.from_store(
                self.schema, self._store.concat(tail), self.name
            )
        if other._store is not None and len(self) <= len(other):
            head = type(other._store).from_rows(self.rows, len(self.schema))
            return Relation.from_store(
                self.schema, head.concat(other._store), self.name
            )
        return Relation.from_trusted_rows(self.schema, self.rows + other.rows, self.name)

    def difference(self, other: "Relation") -> "Relation":
        """Multiset difference: remove one copy per matching tuple in ``other``.

        When this side already carries a column store, the survivors' store
        is derived by masking it — the result stays columnar without a
        dtype re-inference pass.
        """
        self._check_compatible(other)
        remaining = Counter(other.iter_rows())
        carried = self._store
        result: List[Row] = []
        if carried is None:
            for row in self.iter_rows():
                if remaining.get(row, 0) > 0:
                    remaining[row] -= 1
                else:
                    result.append(row)
            return Relation.from_trusted_rows(self.schema, result, self.name)
        keep: List[bool] = []
        for row in self.iter_rows():
            if remaining.get(row, 0) > 0:
                remaining[row] -= 1
                keep.append(False)
            else:
                result.append(row)
                keep.append(True)
        out = Relation.from_trusted_rows(self.schema, result, self.name)
        if len(result) == len(keep):
            out.adopt_store(carried)
        else:
            out.adopt_store(carried.mask(keep))
        return out

    def apply_delta(self, inserts: Optional["Relation"] = None, deletes: Optional["Relation"] = None) -> "Relation":
        """Return ``self − deletes ∪ inserts`` (the view-update merge step)."""
        result = self
        if deletes is not None and len(deletes):
            result = result.difference(deletes)
        if inserts is not None and len(inserts):
            result = result.union_all(inserts)
        if result is self:
            if self._rows is None:
                # Store-backed and untouched: share the immutable store.
                return Relation.from_store(self.schema, self._store, self.name)
            fresh = Relation.from_trusted_rows(self.schema, list(self._rows), self.name)
            if self._store is not None:
                fresh.adopt_store(self._store)
            return fresh
        result.name = self.name
        return result

    def distinct(self) -> "Relation":
        """Duplicate elimination, preserving first-occurrence order."""
        seen = set()
        result = []
        for row in self.iter_rows():
            if row not in seen:
                seen.add(row)
                result.append(row)
        return Relation.from_trusted_rows(self.schema, result, self.name)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Bag projection onto ``columns`` (duplicates preserved)."""
        idxs = self.schema.positions(columns)
        schema = self.schema.project(columns)
        if self._store is not None:
            # Column stores project by reference: no per-row work at all.
            return Relation.from_store(schema, self._store.take(idxs), self.name)
        if len(idxs) == 1:
            i = idxs[0]
            rows = [(row[i],) for row in self._rows]
        else:
            getter = _itemgetter(*idxs)
            rows = [getter(row) for row in self._rows]
        return Relation.from_trusted_rows(schema, rows, self.name)

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Bag selection by an arbitrary row predicate."""
        return Relation.from_trusted_rows(
            self.schema, [r for r in self.rows if predicate(r)], self.name
        )

    def sorted_by(self, columns: Sequence[str]) -> "Relation":
        """Return a copy sorted on ``columns`` (ascending)."""
        idxs = self.schema.positions(columns)
        ordered = sorted(self.rows, key=lambda row: tuple(row[i] for i in idxs))
        return Relation.from_trusted_rows(self.schema, ordered, self.name)

    # ------------------------------------------------------------- comparison

    def same_bag(self, other: "Relation") -> bool:
        """Whether the two relations contain exactly the same multiset of tuples."""
        return self.counter() == other.counter()

    def _check_compatible(self, other: "Relation") -> None:
        if len(self.schema) != len(other.schema):
            raise ValueError(
                f"incompatible schemas: {self.schema.names} vs {other.schema.names}"
            )

    # ----------------------------------------------------------------- display

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name or '<anon>'}, {len(self)} rows, schema={self.schema.names})"

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by fully qualified column names."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]
