"""Multiset (bag) relations.

The paper works in the multiset relational algebra: relations may contain
duplicate tuples, unions keep duplicates, and differences remove one matching
copy per deleted tuple.  :class:`Relation` implements exactly those
semantics, which the differential-maintenance tests rely on to check that
incremental refresh produces the same bag as recomputation.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import Column, ColumnType, Schema

Row = Tuple[Any, ...]


class Relation:
    """A named bag of tuples with a schema.

    Tuples are plain Python tuples whose positions correspond to the schema's
    columns.  The bag is stored as a list, preserving insertion order (useful
    for deterministic tests) while all comparison helpers use counted
    multiset semantics.
    """

    def __init__(self, schema: Schema, rows: Optional[Iterable[Row]] = None, name: str = "") -> None:
        self.schema = schema
        self.name = name
        self._rows: List[Row] = [tuple(r) for r in rows] if rows is not None else []
        arity = len(schema)
        for row in self._rows:
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has arity {len(row)}, schema expects {arity}"
                )

    # ------------------------------------------------------------ constructors

    @staticmethod
    def from_dicts(schema: Schema, dicts: Iterable[Dict[str, Any]], name: str = "") -> "Relation":
        """Build a relation from dictionaries keyed by column name."""
        names = schema.names
        rows = [tuple(d.get(n, d.get(n.rsplit(".", 1)[-1])) for n in names) for d in dicts]
        return Relation(schema, rows, name)

    @staticmethod
    def empty_like(other: "Relation", name: str = "") -> "Relation":
        """An empty relation with the same schema as ``other``."""
        return Relation(other.schema, [], name or other.name)

    # -------------------------------------------------------------- basic bag

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> List[Row]:
        """The underlying list of tuples (do not mutate directly)."""
        return self._rows

    def counter(self) -> Counter:
        """Counted multiset view of the bag."""
        return Counter(self._rows)

    def copy(self, name: str = "") -> "Relation":
        """A shallow copy of the relation."""
        return Relation(self.schema, list(self._rows), name or self.name)

    def add(self, row: Row) -> None:
        """Append one tuple."""
        row = tuple(row)
        if len(row) != len(self.schema):
            raise ValueError(f"row {row!r} does not match schema arity {len(self.schema)}")
        self._rows.append(row)

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many tuples."""
        for row in rows:
            self.add(row)

    # --------------------------------------------------------- bag operations

    def union_all(self, other: "Relation") -> "Relation":
        """Multiset union: concatenation of the two bags."""
        self._check_compatible(other)
        return Relation(self.schema, self._rows + other._rows, self.name)

    def difference(self, other: "Relation") -> "Relation":
        """Multiset difference: remove one copy per matching tuple in ``other``."""
        self._check_compatible(other)
        remaining = Counter(other._rows)
        result: List[Row] = []
        for row in self._rows:
            if remaining.get(row, 0) > 0:
                remaining[row] -= 1
            else:
                result.append(row)
        return Relation(self.schema, result, self.name)

    def apply_delta(self, inserts: Optional["Relation"] = None, deletes: Optional["Relation"] = None) -> "Relation":
        """Return ``self − deletes ∪ inserts`` (the view-update merge step)."""
        result = self
        if deletes is not None and len(deletes):
            result = result.difference(deletes)
        if inserts is not None and len(inserts):
            result = result.union_all(inserts)
        return Relation(result.schema, list(result._rows), self.name)

    def distinct(self) -> "Relation":
        """Duplicate elimination, preserving first-occurrence order."""
        seen = set()
        result = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                result.append(row)
        return Relation(self.schema, result, self.name)

    def project(self, columns: Sequence[str]) -> "Relation":
        """Bag projection onto ``columns`` (duplicates preserved)."""
        idxs = self.schema.positions(columns)
        schema = self.schema.project(columns)
        return Relation(schema, [tuple(row[i] for i in idxs) for row in self._rows], self.name)

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Bag selection by an arbitrary row predicate."""
        return Relation(self.schema, [r for r in self._rows if predicate(r)], self.name)

    def sorted_by(self, columns: Sequence[str]) -> "Relation":
        """Return a copy sorted on ``columns`` (ascending)."""
        idxs = self.schema.positions(columns)
        ordered = sorted(self._rows, key=lambda row: tuple(row[i] for i in idxs))
        return Relation(self.schema, ordered, self.name)

    # ------------------------------------------------------------- comparison

    def same_bag(self, other: "Relation") -> bool:
        """Whether the two relations contain exactly the same multiset of tuples."""
        return self.counter() == other.counter()

    def _check_compatible(self, other: "Relation") -> None:
        if len(self.schema) != len(other.schema):
            raise ValueError(
                f"incompatible schemas: {self.schema.names} vs {other.schema.names}"
            )

    # ----------------------------------------------------------------- display

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name or '<anon>'}, {len(self._rows)} rows, schema={self.schema.names})"

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by fully qualified column names."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self._rows]
