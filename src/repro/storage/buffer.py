"""Buffer-pool model.

The paper's cost model charges seeks, bytes read, bytes written and CPU, and
its behaviour depends on whether an operator's input fits in the buffer pool
("there is a jump in cost at one point, which is because of the use of an
algorithm that depends on an input fitting in memory").  :class:`BufferPool`
captures the two parameters the experiments vary: the number of buffer blocks
(8000 in the main runs, 1000 in the buffer-size study) and the block size
(4 KB).
"""

from __future__ import annotations

from dataclasses import dataclass
import math


@dataclass(frozen=True)
class BufferPool:
    """Descriptor of the buffer pool available to the execution engine."""

    blocks: int = 8000
    block_size: int = 4096

    @property
    def capacity_bytes(self) -> int:
        """Total buffer capacity in bytes."""
        return self.blocks * self.block_size

    def blocks_for(self, size_bytes: float) -> float:
        """Number of blocks needed to hold ``size_bytes`` bytes."""
        if size_bytes <= 0:
            return 0.0
        return math.ceil(size_bytes / self.block_size)

    def fits(self, size_bytes: float) -> bool:
        """Whether a result of ``size_bytes`` bytes fits entirely in memory."""
        return self.blocks_for(size_bytes) <= self.blocks

    def partitions_needed(self, size_bytes: float) -> int:
        """How many hash-join partition passes are needed for the build input.

        1 means the classic in-memory hash join; larger values model Grace
        hash-join recursion levels and drive the "jump in cost" the paper
        observes when an input stops fitting in memory.
        """
        if size_bytes <= 0:
            return 1
        needed = self.blocks_for(size_bytes)
        passes = 1
        capacity = self.blocks
        while needed > capacity and passes < 8:
            passes += 1
            capacity *= self.blocks
        return passes
