"""View-maintenance optimization — the paper's core contribution.

Public entry points:

* :class:`ViewMaintenanceOptimizer` — builds the AND-OR DAG over a set of
  view definitions, annotates it with differentials, and runs either the
  ``NoGreedy`` baseline (per-view recompute-vs-incremental choice) or the
  full ``Greedy`` selection of extra temporary/permanent materializations
  and indexes.
* :class:`UpdateSpec` — the batch of updates to propagate (the paper's
  "update percentage" with a 2:1 insert:delete ratio is
  :meth:`UpdateSpec.uniform`).
* :class:`ViewRefresher` — the executable refresh engine used to verify that
  incremental maintenance matches recomputation tuple-for-tuple.
"""

from repro.maintenance.update_spec import RelationUpdate, UpdateSpec
from repro.maintenance.diff_dag import DeltaCatalog, DifferentialAnnotations, ResultKey
from repro.maintenance.cost_engine import MaintenanceCostEngine
from repro.maintenance.candidates import Candidate, enumerate_candidates
from repro.maintenance.greedy import GreedySelection, GreedyViewSelector, SelectedResult
from repro.maintenance.plan_selection import (
    MaintenancePlan,
    ViewMaintenanceDecision,
    select_maintenance_plan,
)
from repro.maintenance.maintainer import RefreshReport, ViewRefresher, apply_and_refresh
from repro.maintenance.optimizer import OptimizationResult, ViewMaintenanceOptimizer

__all__ = [
    "RelationUpdate",
    "UpdateSpec",
    "DeltaCatalog",
    "DifferentialAnnotations",
    "ResultKey",
    "MaintenanceCostEngine",
    "Candidate",
    "enumerate_candidates",
    "GreedySelection",
    "GreedyViewSelector",
    "SelectedResult",
    "MaintenancePlan",
    "ViewMaintenanceDecision",
    "select_maintenance_plan",
    "RefreshReport",
    "ViewRefresher",
    "apply_and_refresh",
    "OptimizationResult",
    "ViewMaintenanceOptimizer",
]
