"""The maintenance cost engine.

This module implements the cost recurrences of paper §5 and §6 over the
AND-OR DAG, for a given set of materialized results ``M``:

* ``compcost(e, M)`` — cost of recomputing a node's full result, reusing
  materialized inputs where cheaper (§5.1);
* ``diffCost(e, M, i)`` — cost of computing the node's differential with
  respect to update ``i``, combining differential children, full children
  and the local differential operation cost (§5.3);
* ``totalDiffCost``, ``maintcost``, ``matcost``, ``mergeCost`` and the
  per-result ``cost(x, M)`` used by the greedy algorithm (§6.1).

The engine keeps memoized cost tables and supports the **incremental cost
update** optimization of §6.2: when a result is (un)materialized only the
affected entries — the ancestors of the changed node, and only the matching
update number for differential results — are invalidated.  A
:meth:`speculative` context manager snapshots the state so the greedy
algorithm can price "what if I also materialized x?" cheaply and roll back.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator
from repro.maintenance.diff_dag import DifferentialAnnotations, ResultKey
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.cost_model import CostModel, InputDescriptor
from repro.optimizer.dag import Dag, EquivalenceNode, OperationNode, OperatorKind
from repro.storage.delta import UpdateId

INFINITY = math.inf


class MaintenanceCostEngine:
    """Costs full results, differentials and maintenance under a materialized set."""

    def __init__(
        self,
        dag: Dag,
        catalog: Catalog,
        spec: UpdateSpec,
        cost_model: Optional[CostModel] = None,
        annotations: Optional[DifferentialAnnotations] = None,
        estimator: Optional[CardinalityEstimator] = None,
    ) -> None:
        self.dag = dag
        self.catalog = catalog
        self.spec = spec
        self.cost_model = cost_model or CostModel()
        #: The shared estimator all cardinality questions route through
        #: (the annotations' estimator unless one is injected explicitly).
        if estimator is None and annotations is not None:
            estimator = annotations.estimator
        self.estimator = estimator or CardinalityEstimator(catalog)
        self.annotations = annotations or DifferentialAnnotations(
            dag, catalog, spec, estimator=self.estimator
        )

        #: Materialized results (full results and differentials).
        self.materialized: Set[ResultKey] = set()
        #: Extra indexes keyed by equivalence node id -> set of column tuples.
        #: (Indexes on base relations already in the catalog are always seen.)
        self.indexes: Dict[int, Set[Tuple[str, ...]]] = {}

        # Memoized cost tables and chosen algorithms (for plan explanation).
        self._full_cost: Dict[int, float] = {}
        self._full_choice: Dict[int, Tuple[Optional[int], str]] = {}
        self._diff_cost: Dict[Tuple[int, int], float] = {}
        self._diff_choice: Dict[Tuple[int, int], Tuple[Optional[int], str]] = {}

    # ------------------------------------------------------------------ set-up

    def set_materialized(self, keys: Iterable[ResultKey]) -> None:
        """Replace the materialized set and clear all cached costs."""
        self.materialized = set(keys)
        self.reset_cache()

    def add_materialized(self, key: ResultKey) -> None:
        """Materialize one more result, invalidating only affected entries."""
        if key in self.materialized:
            return
        self.materialized.add(key)
        self._invalidate_for(key)

    def remove_materialized(self, key: ResultKey) -> None:
        """Un-materialize a result, invalidating only affected entries."""
        if key not in self.materialized:
            return
        self.materialized.discard(key)
        self._invalidate_for(key)

    def add_index(self, node_id: int, columns: Sequence[str]) -> None:
        """Make an index on ``columns`` of node ``node_id`` available to plans."""
        self.indexes.setdefault(node_id, set()).add(tuple(columns))
        self._invalidate_node_and_ancestors(node_id, updates=None)

    def remove_index(self, node_id: int, columns: Sequence[str]) -> None:
        """Remove a previously added index."""
        cols = self.indexes.get(node_id)
        if cols and tuple(columns) in cols:
            cols.discard(tuple(columns))
            if not cols:
                del self.indexes[node_id]
            self._invalidate_node_and_ancestors(node_id, updates=None)

    def reset_cache(self) -> None:
        """Drop every memoized cost (used after wholesale state changes)."""
        self._full_cost.clear()
        self._full_choice.clear()
        self._diff_cost.clear()
        self._diff_choice.clear()

    # ----------------------------------------------------- incremental updates

    def _invalidate_for(self, key: ResultKey) -> None:
        if key.is_full:
            self._invalidate_node_and_ancestors(key.node_id, updates=None)
        else:
            self._invalidate_node_and_ancestors(key.node_id, updates=[key.update])

    def _invalidate_node_and_ancestors(self, node_id: int, updates: Optional[List[int]]) -> None:
        """Incremental cost update (§6.2): drop cached entries that may change.

        ``updates=None`` invalidates full-result entries and every
        differential entry; a list restricts invalidation to those update
        numbers (materializing δ(v, i) can only change δ(·, i) plans of v's
        ancestors).
        """
        affected = {node_id} | self.dag.ancestors_of(self.dag.node(node_id))
        for nid in affected:
            if updates is None:
                self._full_cost.pop(nid, None)
                self._full_choice.pop(nid, None)
                for update in self.annotations.updates():
                    self._diff_cost.pop((nid, update.number), None)
                    self._diff_choice.pop((nid, update.number), None)
            else:
                for number in updates:
                    self._diff_cost.pop((nid, number), None)
                    self._diff_choice.pop((nid, number), None)

    @contextmanager
    def speculative(self):
        """Snapshot the engine state, yield, then restore it.

        Used by the greedy loop's benefit computation: costs are recomputed
        incrementally inside the block and rolled back afterwards.
        """
        saved = (
            set(self.materialized),
            {k: set(v) for k, v in self.indexes.items()},
            dict(self._full_cost),
            dict(self._full_choice),
            dict(self._diff_cost),
            dict(self._diff_choice),
        )
        try:
            yield self
        finally:
            (
                self.materialized,
                self.indexes,
                self._full_cost,
                self._full_choice,
                self._diff_cost,
                self._diff_choice,
            ) = saved

    # ------------------------------------------------------------- descriptors

    def _node_indexes(self, node: EquivalenceNode) -> List[Tuple[str, ...]]:
        indexed: List[Tuple[str, ...]] = []
        if node.is_base_relation:
            relation = node.expression.canonical()
            for index in self.catalog.indexes(relation):
                indexed.append(tuple(index.columns))
        indexed.extend(self.indexes.get(node.id, ()))
        return indexed

    def _full_descriptor(self, node: EquivalenceNode) -> InputDescriptor:
        stored = node.is_base_relation or ResultKey(node.id, 0) in self.materialized
        sorted_on: Tuple[str, ...] = ()
        if node.is_base_relation:
            for index in self.catalog.indexes(node.expression.canonical()):
                if index.kind == "btree":
                    sorted_on = tuple(index.columns)
                    break
        return InputDescriptor(
            stats=node.stats,
            stored=stored,
            indexed_columns=tuple(self._node_indexes(node)),
            sorted_on=sorted_on,
        )

    def _delta_descriptor(self, node: EquivalenceNode, update: UpdateId) -> InputDescriptor:
        stats = self.annotations.delta_stats(node.id, update.number)
        stored = ResultKey(node.id, update.number) in self.materialized
        return InputDescriptor(stats=stats, stored=stored)

    # --------------------------------------------------------------- compcost

    def compcost(self, node_id: int) -> float:
        """``compcost(e, M)`` — cost of computing the node's full result."""
        cached = self._full_cost.get(node_id)
        if cached is not None:
            return cached
        in_progress: Set[int] = set()

        def compute(node: EquivalenceNode) -> float:
            cached_inner = self._full_cost.get(node.id)
            if cached_inner is not None:
                return cached_inner
            if node.id in in_progress:
                return INFINITY
            in_progress.add(node.id)
            if not node.children:
                best, choice = 0.0, (None, "stored")
            else:
                best = INFINITY
                choice = (None, "")
                for operation in node.children:
                    input_costs = [self._full_input_cost(child, compute) for child in operation.inputs]
                    if any(c >= INFINITY for c in input_costs):
                        continue
                    total, algorithm = self._op_full_cost(operation, input_costs)
                    if total < best:
                        best = total
                        choice = (operation.id, algorithm)
            in_progress.discard(node.id)
            self._full_cost[node.id] = best
            self._full_choice[node.id] = choice
            return best

        return compute(self.dag.node(node_id))

    def _full_input_cost(self, node: EquivalenceNode, compute) -> float:
        """``C(e, M)`` for a full-result input."""
        cost = compute(node)
        if ResultKey(node.id, 0) in self.materialized:
            return min(cost, self.cost_model.reuse_cost(node.stats))
        return cost

    def full_input_cost(self, node_id: int) -> float:
        """Public ``C(e, M)``: min of recomputation and reuse."""
        node = self.dag.node(node_id)
        cost = self.compcost(node_id)
        if ResultKey(node_id, 0) in self.materialized:
            return min(cost, self.cost_model.reuse_cost(node.stats))
        return cost

    def _op_full_cost(self, operation: OperationNode, input_costs: Sequence[float]) -> Tuple[float, str]:
        cm = self.cost_model
        op = operation.operator
        output = operation.parent.stats
        inputs = [node.stats for node in operation.inputs]
        access = sum(input_costs)
        if op.kind is OperatorKind.SCAN:
            return cm.scan_cost(self.catalog.stats(op.relation)), "scan"
        if op.kind is OperatorKind.SELECT:
            return access + cm.select_cost(inputs[0], output), "filter"
        if op.kind is OperatorKind.PROJECT:
            return access + cm.project_cost(inputs[0], output), "project"
        if op.kind is OperatorKind.JOIN:
            left = self._full_descriptor(operation.inputs[0])
            right = self._full_descriptor(operation.inputs[1])
            return cm.join_cost(op.conditions, left, right, output, input_costs[0], input_costs[1])
        if op.kind is OperatorKind.AGGREGATE:
            return access + cm.aggregate_cost(inputs[0], output), "hash_aggregate"
        if op.kind is OperatorKind.UNION:
            return access + cm.union_cost(inputs, output), "append"
        if op.kind is OperatorKind.DIFFERENCE:
            return access + cm.difference_cost(inputs[0], inputs[1], output), "hash_difference"
        if op.kind is OperatorKind.DISTINCT:
            return access + cm.distinct_cost(inputs[0], output), "hash_distinct"
        raise ValueError(f"unknown operator kind {op.kind}")

    # --------------------------------------------------------------- diffCost

    def diffcost(self, node_id: int, update_number: int) -> float:
        """``diffCost(e, M, i)`` — cost of computing one differential of the node."""
        node = self.dag.node(node_id)
        update = self.annotations.update_by_number(update_number)
        if update.relation not in node.base_relations:
            return 0.0
        cached = self._diff_cost.get((node_id, update_number))
        if cached is not None:
            return cached
        in_progress: Set[int] = set()

        def compute(inner: EquivalenceNode) -> float:
            if update.relation not in inner.base_relations:
                return 0.0
            key = (inner.id, update_number)
            cached_inner = self._diff_cost.get(key)
            if cached_inner is not None:
                return cached_inner
            if inner.id in in_progress:
                return INFINITY
            in_progress.add(inner.id)
            if not inner.children:
                best, choice = 0.0, (None, "stored-delta")
            else:
                best = INFINITY
                choice = (None, "")
                for operation in inner.children:
                    total, algorithm = self._op_diff_cost(operation, update, compute)
                    if total < best:
                        best = total
                        choice = (operation.id, algorithm)
            in_progress.discard(inner.id)
            self._diff_cost[key] = best
            self._diff_choice[key] = choice
            return best

        return compute(node)

    def _diff_input_cost(self, node: EquivalenceNode, update: UpdateId, compute) -> float:
        """``C(e, M, i)`` for a differential input (§5.3)."""
        cost = compute(node)
        if ResultKey(node.id, update.number) in self.materialized:
            reuse = self.cost_model.reuse_cost(self.annotations.delta_stats(node.id, update.number))
            return min(cost, reuse)
        return cost

    def diff_input_cost(self, node_id: int, update_number: int) -> float:
        """Public ``C(e, M, i)``."""
        node = self.dag.node(node_id)
        update = self.annotations.update_by_number(update_number)
        cost = self.diffcost(node_id, update_number)
        if ResultKey(node_id, update_number) in self.materialized:
            reuse = self.cost_model.reuse_cost(self.annotations.delta_stats(node_id, update_number))
            return min(cost, reuse)
        return cost

    def _op_diff_cost(self, operation: OperationNode, update: UpdateId, compute) -> Tuple[float, str]:
        """``diffCost`` of one operation node w.r.t. one update."""
        cm = self.cost_model
        op = operation.operator
        parent = operation.parent
        out_delta = self.annotations.delta_stats(parent.id, update.number)

        if op.kind is OperatorKind.SCAN:
            if op.relation != update.relation:
                return INFINITY, ""
            return cm.scan_cost(self.annotations.relation_delta_stats(update)), "delta-scan"

        if op.kind in (OperatorKind.SELECT, OperatorKind.PROJECT):
            child = operation.inputs[0]
            access = self._diff_input_cost(child, update, compute)
            child_delta = self.annotations.delta_stats(child.id, update.number)
            if op.kind is OperatorKind.SELECT:
                local = cm.select_cost(child_delta, out_delta)
            else:
                local = cm.project_cost(child_delta, out_delta)
            return access + local, "delta-filter"

        if op.kind is OperatorKind.JOIN:
            return self._join_diff_cost(operation, update, compute)

        if op.kind is OperatorKind.AGGREGATE:
            child = operation.inputs[0]
            access = self._diff_input_cost(child, update, compute)
            child_delta = self.annotations.delta_stats(child.id, update.number)
            local = cm.aggregate_cost(child_delta, out_delta)
            if ResultKey(parent.id, 0) in self.materialized:
                # The old aggregate rows for the affected groups come from the
                # stored result: one probe per affected group.
                probe = out_delta.cardinality * cm.parameters.cpu_probe_time
                return access + local + probe, "delta-aggregate"
            # Otherwise affected groups have to be recomputed from the full
            # child result (§3.1.2) — essentially as expensive as recomputing.
            full_child = self.full_input_cost(child.id)
            recompute = cm.aggregate_cost(child.stats, parent.stats)
            return access + local + full_child + recompute, "recompute-affected-groups"

        if op.kind is OperatorKind.UNION:
            dependent = [c for c in operation.inputs if update.relation in c.base_relations]
            access = sum(self._diff_input_cost(c, update, compute) for c in dependent)
            deltas = [self.annotations.delta_stats(c.id, update.number) for c in dependent]
            return access + cm.union_cost(deltas, out_delta), "delta-append"

        if op.kind in (OperatorKind.DIFFERENCE, OperatorKind.DISTINCT):
            # Conservative: differentials of these operators need old and new
            # input results; price them as recomputation over the inputs.
            access = sum(self.full_input_cost(c.id) for c in operation.inputs)
            access += sum(
                self._diff_input_cost(c, update, compute)
                for c in operation.inputs
                if update.relation in c.base_relations
            )
            inputs = [c.stats for c in operation.inputs]
            if op.kind is OperatorKind.DIFFERENCE:
                local = cm.difference_cost(inputs[0], inputs[1], parent.stats)
            else:
                local = cm.distinct_cost(inputs[0], parent.stats)
            return access + local, "delta-recompute"

        raise ValueError(f"unknown operator kind {op.kind}")

    def _join_diff_cost(self, operation: OperationNode, update: UpdateId, compute) -> Tuple[float, str]:
        cm = self.cost_model
        op = operation.operator
        parent = operation.parent
        out_delta = self.annotations.delta_stats(parent.id, update.number)
        left, right = operation.inputs
        left_dep = update.relation in left.base_relations
        right_dep = update.relation in right.base_relations

        if left_dep and not right_dep:
            cost, algorithm = cm.join_cost(
                op.conditions,
                self._delta_descriptor(left, update),
                self._full_descriptor(right),
                out_delta,
                self._diff_input_cost(left, update, compute),
                self.full_input_cost(right.id),
            )
            return cost, f"delta-{algorithm}"
        if right_dep and not left_dep:
            cost, algorithm = cm.join_cost(
                op.conditions,
                self._full_descriptor(left),
                self._delta_descriptor(right, update),
                out_delta,
                self.full_input_cost(left.id),
                self._diff_input_cost(right, update, compute),
            )
            return cost, f"delta-{algorithm}"

        # Both inputs change: the join becomes a union of two joins,
        # (δE1 ⋈ E2_old) ∪ (E1_new ⋈ δE2)  — paper §5.3.
        left_delta_stats = self.annotations.delta_stats(left.id, update.number)
        right_delta_stats = self.annotations.delta_stats(right.id, update.number)
        part1 = self.estimator.join_stats(left_delta_stats, right.stats, op.conditions)
        part2 = self.estimator.join_stats(left.stats, right_delta_stats, op.conditions)
        cost1, _ = cm.join_cost(
            op.conditions,
            self._delta_descriptor(left, update),
            self._full_descriptor(right),
            part1,
            self._diff_input_cost(left, update, compute),
            self.full_input_cost(right.id),
        )
        cost2, _ = cm.join_cost(
            op.conditions,
            self._full_descriptor(left),
            self._delta_descriptor(right, update),
            part2,
            self.full_input_cost(left.id),
            self._diff_input_cost(right, update, compute),
        )
        union = cm.union_cost([part1, part2], out_delta)
        return cost1 + cost2 + union, "delta-join-both-sides"

    # ----------------------------------------------------- maintenance costing

    def total_diff_cost(self, node_id: int) -> float:
        """``totalDiffCost(e, M)`` — sum of diffCost over all (non-empty) updates."""
        node = self.dag.node(node_id)
        total = 0.0
        for update in self.annotations.updates():
            if update.relation in node.base_relations:
                total += self.diffcost(node_id, update.number)
        return total

    def merge_cost(self, node_id: int) -> float:
        """``mergeCost(e)`` — cost of applying the differentials to the stored result."""
        node = self.dag.node(node_id)
        has_index = bool(self.indexes.get(node_id))
        return self.cost_model.merge_cost(
            node.stats, self.annotations.delta_stats_list(node_id), has_index=has_index
        )

    def maintcost(self, node_id: int) -> float:
        """``maintcost(e, M)`` — incremental maintenance cost of a stored result."""
        return self.total_diff_cost(node_id) + self.merge_cost(node_id)

    def matcost(self, node_id: int, update_number: int = 0) -> float:
        """``matcost`` — cost of writing out a (full or differential) result."""
        if update_number == 0:
            return self.cost_model.materialize_cost(self.dag.node(node_id).stats)
        return self.cost_model.materialize_cost(
            self.annotations.delta_stats(node_id, update_number)
        )

    def recompute_cost(self, node_id: int) -> float:
        """Recomputation + storing cost of a materialized full result."""
        return self.compcost(node_id) + self.matcost(node_id)

    def result_cost(self, key: ResultKey) -> float:
        """``cost(x, M)`` for one materialized result (paper §6.1)."""
        if key.is_full:
            return min(self.recompute_cost(key.node_id), self.maintcost(key.node_id))
        return self.diffcost(key.node_id, key.update) + self.matcost(key.node_id, key.update)

    def prefers_recomputation(self, node_id: int) -> bool:
        """Whether a full result is cheaper to recompute than to maintain.

        Recomputed results are *temporarily* materialized during refresh and
        discarded; maintained results are *permanent* (paper §6.1).
        """
        return self.recompute_cost(node_id) <= self.maintcost(node_id)

    def index_cost(self, node_id: int, columns: Sequence[str]) -> float:
        """Maintenance cost of keeping an index on node ``node_id`` up to date."""
        node = self.dag.node(node_id)
        if node.is_base_relation:
            relation = node.expression.canonical()
            deltas = [
                self.spec.delta_stats(self.catalog, relation, update.kind)
                for update in self.annotations.updates()
                if update.relation == relation
            ]
        else:
            deltas = self.annotations.delta_stats_list(node_id)
        return self.cost_model.index_maintenance_cost(deltas)

    def total_cost(self, index_costs: bool = True) -> float:
        """``cost(M, M)`` — total refresh cost of everything materialized."""
        total = sum(self.result_cost(key) for key in self.materialized)
        if index_costs:
            for node_id, column_sets in self.indexes.items():
                for columns in column_sets:
                    total += self.index_cost(node_id, columns)
        return total

    # ------------------------------------------------------------- explanation

    def chosen_full_operation(self, node_id: int) -> Tuple[Optional[int], str]:
        """The operation id and algorithm chosen for the node's full result."""
        self.compcost(node_id)
        return self._full_choice.get(node_id, (None, ""))

    def chosen_diff_operation(self, node_id: int, update_number: int) -> Tuple[Optional[int], str]:
        """The operation id and algorithm chosen for one differential."""
        self.diffcost(node_id, update_number)
        return self._diff_choice.get((node_id, update_number), (None, ""))
