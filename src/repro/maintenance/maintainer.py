"""Executable view refresh.

The paper's experiments report estimated plan costs; this module provides the
piece the authors could not run — an actual refresh executor — so that the
test suite can prove the maintenance machinery correct: for any set of views
and any batch of inserts/deletes, incrementally refreshing the stored views
(one relation and one update kind at a time, exactly as the optimizer plans
it) yields the same bags as recomputing the views from scratch on the
updated database.

The refresher can also *temporarily materialize* shared sub-expressions
chosen by the greedy algorithm: they are computed once per single-relation
update round, registered so every view's differential computation reuses
them, and discarded at the end of the refresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression, base_relations
from repro.engine.database import Database
from repro.engine.differential import differentiate
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.engine.physical import PhysicalExecutor
from repro.storage.delta import Delta, DeltaKind, DeltaStore
from repro.storage.relation import Relation


@dataclass
class ViewRefreshStep:
    """Record of one (view, single-relation update) refresh step."""

    view: str
    relation: str
    kind: DeltaKind
    inserted: int
    deleted: int


@dataclass
class RefreshReport:
    """Summary of one refresh round."""

    steps: List[ViewRefreshStep] = field(default_factory=list)
    recomputed_views: List[str] = field(default_factory=list)

    def total_changes(self, view: Optional[str] = None) -> int:
        """Total tuples inserted+deleted across steps (optionally one view)."""
        return sum(
            step.inserted + step.deleted
            for step in self.steps
            if view is None or step.view == view
        )


class ViewRefresher:
    """Maintains a set of materialized views over a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        views: Mapping[str, Expression],
        temporary_subexpressions: Optional[Mapping[str, Expression]] = None,
        recompute_views: Optional[Iterable[str]] = None,
        use_physical: bool = True,
    ) -> None:
        self.database = database
        self.views: Dict[str, Expression] = dict(views)
        #: Shared sub-expressions to materialize temporarily during refresh.
        self.temporaries: Dict[str, Expression] = dict(temporary_subexpressions or {})
        #: Views whose chosen strategy is full recomputation instead of deltas.
        self.recompute_views = set(recompute_views or ())
        #: Full (re)computations of views and temporaries run through the
        #: physical layer (optimizer-chosen plans, vectorized operators);
        #: the logical interpreter remains the verification oracle.
        self.use_physical = use_physical
        self._physical = PhysicalExecutor(database) if use_physical else None
        self.registry = MaterializedRegistry()
        for name, expression in self.views.items():
            # Views refreshed by recomputation are left stale until the end of
            # the refresh round, so other views' differential computations must
            # not read them as the "old value" of a shared sub-expression.
            if name not in self.recompute_views:
                self.registry.register(expression, name)

    # ------------------------------------------------------------------ set-up

    def _compute(
        self, expression: Expression, materialized: Optional[MaterializedRegistry] = None
    ) -> Relation:
        """Full computation of an expression (physical plan when enabled)."""
        if self._physical is not None:
            return self._physical.evaluate(expression, materialized)
        return evaluate(expression, self.database, materialized)

    def initialize_views(self) -> None:
        """Materialize every view from the current database contents."""
        for name, expression in self.views.items():
            self.database.materialize_view(name, self._compute(expression))

    # ------------------------------------------------------------------ refresh

    def refresh(self, deltas: DeltaStore) -> RefreshReport:
        """Propagate one batch of updates into all materialized views.

        Updates are applied one relation and one update kind at a time, in
        the delta store's order (paper §3.1.1): for each single-relation
        update, every view's differential is computed against the current
        (pre-update) state, the view contents are merged, and only then is
        the base relation itself updated.
        """
        report = RefreshReport()
        incremental_views = {
            name: expr for name, expr in self.views.items() if name not in self.recompute_views
        }

        for update in deltas.update_ids(only_nonempty=True):
            delta_rows = deltas.relation_delta(update.relation, update.kind)
            self._materialize_temporaries(update.relation)
            # Compute every view's differential against the same pre-update
            # state first, then apply them all, so that no view observes
            # another view's partially propagated contents.
            changes = {}
            for name, expression in incremental_views.items():
                if update.relation not in base_relations(expression):
                    continue
                changes[name] = differentiate(
                    expression,
                    self.database,
                    update.relation,
                    update.kind,
                    delta_rows,
                    materialized=self.registry,
                )
            for name, change in changes.items():
                self.database.update_view(name, inserts=change.inserts, deletes=change.deletes)
                report.steps.append(
                    ViewRefreshStep(
                        view=name,
                        relation=update.relation,
                        kind=update.kind,
                        inserted=len(change.inserts),
                        deleted=len(change.deletes),
                    )
                )
            self._drop_temporaries()
            self.database.apply_update(update.relation, update.kind, delta_rows)

        # Views maintained by recomputation are rebuilt once, at the end,
        # against the fully updated database.
        for name in self.recompute_views:
            if name in self.views:
                self.database.materialize_view(name, self._compute(self.views[name]))
                report.recomputed_views.append(name)
        return report

    # -------------------------------------------------------------- temporaries

    def _materialize_temporaries(self, relation: str) -> None:
        """(Re)compute temporary shared results relevant to this update round.

        A temporary result is only useful to a differential computation while
        it reflects the *pre-update* state, so temporaries are recomputed at
        the start of each single-relation update round and dropped at its end.
        """
        for name, expression in self.temporaries.items():
            self.database.materialize_view(name, self._compute(expression, self.registry))
            self.registry.register(expression, name)

    def _drop_temporaries(self) -> None:
        for name, expression in self.temporaries.items():
            self.database.drop_view(name)
            self.registry.unregister(expression)
        # Re-register the incrementally maintained views in case a temporary
        # shared the canonical form of one of them.
        for name, expression in self.views.items():
            if name not in self.recompute_views:
                self.registry.register(expression, name)

    # ------------------------------------------------------------ verification

    def verify_against_recomputation(self) -> Dict[str, bool]:
        """Compare every stored view against recomputation from base tables."""
        results: Dict[str, bool] = {}
        for name, expression in self.views.items():
            recomputed = evaluate(expression, self.database)
            results[name] = self.database.view(name).same_bag(recomputed)
        return results


def apply_and_refresh(
    database: Database,
    views: Mapping[str, Expression],
    deltas: DeltaStore,
    temporary_subexpressions: Optional[Mapping[str, Expression]] = None,
    recompute_views: Optional[Iterable[str]] = None,
    use_physical: bool = True,
) -> Tuple[RefreshReport, Dict[str, bool]]:
    """Convenience wrapper: refresh the views and verify them against recomputation."""
    refresher = ViewRefresher(
        database,
        views,
        temporary_subexpressions=temporary_subexpressions,
        recompute_views=recompute_views,
        use_physical=use_physical,
    )
    if not all(database.has_view(name) for name in views):
        refresher.initialize_views()
    report = refresher.refresh(deltas)
    return report, refresher.verify_against_recomputation()
