"""Executable view refresh.

The paper's experiments report estimated plan costs; this module provides the
piece the authors could not run — an actual refresh executor — so that the
test suite can prove the maintenance machinery correct: for any set of views
and any batch of inserts/deletes, incrementally refreshing the stored views
(one relation and one update kind at a time, exactly as the optimizer plans
it) yields the same bags as recomputing the views from scratch on the
updated database.

The refresher can also *temporarily materialize* shared sub-expressions
chosen by the greedy algorithm: they are registered so every view's
differential computation reuses them, recomputed only when a base update
actually invalidates them, and discarded at the end of the refresh.

Differentials run through the vectorized
:class:`~repro.engine.differential.DifferentialEngine` by default, sharing
old values, sub-expression deltas and hash builds across all views of an
update round (and across rounds, until invalidated) via an
:class:`~repro.engine.differential.OldValueCache`; the interpreted
:func:`~repro.engine.differential.differentiate` remains available as the
fallback path and as the oracle ``verify_differentials`` checks against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression, base_relations
from repro.engine.database import Database
from repro.engine.differential import (
    DifferentialEngine,
    OldValueCache,
    differentiate,
    verify_differential,
)
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.engine.physical import PhysicalExecutor
from repro.storage.delta import DeltaKind, DeltaStore
from repro.storage.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.pool import ShardPool


@dataclass
class ViewRefreshStep:
    """Record of one (view, single-relation update) refresh step."""

    view: str
    relation: str
    kind: DeltaKind
    inserted: int
    deleted: int


@dataclass
class RefreshReport:
    """Summary of one refresh round."""

    steps: List[ViewRefreshStep] = field(default_factory=list)
    recomputed_views: List[str] = field(default_factory=list)

    def total_changes(self, view: Optional[str] = None) -> int:
        """Total tuples inserted+deleted across steps (optionally one view)."""
        return sum(
            step.inserted + step.deleted
            for step in self.steps
            if view is None or step.view == view
        )


class ViewRefresher:
    """Maintains a set of materialized views over a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        views: Mapping[str, Expression],
        temporary_subexpressions: Optional[Mapping[str, Expression]] = None,
        recompute_views: Optional[Iterable[str]] = None,
        use_physical: bool = True,
        vectorized_differentials: Optional[bool] = None,
        verify_differentials: bool = False,
        physical_executor: Optional[PhysicalExecutor] = None,
        parallel: Optional["ShardPool"] = None,
    ) -> None:
        self.database = database
        #: Optional :class:`~repro.parallel.ShardPool`.  When present, full
        #: view (re)computations and the differentials of shard-eligible
        #: views dispatch per-shard plans and merge; everything else stays
        #: on the serial path, which remains the oracle.  The pool's worker
        #: databases are kept in sync by mirroring every base update.
        self.parallel = parallel
        self.views: Dict[str, Expression] = dict(views)
        #: Shared sub-expressions to materialize temporarily during refresh.
        self.temporaries: Dict[str, Expression] = dict(temporary_subexpressions or {})
        #: Views whose chosen strategy is full recomputation instead of deltas.
        self.recompute_views = set(recompute_views or ())
        #: Full (re)computations of views and temporaries run through the
        #: physical layer (optimizer-chosen plans, vectorized operators);
        #: the logical interpreter remains the verification oracle.  A caller
        #: owning a long-lived executor (the :class:`repro.api.Warehouse`
        #: session, which accumulates cardinality feedback across refresh
        #: rounds) can inject it instead of this refresher building its own.
        if physical_executor is not None and not use_physical:
            raise ValueError(
                "physical_executor was injected but use_physical is False — "
                "drop one of the two"
            )
        self.use_physical = use_physical
        self._physical = (
            physical_executor
            if physical_executor is not None
            else (PhysicalExecutor(database) if use_physical else None)
        )
        #: Differentials run through the vectorized engine (delta kernels +
        #: per-round old-value cache shared across views) by default whenever
        #: the physical layer is on; the interpreted ``differentiate`` stays
        #: available both as the fallback path and as the oracle that
        #: ``verify_differentials`` checks every computed delta against.
        if vectorized_differentials is None:
            vectorized_differentials = use_physical
        self.vectorized_differentials = vectorized_differentials
        self.verify_differentials = verify_differentials
        self._diff_engine = (
            DifferentialEngine(database, physical=self._physical)
            if vectorized_differentials
            else None
        )
        #: Temporaries whose materialization no longer reflects the current
        #: base-table state (set when a relation they depend on is updated).
        self._stale_temporaries: Dict[str, bool] = {}
        self.registry = MaterializedRegistry()
        for name, expression in self.views.items():
            # Views refreshed by recomputation are left stale until the end of
            # the refresh round, so other views' differential computations must
            # not read them as the "old value" of a shared sub-expression.
            if name not in self.recompute_views:
                self.registry.register(expression, name)

    # ------------------------------------------------------------------ set-up

    def _compute(
        self, expression: Expression, materialized: Optional[MaterializedRegistry] = None
    ) -> Relation:
        """Full computation of an expression (physical plan when enabled)."""
        if self._physical is not None:
            return self._physical.evaluate(expression, materialized)
        return evaluate(expression, self.database, materialized)

    def _compute_parallel(
        self, views: Mapping[str, Expression]
    ) -> Dict[str, Optional[Relation]]:
        """Shard-parallel results for the eligible subset of ``views``.

        Maps every requested view to its merged per-shard result, or to
        ``None`` where the expression does not distribute (the caller falls
        back to :meth:`_compute`).
        """
        if self.parallel is None or not views:
            return {}
        return self.parallel.evaluate_many(list(views.items()))

    def initialize_views(self) -> None:
        """Materialize every view from the current database contents."""
        computed = self._compute_parallel(self.views)
        for name, expression in self.views.items():
            result = computed.get(name)
            if result is None:
                result = self._compute(expression)
            self.database.materialize_view(name, result)

    def ensure_views(self) -> None:
        """Materialize only the views that are not stored yet.

        Unlike :meth:`initialize_views` this is safe to call before every
        refresh round: already-materialized views (kept current by earlier
        rounds) are left untouched.
        """
        missing = {
            name: expression
            for name, expression in self.views.items()
            if not self.database.has_view(name)
        }
        computed = self._compute_parallel(missing)
        for name, expression in missing.items():
            result = computed.get(name)
            if result is None:
                result = self._compute(expression)
            self.database.materialize_view(name, result)

    # ------------------------------------------------------------------ refresh

    def refresh(self, deltas: DeltaStore) -> RefreshReport:
        """Propagate one batch of updates into all materialized views.

        Updates are applied one relation and one update kind at a time, in
        the delta store's order (paper §3.1.1): for each single-relation
        update, every view's differential is computed against the current
        (pre-update) state, the view contents are merged, and only then is
        the base relation itself updated.
        """
        return self.refresh_many([deltas])

    def refresh_many(self, rounds: Sequence[DeltaStore]) -> RefreshReport:
        """Propagate a sequence of update rounds in one refresh session.

        This is the multi-round entry the stream scheduler flushes through:
        compared with calling :meth:`refresh` once per round it shares a
        single :class:`~repro.engine.differential.OldValueCache` across all
        flushed rounds (old values, sub-expression deltas and hash builds
        survive between rounds until a base update actually invalidates
        them), keeps temporaries materialized across rounds under the same
        staleness discipline, and rebuilds recomputation-maintained views
        only once, against the fully updated database.
        """
        report = RefreshReport()
        # One old-value cache spans the whole flush: within a round, shared
        # sub-expressions (and their hash builds) evaluate once across all
        # views; across rounds, entries survive until a base update actually
        # invalidates them (advance_round's dependency check).
        round_cache = OldValueCache() if self._diff_engine is not None else None
        incremental_views = {
            name: expr for name, expr in self.views.items() if name not in self.recompute_views
        }
        for deltas in rounds:
            self._refresh_round(deltas, incremental_views, report, round_cache)

        # Views maintained by recomputation are rebuilt once, at the end,
        # against the fully updated database (worker shards were kept in
        # sync round by round, so their post-update recomputation is valid).
        recompute = {
            name: self.views[name] for name in self.recompute_views if name in self.views
        }
        computed = self._compute_parallel(recompute)
        for name, expression in recompute.items():
            result = computed.get(name)
            if result is None:
                result = self._compute(expression)
            self.database.materialize_view(name, result)
            report.recomputed_views.append(name)
        self._drop_all_temporaries()
        if self.parallel is not None and self.temporaries:
            self.parallel.drop_temporaries()
        return report

    def _refresh_round(
        self,
        deltas: DeltaStore,
        incremental_views: Mapping[str, Expression],
        report: RefreshReport,
        round_cache: Optional[OldValueCache],
    ) -> None:
        """Propagate one round's updates (incremental views only)."""
        for update in deltas.update_ids(only_nonempty=True):
            delta_rows = deltas.relation_delta(update.relation, update.kind)
            self._materialize_temporaries(update.relation)
            touched = {
                name: expression
                for name, expression in incremental_views.items()
                if update.relation in base_relations(expression)
            }
            # Shard-eligible differentials run once per shard against the
            # workers' (pre-update) partitions and concat; the rest — and
            # everything when no pool is attached — stay serial.
            parallel_changes: Dict[str, Optional[object]] = {}
            if self.parallel is not None and touched:
                self.parallel.materialize_temporaries(list(self.temporaries.items()))
                parallel_changes = self.parallel.differentials(
                    list(touched.items()), update.relation, update.kind, delta_rows
                )
            # Compute every view's differential against the same pre-update
            # state first, then apply them all, so that no view observes
            # another view's partially propagated contents.
            changes = {}
            for name, expression in touched.items():
                change = parallel_changes.get(name)
                if change is None:
                    change = self._differentiate(
                        expression, update.relation, update.kind, delta_rows, round_cache, name
                    )
                elif self.verify_differentials:
                    oracle = differentiate(
                        expression,
                        self.database,
                        update.relation,
                        update.kind,
                        delta_rows,
                        materialized=self.registry,
                    )
                    verify_differential(change, oracle, context=name)
                changes[name] = change
            for name, change in changes.items():
                self.database.update_view(name, inserts=change.inserts, deletes=change.deletes)
                report.steps.append(
                    ViewRefreshStep(
                        view=name,
                        relation=update.relation,
                        kind=update.kind,
                        inserted=len(change.inserts),
                        deleted=len(change.deletes),
                    )
                )
            self.database.apply_update(update.relation, update.kind, delta_rows)
            if self.parallel is not None:
                # Mirror the update into every worker's shard database (the
                # delta is partitioned with the base table's key function),
                # dropping the per-shard temporaries this update staled.
                stale = [
                    name
                    for name, expression in self.temporaries.items()
                    if update.relation in base_relations(expression)
                ]
                self.parallel.apply_update(
                    update.relation, update.kind, delta_rows, stale_temporaries=stale
                )
            self._flag_stale_temporaries(update.relation)
            if round_cache is not None:
                round_cache.advance_round(update.relation)

    # ------------------------------------------------------------ differentials

    def _differentiate(
        self,
        expression: Expression,
        relation: str,
        kind: DeltaKind,
        delta_rows: Relation,
        round_cache: Optional[OldValueCache],
        view_name: str,
    ):
        """One view's differential, through the configured engine.

        With ``verify_differentials`` set, the vectorized result is checked
        bag-for-bag against the interpreted oracle before it is trusted.
        """
        if self._diff_engine is None:
            return differentiate(
                expression,
                self.database,
                relation,
                kind,
                delta_rows,
                materialized=self.registry,
            )
        change = self._diff_engine.differentiate(
            expression,
            relation,
            kind,
            delta_rows,
            materialized=self.registry,
            cache=round_cache,
        )
        if self.verify_differentials:
            oracle = differentiate(
                expression,
                self.database,
                relation,
                kind,
                delta_rows,
                materialized=self.registry,
            )
            verify_differential(change, oracle, context=view_name)
        return change

    # -------------------------------------------------------------- temporaries

    def _materialize_temporaries(self, relation: str) -> None:
        """(Re)compute the temporary shared results this update round needs.

        A temporary is only useful while it reflects the round's *pre-update*
        state, which a materialization from an earlier round still does as
        long as no relation its expression depends on has been updated since
        (the ``_stale_temporaries`` flags track exactly that).  Only missing
        or stale temporaries are recomputed — not, as the old behavior had
        it, every temporary on every round.

        Stale materializations are dropped (and unregistered) *before* any
        recomputation: a registered stale view would short-circuit its own
        recomputation — and poison any other temporary computed from it —
        through the registry lookup in the evaluators.
        """
        dropped = False
        for name, expression in self.temporaries.items():
            if self._stale_temporaries.get(name) and self.database.has_view(name):
                self.database.drop_view(name)
                self.registry.unregister(expression)
                dropped = True
        if dropped:
            self._reregister_views()
        for name, expression in self.temporaries.items():
            if self.database.has_view(name):
                continue
            self.database.materialize_view(name, self._compute(expression, self.registry))
            self.registry.register(expression, name)
            self._stale_temporaries[name] = False

    def _flag_stale_temporaries(self, relation: str) -> None:
        """Mark the temporaries a just-applied base update invalidated."""
        for name, expression in self.temporaries.items():
            if relation in base_relations(expression):
                self._stale_temporaries[name] = True

    def _drop_all_temporaries(self) -> None:
        """Discard every remaining temporary at the end of a refresh."""
        if not self.temporaries:
            return
        for name, expression in self.temporaries.items():
            if self.database.has_view(name):
                self.database.drop_view(name)
            self.registry.unregister(expression)
            self._stale_temporaries[name] = True
        self._reregister_views()

    def _reregister_views(self) -> None:
        # Re-register the incrementally maintained views in case a temporary
        # shared the canonical form of one of them.
        for name, expression in self.views.items():
            if name not in self.recompute_views:
                self.registry.register(expression, name)

    # ------------------------------------------------------------ verification

    def verify_against_recomputation(self) -> Dict[str, bool]:
        """Compare every stored view against recomputation from base tables."""
        results: Dict[str, bool] = {}
        for name, expression in self.views.items():
            recomputed = evaluate(expression, self.database)
            results[name] = self.database.view(name).same_bag(recomputed)
        return results


def apply_and_refresh(
    database: Database,
    views: Mapping[str, Expression],
    deltas: DeltaStore,
    temporary_subexpressions: Optional[Mapping[str, Expression]] = None,
    recompute_views: Optional[Iterable[str]] = None,
    use_physical: bool = True,
    vectorized_differentials: Optional[bool] = None,
    verify_differentials: bool = False,
) -> Tuple[RefreshReport, Dict[str, bool]]:
    """Convenience wrapper: refresh the views and verify them against recomputation."""
    refresher = ViewRefresher(
        database,
        views,
        temporary_subexpressions=temporary_subexpressions,
        recompute_views=recompute_views,
        use_physical=use_physical,
        vectorized_differentials=vectorized_differentials,
        verify_differentials=verify_differentials,
    )
    if not all(database.has_view(name) for name in views):
        refresher.initialize_views()
    report = refresher.refresh(deltas)
    return report, refresher.verify_against_recomputation()
