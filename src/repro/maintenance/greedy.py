"""The greedy algorithm for selecting extra materialized views and indexes.

Implements the paper's Procedure ``Greedy`` (Figure 2) together with the two
practicality optimizations of §6.2:

* **incremental cost update** — the cost engine keeps its memoized plan costs
  across benefit computations and only invalidates the entries that can
  change (ancestors of the candidate; only the matching update number for a
  differential candidate);
* **monotonicity** — candidate benefits are kept in a max-heap and only
  recomputed lazily: if a candidate's stale benefit is already below the best
  fresh benefit seen this round, it cannot win the round (assuming benefits
  never increase as more results are materialized) and is not re-priced.

On top of selecting what to materialize, the procedure classifies every
selected full result as **temporary** (recomputation during refresh is
cheaper — the result is dropped afterwards) or **permanent** (incremental
maintenance is cheaper — the result is kept and maintained), exactly as in
§6.1, and records the per-result decision for the paper's
"temporary vs. permanent materialization" statistics.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.maintenance.candidates import Candidate
from repro.maintenance.cost_engine import MaintenanceCostEngine


@dataclass
class SelectedResult:
    """One result picked by the greedy algorithm."""

    candidate: Candidate
    benefit: float
    #: "permanent", "temporary" or "index".
    disposition: str
    cost: float


@dataclass
class GreedySelection:
    """Outcome of a greedy run."""

    initial_cost: float
    final_cost: float
    selections: List[SelectedResult] = field(default_factory=list)
    iterations: int = 0
    benefit_evaluations: int = 0
    elapsed_seconds: float = 0.0

    @property
    def improvement(self) -> float:
        """Absolute cost reduction achieved."""
        return self.initial_cost - self.final_cost

    @property
    def improvement_ratio(self) -> float:
        """Relative cost reduction (0 when nothing was gained)."""
        if self.initial_cost <= 0:
            return 0.0
        return self.improvement / self.initial_cost

    def selected_results(self) -> List[SelectedResult]:
        """Selections that are results (not indexes)."""
        return [s for s in self.selections if s.candidate.kind == "result"]

    def selected_indexes(self) -> List[SelectedResult]:
        """Selections that are indexes."""
        return [s for s in self.selections if s.candidate.kind == "index"]

    def count_by_disposition(self) -> Dict[str, int]:
        """Counts of permanent / temporary / index selections."""
        counts: Dict[str, int] = {}
        for selection in self.selections:
            counts[selection.disposition] = counts.get(selection.disposition, 0) + 1
        return counts


class GreedyViewSelector:
    """Runs the greedy selection over a prepared cost engine."""

    def __init__(
        self,
        engine: MaintenanceCostEngine,
        use_monotonicity: bool = True,
        benefit_epsilon: float = 1e-9,
        max_selections: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.use_monotonicity = use_monotonicity
        self.benefit_epsilon = benefit_epsilon
        self.max_selections = max_selections

    # ------------------------------------------------------------------ public

    def run(self, candidates: Sequence[Candidate]) -> GreedySelection:
        """Run Procedure Greedy over ``candidates`` and return the selection.

        The engine's current materialized set is taken as the initial set
        ``X = V``; selected candidates are applied to the engine, so after
        the call the engine reflects the final configuration.
        """
        start = time.perf_counter()
        initial_cost = self.engine.total_cost()
        selection = GreedySelection(initial_cost=initial_cost, final_cost=initial_cost)

        remaining: List[Candidate] = list(candidates)
        if self.use_monotonicity:
            self._run_monotonic(remaining, selection)
        else:
            self._run_basic(remaining, selection)

        selection.final_cost = self.engine.total_cost()
        selection.elapsed_seconds = time.perf_counter() - start
        return selection

    # ------------------------------------------------------------------- loops

    def _run_basic(self, remaining: List[Candidate], selection: GreedySelection) -> None:
        """The unoptimized loop of Figure 2: re-price every candidate each round."""
        while remaining:
            if self.max_selections is not None and len(selection.selections) >= self.max_selections:
                return
            best_candidate: Optional[Candidate] = None
            best_benefit = -float("inf")
            for candidate in remaining:
                benefit = self._benefit(candidate)
                selection.benefit_evaluations += 1
                if benefit > best_benefit:
                    best_benefit = benefit
                    best_candidate = candidate
            selection.iterations += 1
            if best_candidate is None or best_benefit <= self.benefit_epsilon:
                return
            remaining.remove(best_candidate)
            self._accept(best_candidate, best_benefit, selection)

    def _run_monotonic(self, remaining: List[Candidate], selection: GreedySelection) -> None:
        """The lazy (monotonicity-assuming) loop of §6.2."""
        counter = itertools.count()
        heap: List[Tuple[float, int, int, Candidate]] = []
        round_number = 0
        for candidate in remaining:
            benefit = self._benefit(candidate)
            selection.benefit_evaluations += 1
            heapq.heappush(heap, (-benefit, next(counter), round_number, candidate))

        while heap:
            if self.max_selections is not None and len(selection.selections) >= self.max_selections:
                return
            neg_benefit, _, stamped_round, candidate = heapq.heappop(heap)
            benefit = -neg_benefit
            if stamped_round != round_number:
                # Stale benefit: under monotonicity it can only have gone
                # down, so re-price and re-insert; only if it comes out on
                # top again will it be accepted.
                benefit = self._benefit(candidate)
                selection.benefit_evaluations += 1
                heapq.heappush(heap, (-benefit, next(counter), round_number, candidate))
                continue
            selection.iterations += 1
            if benefit <= self.benefit_epsilon:
                return
            self._accept(candidate, benefit, selection)
            round_number += 1

    # ---------------------------------------------------------------- benefits

    def _benefit(self, candidate: Candidate) -> float:
        """``benefit(x, X)`` priced speculatively via incremental cost update."""
        before = self.engine.total_cost()
        with self.engine.speculative():
            self._apply(candidate)
            after = self.engine.total_cost()
        return before - after

    def _apply(self, candidate: Candidate) -> None:
        if candidate.kind == "index":
            self.engine.add_index(candidate.node_id, candidate.columns)
        else:
            assert candidate.key is not None
            self.engine.add_materialized(candidate.key)

    def _accept(self, candidate: Candidate, benefit: float, selection: GreedySelection) -> None:
        self._apply(candidate)
        if candidate.kind == "index":
            disposition = "index"
            cost = self.engine.index_cost(candidate.node_id, candidate.columns)
        elif candidate.key is not None and not candidate.key.is_full:
            disposition = "temporary"
            cost = self.engine.result_cost(candidate.key)
        else:
            assert candidate.key is not None
            cost = self.engine.result_cost(candidate.key)
            disposition = (
                "temporary" if self.engine.prefers_recomputation(candidate.node_id) else "permanent"
            )
        selection.selections.append(SelectedResult(candidate, benefit, disposition, cost))
