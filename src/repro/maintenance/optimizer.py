"""High-level facade: the view-maintenance optimizer.

:class:`ViewMaintenanceOptimizer` ties the pieces together the way the
paper's system does:

1. build the expanded, unified AND-OR DAG over the view definitions (§4);
2. annotate it with the ``2n`` differential entries per node (§5.2);
3. price maintenance plans with the extended cost recurrences (§5.3);
4. run the greedy algorithm to pick extra temporary/permanent results and
   indexes (§6), or skip it for the ``NoGreedy`` baseline;
5. report per-view maintenance decisions and total refresh cost.

Everything downstream (the benchmark harness, the examples) goes through
this class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression, base_relations
from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator
from repro.maintenance.candidates import Candidate, enumerate_candidates
from repro.maintenance.cost_engine import MaintenanceCostEngine
from repro.maintenance.diff_dag import DifferentialAnnotations, ResultKey
from repro.maintenance.greedy import GreedySelection, GreedyViewSelector
from repro.maintenance.plan_selection import MaintenancePlan, select_maintenance_plan
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.cost_model import CostModel
from repro.optimizer.dag import Dag
from repro.optimizer.dag_builder import DagBuilder


@dataclass
class OptimizationResult:
    """Everything produced by one optimizer run."""

    #: Total estimated refresh cost with the chosen configuration.
    total_cost: float
    #: Per-view recompute-vs-incremental decisions under the final configuration.
    plan: MaintenancePlan
    #: The greedy selection (None for NoGreedy runs).
    selection: Optional[GreedySelection]
    #: The DAG the run was performed over (exposed for inspection/plots).
    dag: Dag
    #: The cost engine in its final state (materialized set applied).
    engine: MaintenanceCostEngine
    #: Names of extra results chosen for permanent materialization.
    permanent_results: List[str] = field(default_factory=list)
    #: Names of extra results chosen for temporary materialization.
    temporary_results: List[str] = field(default_factory=list)
    #: Chosen indexes rendered as readable strings.
    indexes: List[str] = field(default_factory=list)
    #: Wall-clock optimization time in seconds.
    optimization_seconds: float = 0.0

    @property
    def extra_materializations(self) -> int:
        """Number of extra results (not indexes) selected."""
        return len(self.permanent_results) + len(self.temporary_results)


class ViewMaintenanceOptimizer:
    """Finds efficient maintenance plans for a set of materialized views."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        include_differential_candidates: bool = False,
        include_index_candidates: bool = True,
        use_monotonicity: bool = True,
        expand_joins: bool = True,
        enable_subsumption: bool = True,
        estimator: Optional[CardinalityEstimator] = None,
    ) -> None:
        self.catalog = catalog
        #: The single estimator every cardinality in this optimizer's DAGs,
        #: differential annotations and cost recurrences comes from.
        self.estimator = estimator or CardinalityEstimator(catalog)
        self.cost_model = cost_model or CostModel()
        self.include_differential_candidates = include_differential_candidates
        self.include_index_candidates = include_index_candidates
        self.use_monotonicity = use_monotonicity
        self.expand_joins = expand_joins
        self.enable_subsumption = enable_subsumption

    # ------------------------------------------------------------ construction

    def build(self, views: Mapping[str, Expression], spec: UpdateSpec) -> Tuple[Dag, MaintenanceCostEngine]:
        """Build the DAG and the differential cost engine for ``views``."""
        builder = DagBuilder(
            self.catalog,
            expand_joins=self.expand_joins,
            enable_subsumption=self.enable_subsumption,
            estimator=self.estimator,
        )
        for name, expression in views.items():
            builder.add_query(name, expression)
        dag = builder.finish()

        relations = sorted({r for expr in views.values() for r in base_relations(expr)})
        restricted = spec.restricted_to(relations)
        annotations = DifferentialAnnotations(
            dag, self.catalog, restricted, estimator=self.estimator
        )
        engine = MaintenanceCostEngine(
            dag,
            self.catalog,
            restricted,
            cost_model=self.cost_model,
            annotations=annotations,
            estimator=self.estimator,
        )
        engine.set_materialized(
            ResultKey(dag.roots[name].id, 0) for name in views
        )
        return dag, engine

    # ---------------------------------------------------------------- NoGreedy

    def no_greedy(self, views: Mapping[str, Expression], spec: UpdateSpec) -> OptimizationResult:
        """The baseline: per-view choice of recomputation vs incremental only."""
        started = time.perf_counter()
        dag, engine = self.build(views, spec)
        plan = select_maintenance_plan(engine, {name: dag.roots[name].id for name in views})
        return OptimizationResult(
            total_cost=plan.total_cost,
            plan=plan,
            selection=None,
            dag=dag,
            engine=engine,
            optimization_seconds=time.perf_counter() - started,
        )

    def no_greedy_cost(self, views: Mapping[str, Expression], spec: UpdateSpec) -> float:
        """Convenience: the NoGreedy total refresh cost."""
        return self.no_greedy(views, spec).total_cost

    # ------------------------------------------------------------------ Greedy

    def optimize(
        self,
        views: Mapping[str, Expression],
        spec: UpdateSpec,
        max_selections: Optional[int] = None,
        extra_candidates: Optional[Sequence[Candidate]] = None,
    ) -> OptimizationResult:
        """Run the full greedy optimization and return the chosen configuration."""
        started = time.perf_counter()
        dag, engine = self.build(views, spec)
        candidates = list(
            enumerate_candidates(
                dag,
                self.catalog,
                annotations=engine.annotations,
                initial=engine.materialized,
                include_full_results=True,
                include_differentials=self.include_differential_candidates,
                include_indexes=self.include_index_candidates,
            )
        )
        if extra_candidates:
            candidates.extend(extra_candidates)

        selector = GreedyViewSelector(
            engine, use_monotonicity=self.use_monotonicity, max_selections=max_selections
        )
        selection = selector.run(candidates)
        plan = select_maintenance_plan(engine, {name: dag.roots[name].id for name in views})

        permanent: List[str] = []
        temporary: List[str] = []
        indexes: List[str] = []
        for chosen in selection.selections:
            label = chosen.candidate.describe(dag)
            if chosen.disposition == "permanent":
                permanent.append(label)
            elif chosen.disposition == "temporary":
                temporary.append(label)
            else:
                indexes.append(label)

        return OptimizationResult(
            total_cost=plan.total_cost,
            plan=plan,
            selection=selection,
            dag=dag,
            engine=engine,
            permanent_results=permanent,
            temporary_results=temporary,
            indexes=indexes,
            optimization_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------- comparisons

    def compare(
        self, views: Mapping[str, Expression], spec: UpdateSpec
    ) -> Dict[str, OptimizationResult]:
        """Run both NoGreedy and Greedy for the same workload (one figure point)."""
        return {
            "no_greedy": self.no_greedy(views, spec),
            "greedy": self.optimize(views, spec),
        }
