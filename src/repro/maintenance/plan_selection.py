"""View-maintenance plan selection without extra materializations (NoGreedy).

This is the paper's baseline: "plain Volcano query optimization extended to
choose between recomputation and incremental maintenance of views" (§7.1) —
the class into which Vista's approach falls.  Given the set of views (which
are materialized by definition) the optimizer picks, per view, the cheaper
of

* recomputing the view from the (updated) base relations and writing it out,
  or
* computing its differentials one update at a time and merging them in,

using the same cost engine as Greedy but with the materialized set fixed to
the views themselves and no extra indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.maintenance.cost_engine import MaintenanceCostEngine


@dataclass
class ViewMaintenanceDecision:
    """Chosen maintenance strategy for one view."""

    view: str
    node_id: int
    recompute_cost: float
    incremental_cost: float

    @property
    def strategy(self) -> str:
        """``"recompute"`` or ``"incremental"`` — whichever is cheaper."""
        return "recompute" if self.recompute_cost <= self.incremental_cost else "incremental"

    @property
    def cost(self) -> float:
        """The cost of the chosen strategy."""
        return min(self.recompute_cost, self.incremental_cost)


@dataclass
class MaintenancePlan:
    """Per-view decisions plus the total refresh cost."""

    decisions: List[ViewMaintenanceDecision] = field(default_factory=list)
    total_cost: float = 0.0

    def decision_for(self, view: str) -> ViewMaintenanceDecision:
        """The decision for one view."""
        for decision in self.decisions:
            if decision.view == view:
                return decision
        raise KeyError(f"no decision recorded for view {view!r}")

    def counts(self) -> Dict[str, int]:
        """How many views chose each strategy."""
        counts: Dict[str, int] = {"recompute": 0, "incremental": 0}
        for decision in self.decisions:
            counts[decision.strategy] += 1
        return counts


def select_maintenance_plan(engine: MaintenanceCostEngine, views: Dict[str, int]) -> MaintenancePlan:
    """Choose recomputation vs incremental maintenance for every view.

    ``views`` maps view names to their root equivalence node ids.  The
    engine's materialized set must already contain the views' full results
    (and whatever else the caller wants visible to the plans).
    """
    plan = MaintenancePlan()
    for name, node_id in views.items():
        decision = ViewMaintenanceDecision(
            view=name,
            node_id=node_id,
            recompute_cost=engine.recompute_cost(node_id),
            incremental_cost=engine.maintcost(node_id),
        )
        plan.decisions.append(decision)
    plan.total_cost = engine.total_cost()
    return plan
