"""Candidate enumeration for the greedy materialization algorithm.

The greedy algorithm of paper §6 chooses among:

* **full results** of equivalence nodes (shared sub-expressions, extra
  views) — these may end up *temporarily* materialized (if recomputation is
  cheaper) or *permanently* materialized (if incremental maintenance is
  cheaper);
* **differential results** ``δ(e, i)`` — always temporary, used to share a
  differential between several consumers;
* **indexes** on base relations or on materialized results — modelled as
  physical properties whose presence changes join and merge costs (§4.3).

This module enumerates those candidates from the DAG.  The number of
candidates grows quickly with query size (the paper notes it grows
exponentially with the number of relations), so simple pruning switches are
provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.maintenance.diff_dag import DifferentialAnnotations, ResultKey
from repro.optimizer.dag import Dag, OperatorKind


@dataclass(frozen=True)
class Candidate:
    """One thing the greedy algorithm may decide to materialize.

    ``kind`` is ``"result"`` (full or differential result, identified by
    ``key``) or ``"index"`` (an index on ``columns`` of node ``node_id``).
    """

    kind: str
    node_id: int
    key: Optional[ResultKey] = None
    columns: Tuple[str, ...] = ()

    def describe(self, dag: Optional[Dag] = None) -> str:
        """Readable rendering used in reports."""
        if self.kind == "index":
            label = f"e{self.node_id}"
            if dag is not None:
                node = dag.node(self.node_id)
                if node.is_base_relation:
                    label = node.expression.canonical()
                elif node.view_name:
                    label = node.view_name
            return f"index({label}: {','.join(self.columns)})"
        assert self.key is not None
        return self.key.describe(dag)


def _join_columns_per_node(dag: Dag) -> Dict[int, Set[str]]:
    """For every equivalence node, the join columns an index on it could serve.

    Two sources: columns through which a parent operation joins the node
    (useful for probing the node from a differential), and — for non-base
    nodes, including the view roots themselves — any join-condition column
    present in the node's schema (useful for locating affected tuples when
    merging differentials into the stored result).
    """
    all_join_columns: Set[str] = set()
    columns: Dict[int, Set[str]] = {}
    for operation in dag.operation_nodes:
        if operation.operator.kind is not OperatorKind.JOIN:
            continue
        left, right = operation.inputs
        for (a, b) in operation.operator.conditions:
            all_join_columns.update((a, b))
            for node, column in ((left, a), (left, b), (right, a), (right, b)):
                if column in node.schema:
                    columns.setdefault(node.id, set()).add(column)
    for node in dag.equivalence_nodes:
        if node.is_base_relation:
            continue
        for column in all_join_columns:
            if column in node.schema:
                columns.setdefault(node.id, set()).add(column)
    return columns


def enumerate_candidates(
    dag: Dag,
    catalog: Catalog,
    annotations: Optional[DifferentialAnnotations] = None,
    initial: Optional[Iterable[ResultKey]] = None,
    include_full_results: bool = True,
    include_differentials: bool = False,
    include_indexes: bool = True,
    max_candidates: Optional[int] = None,
) -> List[Candidate]:
    """Enumerate materialization candidates for the greedy algorithm.

    ``initial`` is the set of results already materialized (the given views);
    they are not offered again.  Base relations are never candidates (they
    are stored by definition), and equivalence nodes that are referenced by
    only one operation *and* are not view roots are ordinarily still useful
    candidates (a node used once can still be worth materializing permanently
    to speed up maintenance — the paper drops RSSB00's sharability pruning
    for exactly this reason, §6.2), so no sharability filter is applied.
    """
    already = {key for key in (initial or ())}
    candidates: List[Candidate] = []

    if include_full_results or include_differentials:
        for node in dag.equivalence_nodes:
            if node.is_base_relation:
                continue
            key = ResultKey(node.id, 0)
            if include_full_results and key not in already:
                candidates.append(Candidate("result", node.id, key=key))
            if include_differentials and annotations is not None:
                for update in annotations.updates():
                    if update.relation not in node.base_relations:
                        continue
                    diff_key = ResultKey(node.id, update.number)
                    if diff_key not in already:
                        candidates.append(Candidate("result", node.id, key=diff_key))

    if include_indexes:
        join_columns = _join_columns_per_node(dag)
        for node in dag.equivalence_nodes:
            columns = join_columns.get(node.id, set())
            for column in sorted(columns):
                if node.is_base_relation:
                    relation = node.expression.canonical()
                    if catalog.has_index_on(relation, [column]):
                        continue
                candidates.append(Candidate("index", node.id, columns=(column,)))

    if max_candidates is not None and len(candidates) > max_candidates:
        candidates = candidates[:max_candidates]
    return candidates
