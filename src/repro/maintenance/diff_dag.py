"""Differential annotations over the AND-OR DAG.

Paper §5.2 extends each equivalence node with ``2n`` entries — one per
(relation, insert/delete) update — holding the logical properties of the
node's differential with respect to that update.  This module computes those
logical properties (estimated cardinality, width, column statistics of the
differential result) for every node, by re-deriving the node's statistics
with the updated relation's statistics replaced by the statistics of its
delta batch.

The best *plans* for the differentials are computed separately by the
maintenance cost engine; this module is purely about logical properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.schema_derivation import derive_stats
from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator
from repro.catalog.statistics import TableStats
from repro.optimizer.dag import Dag, EquivalenceNode
from repro.storage.delta import UpdateId
from repro.maintenance.update_spec import UpdateSpec


class DeltaCatalog(Catalog):
    """A catalog view in which one relation's statistics are its delta's.

    Deriving an expression's statistics against this catalog yields the
    statistics of the expression's differential with respect to that
    relation's insert or delete batch (the other relations keep their full
    statistics — exactly the shape of the paper's one-update-at-a-time
    differential expressions).
    """

    def __init__(self, base: Catalog, relation: str, delta_stats: TableStats) -> None:
        super().__init__()
        self._base = base
        self._relation = relation
        self._delta_stats = delta_stats

    # Delegate everything to the wrapped catalog except the one stats lookup.
    def table(self, name: str):
        return self._base.table(name)

    def has_table(self, name: str) -> bool:
        return self._base.has_table(name)

    def schema(self, name: str):
        return self._base.schema(name)

    def stats(self, name: str) -> TableStats:
        if name == self._relation:
            return self._delta_stats
        return self._base.stats(name)

    def stats_version(self, name: str) -> int:
        return self._base.stats_version(name)

    def indexes(self, table: str):
        return self._base.indexes(table)

    def has_index_on(self, table: str, columns: Sequence[str]) -> bool:
        return self._base.has_index_on(table, columns)


@dataclass(frozen=True)
class ResultKey:
    """Identifies a result in the DAG: a node's full result or one differential.

    ``update`` is 0 for the full result (the paper's convention) and the
    1-based update number otherwise.
    """

    node_id: int
    update: int = 0

    @property
    def is_full(self) -> bool:
        """Whether this is the node's full result."""
        return self.update == 0

    def describe(self, dag: Optional[Dag] = None) -> str:
        """Readable rendering, e.g. ``e7`` or ``δ3(e7)``."""
        label = f"e{self.node_id}"
        if dag is not None:
            node = dag.node(self.node_id)
            if node.view_name:
                label = node.view_name
        if self.is_full:
            return label
        return f"δ{self.update}({label})"


class DifferentialAnnotations:
    """Per-node, per-update logical properties of differentials."""

    def __init__(
        self,
        dag: Dag,
        catalog: Catalog,
        spec: UpdateSpec,
        estimator: Optional[CardinalityEstimator] = None,
    ) -> None:
        self.dag = dag
        self.catalog = catalog
        self.spec = spec
        self.estimator = estimator or CardinalityEstimator(catalog)
        # Propagation order: base relations appearing anywhere in the DAG,
        # ordered by the spec's relation order (fallback: sorted names).
        present = set()
        for node in dag.equivalence_nodes:
            present |= set(node.base_relations)
        ordered = [r for r in spec.relation_order if r in present]
        ordered += sorted(present - set(ordered))
        self.relations: List[str] = ordered
        self.update_ids: List[UpdateId] = spec.restricted_to(self.relations).update_ids(
            self.relations, only_nonempty=True
        )
        self._delta_stats: Dict[Tuple[int, int], TableStats] = {}
        self._delta_catalogs: Dict[int, DeltaCatalog] = {}
        self._compute()

    # ------------------------------------------------------------------ build

    def _compute(self) -> None:
        for update in self.update_ids:
            delta_relation_stats = self.spec.delta_stats(self.catalog, update.relation, update.kind)
            delta_catalog = DeltaCatalog(self.catalog, update.relation, delta_relation_stats)
            self._delta_catalogs[update.number] = delta_catalog
            # Per-update estimator clone: the delta catalog disagrees with
            # the base catalog about the updated relation, so the memoized
            # estimates must not be shared; full-result feedback does not
            # describe differentials, so it is disabled for these.
            delta_estimator = self.estimator.for_catalog(delta_catalog, use_feedback=False)
            for node in self.dag.equivalence_nodes:
                if update.relation not in node.base_relations:
                    continue
                stats = derive_stats(node.expression, delta_catalog, estimator=delta_estimator)
                self._delta_stats[(node.id, update.number)] = stats

    # ----------------------------------------------------------------- lookups

    def updates(self) -> List[UpdateId]:
        """All non-empty updates in propagation order."""
        return list(self.update_ids)

    def update_by_number(self, number: int) -> UpdateId:
        """Resolve an update number back to its :class:`UpdateId`."""
        for update in self.update_ids:
            if update.number == number:
                return update
        raise KeyError(f"unknown update number {number}")

    def depends(self, node: EquivalenceNode, update: UpdateId) -> bool:
        """Whether the node's differential w.r.t. ``update`` is non-empty."""
        return update.relation in node.base_relations

    def delta_stats(self, node_id: int, update_number: int) -> TableStats:
        """Statistics of ``δ(node, update)``; empty stats if the node is unaffected."""
        stats = self._delta_stats.get((node_id, update_number))
        if stats is not None:
            return stats
        node = self.dag.node(node_id)
        return TableStats(0.0, node.stats.tuple_width, {})

    def relation_delta_stats(self, update: UpdateId) -> TableStats:
        """Statistics of the raw δ batch of the updated base relation."""
        return self.spec.delta_stats(self.catalog, update.relation, update.kind)

    def total_delta_cardinality(self, node_id: int) -> float:
        """Sum of differential cardinalities over all updates (sizing merges)."""
        return sum(
            self.delta_stats(node_id, update.number).cardinality for update in self.update_ids
        )

    def delta_stats_list(self, node_id: int) -> List[TableStats]:
        """Differential statistics for every update affecting the node."""
        node = self.dag.node(node_id)
        return [
            self.delta_stats(node_id, update.number)
            for update in self.update_ids
            if update.relation in node.base_relations
        ]
