"""Update specifications.

An :class:`UpdateSpec` describes the batch of updates a refresh round has to
propagate: for every base relation, what fraction of its tuples is inserted
and what fraction is deleted.  The paper's experiments use a single "update
percentage" knob with **twice as many inserts as deletes** ("a 10 percent
update to a relation consists of inserting 10% as many tuples as are
currently in the relation, and deleting 5% of the current tuples", §7.1);
:meth:`UpdateSpec.uniform` reproduces exactly that convention.

The spec also carries the paper's update numbering (§5.2): with relations
``R_1 … R_n`` in a fixed order, update ``2i−1`` is the insert batch on
``R_i`` and update ``2i`` the delete batch, and updates are propagated one at
a time in that order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import TableStats
from repro.storage.delta import DeltaKind, UpdateId


@dataclass(frozen=True)
class RelationUpdate:
    """Insert and delete fractions for one relation."""

    insert_fraction: float = 0.0
    delete_fraction: float = 0.0

    @property
    def is_empty(self) -> bool:
        """Whether the relation receives no updates at all."""
        return self.insert_fraction <= 0.0 and self.delete_fraction <= 0.0

    def fraction(self, kind: DeltaKind) -> float:
        """The fraction for one update kind."""
        return self.insert_fraction if kind is DeltaKind.INSERT else self.delete_fraction


class UpdateSpec:
    """Per-relation update fractions plus the paper's update numbering."""

    def __init__(
        self,
        updates: Mapping[str, RelationUpdate],
        relation_order: Optional[Sequence[str]] = None,
    ) -> None:
        self._updates: Dict[str, RelationUpdate] = dict(updates)
        self._order: List[str] = list(relation_order) if relation_order else sorted(self._updates)
        for name in self._updates:
            if name not in self._order:
                self._order.append(name)

    # ------------------------------------------------------------ constructors

    @staticmethod
    def uniform(
        update_percentage: float,
        relations: Optional[Sequence[str]] = None,
        insert_to_delete_ratio: float = 2.0,
    ) -> "UpdateSpec":
        """The paper's uniform update model.

        ``update_percentage`` is expressed as a fraction (0.10 for the
        paper's "10 percent update"): every relation gets inserts equal to
        that fraction of its cardinality and deletes equal to that fraction
        divided by ``insert_to_delete_ratio`` (2 by default, modelling a
        growing database).  If ``relations`` is omitted the spec applies to
        whichever relations the optimizer asks about.
        """
        if update_percentage < 0:
            raise ValueError("update percentage must be non-negative")
        update = RelationUpdate(
            insert_fraction=update_percentage,
            delete_fraction=update_percentage / insert_to_delete_ratio,
        )
        if relations is None:
            return _UniformUpdateSpec(update)
        return UpdateSpec({name: update for name in relations}, relation_order=relations)

    @staticmethod
    def none(relations: Optional[Sequence[str]] = None) -> "UpdateSpec":
        """A spec with no updates (used for pure query workloads)."""
        return UpdateSpec({name: RelationUpdate() for name in (relations or [])}, relations)

    # ----------------------------------------------------------------- lookups

    @property
    def relation_order(self) -> List[str]:
        """Relations in propagation order."""
        return list(self._order)

    def for_relation(self, relation: str) -> RelationUpdate:
        """The update fractions for ``relation`` (empty if unspecified)."""
        return self._updates.get(relation, RelationUpdate())

    def updated_relations(self) -> List[str]:
        """Relations that actually receive updates."""
        return [name for name in self._order if not self.for_relation(name).is_empty]

    def restricted_to(self, relations: Sequence[str]) -> "UpdateSpec":
        """A spec limited to (and ordered by) the given relations."""
        return UpdateSpec(
            {name: self.for_relation(name) for name in relations}, relation_order=relations
        )

    # --------------------------------------------------------- update numbering

    def update_ids(self, relations: Optional[Sequence[str]] = None, only_nonempty: bool = True) -> List[UpdateId]:
        """The ``1..2n`` update ids, optionally restricted to non-empty batches."""
        order = list(relations) if relations is not None else self._order
        ids: List[UpdateId] = []
        for i, relation in enumerate(order):
            spec = self.for_relation(relation)
            for offset, kind in ((1, DeltaKind.INSERT), (2, DeltaKind.DELETE)):
                if only_nonempty and spec.fraction(kind) <= 0.0:
                    continue
                ids.append(UpdateId(2 * i + offset, relation, kind))
        return ids

    # ----------------------------------------------------------- delta sizing

    def delta_stats(self, catalog: Catalog, relation: str, kind: DeltaKind) -> TableStats:
        """Estimated statistics of the δ+ or δ− batch for ``relation``."""
        base = catalog.stats(relation)
        fraction = self.for_relation(relation).fraction(kind)
        return base.scaled(fraction)

    def delta_cardinality(self, catalog: Catalog, relation: str, kind: DeltaKind) -> float:
        """Estimated number of tuples in the δ+ or δ− batch."""
        return self.delta_stats(catalog, relation, kind).cardinality

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        for relation in self._order:
            spec = self.for_relation(relation)
            if not spec.is_empty:
                parts.append(
                    f"{relation}: +{spec.insert_fraction:.0%}/-{spec.delete_fraction:.0%}"
                )
        return ", ".join(parts) or "no updates"


class _UniformUpdateSpec(UpdateSpec):
    """An update spec applying the same fractions to every relation asked about."""

    def __init__(self, update: RelationUpdate) -> None:
        super().__init__({})
        self._uniform_update = update

    def for_relation(self, relation: str) -> RelationUpdate:
        return self._uniform_update

    def restricted_to(self, relations: Sequence[str]) -> UpdateSpec:
        return UpdateSpec({name: self._uniform_update for name in relations}, relation_order=relations)

    def update_ids(self, relations: Optional[Sequence[str]] = None, only_nonempty: bool = True):
        if relations is None:
            return []
        return super().update_ids(relations, only_nonempty)

    def describe(self) -> str:
        update = self._uniform_update
        if update.is_empty:
            return "no updates"
        return (
            f"every relation: +{update.insert_fraction:.1%}/-{update.delete_fraction:.1%}"
        )
