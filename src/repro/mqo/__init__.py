"""Multi-query optimization (Roy et al., RSSB00).

The paper builds on the RSSB00 framework: given a *batch of queries*, decide
which shared sub-expressions to compute once, materialize temporarily, and
reuse, using a greedy benefit heuristic over the unified AND-OR DAG.  This
package provides that query-workload machinery (the maintenance-aware
extension lives in :mod:`repro.maintenance`):

* :mod:`repro.mqo.sharing` — detection of sub-expressions shared between
  queries (and the sharability pruning RSSB00 applies to candidates);
* :mod:`repro.mqo.greedy` — the greedy selection of temporary
  materializations for a query workload, with the monotonicity optimization.
"""

from repro.mqo.sharing import shared_nodes, sharable_candidates
from repro.mqo.greedy import MultiQueryOptimizer, MqoResult

__all__ = [
    "shared_nodes",
    "sharable_candidates",
    "MultiQueryOptimizer",
    "MqoResult",
]
