"""Shared sub-expression detection over the AND-OR DAG.

A node is *shared* when it can participate in the plans of more than one
query root.  RSSB00's "sharability" optimization only offers shared nodes as
materialization candidates for query workloads (a result used by a single
query is never worth materializing temporarily — computing it in place is
always at least as good).  Note that the maintenance setting deliberately
drops this pruning (paper §6.2): a result used once can still be worth
materializing *permanently* to speed up maintenance.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.optimizer.dag import Dag, EquivalenceNode


def _reachable_from(root: EquivalenceNode) -> Set[int]:
    """All equivalence node ids reachable downward from ``root``."""
    seen: Set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        for operation in node.children:
            stack.extend(operation.inputs)
    return seen


def nodes_per_query(dag: Dag) -> Dict[str, Set[int]]:
    """Map each query/view root name to the node ids reachable from it."""
    return {name: _reachable_from(root) for name, root in dag.roots.items()}


def shared_nodes(dag: Dag, minimum_queries: int = 2) -> List[EquivalenceNode]:
    """Nodes reachable from at least ``minimum_queries`` different roots."""
    per_query = nodes_per_query(dag)
    counts: Dict[int, int] = {}
    for reachable in per_query.values():
        for node_id in reachable:
            counts[node_id] = counts.get(node_id, 0) + 1
    return [
        node
        for node in dag.equivalence_nodes
        if counts.get(node.id, 0) >= minimum_queries and not node.is_base_relation
    ]


def sharable_candidates(dag: Dag) -> List[EquivalenceNode]:
    """Candidate nodes for temporary materialization in a query workload.

    Shared non-base nodes, excluding the query roots themselves (each root is
    produced exactly once anyway) — RSSB00's sharability pruning.
    """
    roots = {node.id for node in dag.roots.values()}
    return [node for node in shared_nodes(dag) if node.id not in roots]


def sharing_report(dag: Dag) -> Dict[str, List[str]]:
    """Readable report: which shared sub-expressions appear in which queries."""
    per_query = nodes_per_query(dag)
    report: Dict[str, List[str]] = {}
    for node in shared_nodes(dag):
        queries = sorted(name for name, reachable in per_query.items() if node.id in reachable)
        report[node.key] = queries
    return report
