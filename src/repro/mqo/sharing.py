"""Shared sub-expression detection and shared-batch execution.

A node is *shared* when it can participate in the plans of more than one
query root.  RSSB00's "sharability" optimization only offers shared nodes as
materialization candidates for query workloads (a result used by a single
query is never worth materializing temporarily — computing it in place is
always at least as good).  Note that the maintenance setting deliberately
drops this pruning (paper §6.2): a result used once can still be worth
materializing *permanently* to speed up maintenance.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.algebra.expressions import Expression
from repro.algebra.schema_derivation import derive_schema
from repro.engine.database import Database
from repro.engine.executor import MaterializedRegistry
from repro.engine.physical import PhysicalExecutor, execute_plan
from repro.optimizer.dag import Dag, EquivalenceNode
from repro.optimizer.plans import PlanNode
from repro.storage.relation import Relation


def _reachable_from(root: EquivalenceNode) -> Set[int]:
    """All equivalence node ids reachable downward from ``root``."""
    seen: Set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        for operation in node.children:
            stack.extend(operation.inputs)
    return seen


def nodes_per_query(dag: Dag) -> Dict[str, Set[int]]:
    """Map each query/view root name to the node ids reachable from it."""
    return {name: _reachable_from(root) for name, root in dag.roots.items()}


def shared_nodes(dag: Dag, minimum_queries: int = 2) -> List[EquivalenceNode]:
    """Nodes reachable from at least ``minimum_queries`` different roots."""
    per_query = nodes_per_query(dag)
    counts: Dict[int, int] = {}
    for reachable in per_query.values():
        for node_id in reachable:
            counts[node_id] = counts.get(node_id, 0) + 1
    return [
        node
        for node in dag.equivalence_nodes
        if counts.get(node.id, 0) >= minimum_queries and not node.is_base_relation
    ]


def sharable_candidates(dag: Dag) -> List[EquivalenceNode]:
    """Candidate nodes for temporary materialization in a query workload.

    Shared non-base nodes, excluding the query roots themselves (each root is
    produced exactly once anyway) — RSSB00's sharability pruning.
    """
    roots = {node.id for node in dag.roots.values()}
    return [node for node in shared_nodes(dag) if node.id not in roots]


#: Reuse labels minted by plan extraction for unnamed DAG nodes ("e<id>").
_AUTO_LABEL = re.compile(r"e\d+")


def _check_temporary_order(ordered: List[Tuple[str, Expression]]) -> None:
    """Statically verify the materialization order before computing anything.

    A temporary that contains another temporary as a sub-expression must be
    materialized after it; raises
    :class:`~repro.engine.physical.PhysicalPlanError` otherwise
    (``REPRO-P007``) so a broken order surfaces before the first shared
    result is stored.
    """
    from repro.analysis.diagnostics import render_diagnostics
    from repro.analysis.planlint import verify_temporaries
    from repro.engine.physical import PhysicalPlanError

    diagnostics = verify_temporaries(ordered)
    if diagnostics:
        raise PhysicalPlanError(
            "shared temporaries are not topologically ordered:\n"
            + render_diagnostics(diagnostics)
        )


def execute_with_temporaries(
    database: Database,
    queries: Mapping[str, Expression],
    plans: Mapping[str, PlanNode],
    drop_temporaries: bool = True,
    parallel=None,
) -> Dict[str, Relation]:
    """Execute a multi-query batch the way its optimized plans prescribe.

    Every ``reuse[...]`` step across the plans names a shared sub-expression
    the optimizer chose to materialize temporarily.  Those are computed once
    (through the physical layer, smaller expressions first so nested shared
    results can themselves reuse earlier ones), registered as temporary
    views, and then every query plan executes against them.  Results are
    conformed to each query's logical schema; the temporaries are dropped
    afterwards unless ``drop_temporaries`` is cleared.

    With ``parallel`` (a :class:`~repro.parallel.ShardPool`), the shared
    temporaries are additionally materialized once per shard and every
    shard-parallelizable query of the batch executes across the pool,
    merged back through its shard plan; the rest run their serial physical
    plans unchanged.
    """
    registry = MaterializedRegistry()
    temporaries: Dict[str, Expression] = {}
    for plan in plans.values():
        for step in plan.reused_nodes():
            name = step.view_name
            if name is None or step.expression is None or name in temporaries:
                continue
            # A reuse label that names a genuinely materialized view (a root
            # view, a permanent result) is read as-is.  DAG-scoped labels
            # ("e14") are never trusted against existing relations — node ids
            # are not stable across DAGs — so those are always computed
            # fresh under a collision-free name.
            if database.has_relation(name) and not _AUTO_LABEL.fullmatch(name):
                continue
            temporaries[name] = step.expression

    executor = PhysicalExecutor(database)
    # A shared result nested inside another shared result has a strictly
    # shorter canonical form, so ascending canonical length is a valid
    # materialization order.
    ordered = sorted(temporaries.items(), key=lambda item: len(item[1].canonical()))
    _check_temporary_order(ordered)
    created: List[Tuple[str, Expression]] = []
    try:
        for name, expression in ordered:
            # Pick a storage name that cannot collide with existing
            # relations; the plans resolve reuse steps through the registry
            # (by expression), so the label need not match.
            stored_as = name
            suffix = 0
            while database.has_relation(stored_as):
                suffix += 1
                stored_as = f"{name}__tmp{suffix}"
            database.materialize_view(stored_as, executor.evaluate(expression, registry))
            registry.register(expression, stored_as)
            created.append((stored_as, expression))

        sharded: Dict[str, Optional[Relation]] = {}
        if parallel is not None:
            batch = [(name, queries[name]) for name in plans if name in queries]
            sharded = parallel.evaluate_many(batch, temporaries=created)
        results: Dict[str, Relation] = {}
        for name, plan in plans.items():
            merged = sharded.get(name)
            if merged is not None:
                results[name] = merged
                continue
            expected = None
            if name in queries:
                expected = derive_schema(queries[name], database.catalog)
            results[name] = execute_plan(
                plan, database, registry, output_schema=expected
            )
        return results
    finally:
        if drop_temporaries:
            for name, expression in created:
                database.drop_view(name)
                registry.unregister(expression)
            if parallel is not None and created:
                parallel.drop_temporaries([name for name, _ in created])


def sharing_report(dag: Dag) -> Dict[str, List[str]]:
    """Readable report: which shared sub-expressions appear in which queries."""
    per_query = nodes_per_query(dag)
    report: Dict[str, List[str]] = {}
    for node in shared_nodes(dag):
        queries = sorted(name for name, reachable in per_query.items() if node.id in reachable)
        report[node.key] = queries
    return report
