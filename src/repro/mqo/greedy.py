"""Greedy multi-query optimization for query workloads (no updates).

This is the RSSB00 algorithm the paper starts from: pick a set of shared
sub-expressions to compute once, materialize temporarily, and reuse across
the queries of a batch, so as to minimize

    Σ_q  cost(q, M)   +   Σ_{m ∈ M} ( compcost(m, M) + matcost(m) )

The greedy loop repeatedly adds the candidate with the highest benefit until
no candidate improves the total.  The monotonicity optimization (lazy benefit
re-evaluation) is shared with the maintenance-time greedy; the incremental
cost update is not needed here because query-workload DAGs re-optimize in
well under a millisecond at the sizes RSSB00 and this paper use.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algebra.expressions import Expression
from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator
from repro.mqo.sharing import sharable_candidates
from repro.optimizer.cost_model import CostModel
from repro.optimizer.dag_builder import DagBuilder
from repro.optimizer.plans import PlanNode
from repro.optimizer.volcano import VolcanoSearch


@dataclass
class MqoResult:
    """Outcome of multi-query optimization for one query batch."""

    #: Total cost of the batch without any shared materialization.
    unshared_cost: float
    #: Total cost with the chosen temporary materializations.
    optimized_cost: float
    #: Keys of the sub-expressions chosen for temporary materialization.
    materialized_keys: List[str] = field(default_factory=list)
    #: Per-query plan cost under the final configuration.
    query_costs: Dict[str, float] = field(default_factory=dict)
    #: Extracted plans per query under the final configuration.
    plans: Dict[str, PlanNode] = field(default_factory=dict)
    #: Wall-clock optimization time (seconds).
    elapsed_seconds: float = 0.0

    @property
    def improvement_ratio(self) -> float:
        """Relative cost reduction from sharing."""
        if self.unshared_cost <= 0:
            return 0.0
        return (self.unshared_cost - self.optimized_cost) / self.unshared_cost


class MultiQueryOptimizer:
    """RSSB00-style greedy MQO over a batch of queries."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        use_monotonicity: bool = True,
        apply_sharability_pruning: bool = True,
        estimator: Optional[CardinalityEstimator] = None,
    ) -> None:
        self.catalog = catalog
        #: All cardinality/selectivity estimation for the batch routes
        #: through this single estimator (shared sub-expressions are priced
        #: identically wherever they appear).
        self.estimator = estimator or CardinalityEstimator(catalog)
        self.cost_model = cost_model or CostModel()
        self.use_monotonicity = use_monotonicity
        self.apply_sharability_pruning = apply_sharability_pruning

    # ------------------------------------------------------------------ public

    def optimize(self, queries: Mapping[str, Expression]) -> MqoResult:
        """Choose temporary materializations for ``queries`` and price the batch."""
        started = time.perf_counter()
        builder = DagBuilder(self.catalog, estimator=self.estimator)
        for name, expression in queries.items():
            builder.add_query(name, expression)
        dag = builder.finish()
        search = VolcanoSearch(dag, self.catalog, self.cost_model)

        roots = {name: node.id for name, node in dag.roots.items()}
        baseline = self._workload_cost(search, roots, frozenset())

        if self.apply_sharability_pruning:
            candidates = [node.id for node in sharable_candidates(dag)]
        else:
            candidates = [
                node.id
                for node in dag.equivalence_nodes
                if not node.is_base_relation and node.id not in set(roots.values())
            ]

        chosen = self._greedy(search, roots, candidates, baseline)
        final_cost = self._workload_cost(search, roots, frozenset(chosen))

        result = MqoResult(
            unshared_cost=baseline,
            optimized_cost=final_cost,
            materialized_keys=[dag.node(node_id).key for node_id in chosen],
            elapsed_seconds=time.perf_counter() - started,
        )
        final = search.optimize(materialized=chosen)
        for name, node_id in roots.items():
            result.query_costs[name] = final.compcost(node_id)
            result.plans[name] = final.extract_plan(node_id)
        return result

    # ----------------------------------------------------------------- internals

    def _workload_cost(
        self, search: VolcanoSearch, roots: Mapping[str, int], materialized: FrozenSet[int]
    ) -> float:
        """Σ query costs + cost of producing and storing the shared results."""
        outcome = search.optimize(materialized=materialized)
        total = sum(outcome.compcost(node_id) for node_id in roots.values())
        for node_id in materialized:
            node = search.dag.node(node_id)
            total += outcome.compcost(node_id) + self.cost_model.materialize_cost(node.stats)
        return total

    def _greedy(
        self,
        search: VolcanoSearch,
        roots: Mapping[str, int],
        candidates: Sequence[int],
        baseline: float,
    ) -> Set[int]:
        chosen: Set[int] = set()
        current_cost = baseline

        def benefit(node_id: int) -> float:
            return current_cost - self._workload_cost(search, roots, frozenset(chosen | {node_id}))

        if not self.use_monotonicity:
            remaining = list(candidates)
            while remaining:
                benefits = [(benefit(node_id), node_id) for node_id in remaining]
                best_benefit, best_node = max(benefits)
                if best_benefit <= 0:
                    break
                chosen.add(best_node)
                current_cost -= best_benefit
                remaining.remove(best_node)
            return chosen

        counter = itertools.count()
        round_number = 0
        heap: List[Tuple[float, int, int, int]] = []
        for node_id in candidates:
            heapq.heappush(heap, (-benefit(node_id), next(counter), round_number, node_id))
        while heap:
            neg, _, stamped, node_id = heapq.heappop(heap)
            value = -neg
            if stamped != round_number:
                heapq.heappush(heap, (-benefit(node_id), next(counter), round_number, node_id))
                continue
            if value <= 0:
                break
            chosen.add(node_id)
            current_cost -= value
            round_number += 1
        return chosen
