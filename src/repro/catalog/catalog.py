"""The system catalog.

The :class:`Catalog` records table definitions, declared or measured
statistics, and index definitions.  The optimizer and cost model only ever
talk to the catalog — never to the storage layer directly — which is what
lets the benchmark harness run the paper's experiments purely from declared
statistics (as the paper itself did: its numbers are estimated plan costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.schema import Schema, TableDef
from repro.catalog.statistics import TableStats


@dataclass(frozen=True)
class IndexDef:
    """Definition of an index on a stored table or materialized result.

    Parameters
    ----------
    table:
        Name of the indexed table (or materialized view).
    columns:
        Indexed column names, in order.
    kind:
        ``"hash"`` or ``"btree"``; btree indexes additionally provide a sort
        order on their key, which the optimizer models as a physical property.
    unique:
        Whether the key is unique (primary-key indexes are).
    """

    table: str
    columns: Tuple[str, ...]
    kind: str = "btree"
    unique: bool = False

    @property
    def name(self) -> str:
        """A deterministic display name for the index."""
        return f"idx_{self.table}_{'_'.join(c.rsplit('.', 1)[-1] for c in self.columns)}"


class CatalogError(KeyError):
    """Raised when a table or index is not known to the catalog."""


class Catalog:
    """Registry of tables, statistics and indexes known to the optimizer."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableDef] = {}
        self._stats: Dict[str, TableStats] = {}
        self._indexes: Dict[str, List[IndexDef]] = {}
        self._view_stats: Dict[str, TableStats] = {}
        #: Per-relation statistics versions, bumped whenever a table's or
        #: view's statistics are (re)registered.  The cardinality estimator
        #: keys its memo and runtime-feedback observations on these, so
        #: cached estimates never survive a stats change for a relation
        #: they depend on.
        self._stats_versions: Dict[str, int] = {}

    def _bump_stats_version(self, name: str) -> None:
        self._stats_versions[name] = self._stats_versions.get(name, 0) + 1

    def stats_version(self, name: str) -> int:
        """Monotonic version of ``name``'s statistics (0 = never registered)."""
        return self._stats_versions.get(name, 0)

    # ------------------------------------------------------------------ tables

    def register_table(
        self,
        table: TableDef,
        stats: Optional[TableStats] = None,
        create_pk_index: bool = False,
    ) -> None:
        """Register a table definition (and optionally statistics and PK index)."""
        self._tables[table.name] = table
        self._indexes.setdefault(table.name, [])
        if stats is not None:
            self._stats[table.name] = stats
            self._bump_stats_version(table.name)
        if create_pk_index and table.primary_key:
            self.register_index(
                IndexDef(table.name, tuple(table.primary_key), kind="btree", unique=True)
            )

    def register_table_stats(self, name: str, stats: TableStats) -> None:
        """Attach or replace statistics for a registered table."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._stats[name] = stats
        self._bump_stats_version(name)

    def table(self, name: str) -> TableDef:
        """Look up a table definition."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"unknown table {name!r}") from exc

    def has_table(self, name: str) -> bool:
        """Whether ``name`` is a registered table."""
        return name in self._tables

    def tables(self) -> List[TableDef]:
        """All registered table definitions."""
        return list(self._tables.values())

    def schema(self, name: str) -> Schema:
        """Schema of a registered table."""
        return self.table(name).schema

    def has_table_stats(self, name: str) -> bool:
        """Whether ``name`` has declared or measured statistics recorded."""
        return name in self._stats

    def stats(self, name: str) -> TableStats:
        """Statistics for a table; synthesizes defaults when none declared."""
        if name in self._stats:
            return self._stats[name]
        table = self.table(name)
        return TableStats(cardinality=1000.0, tuple_width=table.tuple_width, column_stats={})

    # ----------------------------------------------------------------- indexes

    def register_index(self, index: IndexDef) -> None:
        """Register an index; duplicates (same table+columns+kind) are ignored."""
        existing = self._indexes.setdefault(index.table, [])
        for idx in existing:
            if idx.columns == index.columns and idx.kind == index.kind:
                return
        existing.append(index)

    def drop_index(self, index: IndexDef) -> None:
        """Remove an index if present."""
        existing = self._indexes.get(index.table, [])
        self._indexes[index.table] = [
            idx for idx in existing if not (idx.columns == index.columns and idx.kind == index.kind)
        ]

    def indexes(self, table: str) -> List[IndexDef]:
        """All indexes on ``table``."""
        return list(self._indexes.get(table, []))

    def all_indexes(self) -> List[IndexDef]:
        """Every registered index."""
        return [idx for idxs in self._indexes.values() for idx in idxs]

    def has_index_on(self, table: str, columns: Sequence[str]) -> bool:
        """Whether an index exists whose leading key matches ``columns``."""
        wanted = tuple(c.rsplit(".", 1)[-1] for c in columns)
        for idx in self._indexes.get(table, []):
            key = tuple(c.rsplit(".", 1)[-1] for c in idx.columns)
            if key[: len(wanted)] == wanted:
                return True
        return False

    # -------------------------------------------------------- view statistics

    def register_view_stats(self, name: str, stats: TableStats) -> None:
        """Attach or replace measured statistics for a materialized view.

        Views are not registered tables (their schemas are derived, not
        declared), so their statistics live in their own namespace; the
        planner consults them when costing reuse of a stored view, and the
        refresher keeps them current as view deltas are merged.
        """
        self._view_stats[name] = stats
        self._bump_stats_version(name)

    def view_stats(self, name: str) -> Optional[TableStats]:
        """Measured statistics for a materialized view, if recorded."""
        return self._view_stats.get(name)

    def drop_view_stats(self, name: str) -> None:
        """Forget a view's statistics (when the view is dropped)."""
        if name in self._view_stats:
            del self._view_stats[name]
            self._bump_stats_version(name)

    # ------------------------------------------------------------------- misc

    def foreign_keys(self) -> List[Tuple[str, str, str, str]]:
        """All foreign keys as ``(table, column, referenced_table, referenced_column)``."""
        result = []
        for table in self._tables.values():
            for col, ref_table, ref_col in table.foreign_keys:
                result.append((table.name, col, ref_table, ref_col))
        return result

    def copy(self) -> "Catalog":
        """A shallow copy; useful when the greedy algorithm speculatively adds indexes."""
        clone = Catalog()
        clone._tables = dict(self._tables)
        clone._stats = dict(self._stats)
        clone._indexes = {k: list(v) for k, v in self._indexes.items()}
        clone._view_stats = dict(self._view_stats)
        clone._stats_versions = dict(self._stats_versions)
        return clone

    def scale_statistics(self, factor: float, tables: Optional[Iterable[str]] = None) -> None:
        """Scale the cardinalities of (some) tables by ``factor`` in place."""
        names = list(tables) if tables is not None else list(self._stats)
        for name in names:
            if name in self._stats:
                self._stats[name] = self._stats[name].scaled(factor)
                self._bump_stats_version(name)
