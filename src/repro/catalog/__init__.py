"""Schema and statistics catalog.

The catalog is the optimizer's view of the database: which tables exist, what
their columns are, how many tuples they contain, how wide the tuples are, and
per-column statistics (distinct counts, min/max) used for selectivity and
cardinality estimation.

Everything the cost model consumes ultimately comes from here, which is what
lets the benchmark harness reproduce the paper's experiments at the paper's
cardinalities without materializing 100 MB of TPC-D data: statistics can be
set explicitly (see :meth:`Catalog.register_table_stats`).
"""

from repro.catalog.schema import Column, ColumnType, Schema, TableDef
from repro.catalog.statistics import ColumnStats, Histogram, TableStats, estimate_selectivity
from repro.catalog.catalog import Catalog, IndexDef


def __getattr__(name):
    # The estimator consumes the algebra layer (expressions, predicates),
    # which itself imports catalog.schema — re-exporting it lazily keeps
    # ``from repro.catalog import CardinalityEstimator`` working without a
    # circular import at package-init time.
    if name in ("CardinalityEstimator", "qerror"):
        from repro.catalog import estimator

        return getattr(estimator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "TableDef",
    "ColumnStats",
    "Histogram",
    "TableStats",
    "estimate_selectivity",
    "Catalog",
    "IndexDef",
    "CardinalityEstimator",
    "qerror",
]
