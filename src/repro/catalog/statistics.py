"""Table and column statistics, and selectivity estimation.

The optimizer's cardinality estimates follow the classic System-R style
assumptions the paper's prototype (built on a Volcano-style optimizer) uses:

* uniform value distributions within a column,
* independence between predicates,
* containment of value sets for equi-joins (``|R ⋈ S| = |R|·|S| / max(V(R,a),
  V(S,b))``).

Statistics can be *measured* from an actual :class:`~repro.storage.Relation`
or *declared* (for the benchmark harness, which mirrors the paper's TPC-D
scale-0.1 cardinalities without generating 100 MB of data).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.storage.columns import numpy as _np

#: Default selectivity used when a predicate cannot be estimated from stats.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Measurement parameters for :meth:`TableStats.from_relation`: relations
#: larger than the sample size are measured from a reservoir sample instead
#: of a full per-column scan.
DEFAULT_SAMPLE_SIZE = 4096
DEFAULT_HISTOGRAM_BUCKETS = 32
_MEASUREMENT_SEED = 8191

#: Exact numeric types (bool, although an int subclass, is not a measurement).
_NUMERIC_TYPES = {int, float}

#: Minimum delta size worth *building* a fresh numpy store for during stats
#: maintenance; already-cached stores are used regardless of size.
_VECTOR_STATS_MIN_ROWS = 64


@dataclass(frozen=True)
class Histogram:
    """An equi-depth histogram over a numeric column.

    ``bounds`` has one more entry than ``counts``: bucket ``i`` covers the
    value range ``[bounds[i], bounds[i+1]]`` and holds ``counts[i]`` rows.
    Buckets with ``bounds[i] == bounds[i+1]`` are *spike* buckets — a single
    heavy value that filled a whole equi-depth bucket on its own — and are
    treated exactly during estimation.  Counts are floats so histograms
    built from samples can be scaled to the population size, and so delta
    maintenance can subtract fractional scaled rows.
    """

    bounds: Tuple[float, ...]
    counts: Tuple[float, ...]

    @property
    def total(self) -> float:
        """Total row count the histogram currently accounts for."""
        return sum(self.counts)

    @property
    def min_value(self) -> float:
        """Lowest value covered."""
        return self.bounds[0]

    @property
    def max_value(self) -> float:
        """Highest value covered."""
        return self.bounds[-1]

    @staticmethod
    def from_values(
        values: Sequence[float],
        buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
        scale: float = 1.0,
    ) -> Optional["Histogram"]:
        """Build an equi-depth histogram from (possibly sampled) values.

        ``scale`` inflates the per-bucket counts so the histogram totals the
        population size when ``values`` is only a sample of it.  Returns
        ``None`` for an empty value list.
        """
        if _np is not None and isinstance(values, _np.ndarray):
            ordered = _np.sort(values)
        else:
            ordered = sorted(values)
        n = len(ordered)
        if n == 0:
            return None
        buckets = max(1, min(buckets, n))
        bounds: List[float] = [float(ordered[0])]
        counts: List[float] = []
        for i in range(buckets):
            lo = (i * n) // buckets
            hi = ((i + 1) * n) // buckets
            if hi <= lo:
                continue
            counts.append((hi - lo) * scale)
            bounds.append(float(ordered[hi - 1]))
        return Histogram(tuple(bounds), tuple(counts))

    def scaled(self, factor: float) -> "Histogram":
        """Scale every bucket count by ``factor``."""
        return Histogram(self.bounds, tuple(c * factor for c in self.counts))

    def _bucket_of(self, value: float) -> int:
        """Index of the bucket whose range contains ``value`` (clamped)."""
        i = bisect_left(self.bounds, value, lo=1) - 1
        return min(max(i, 0), len(self.counts) - 1)

    def shifted(self, values: Sequence[float], sign: int) -> "Histogram":
        """Fold a bag of inserted (+1) or deleted (−1) values into the counts.

        Inserted values outside the covered range widen the edge buckets;
        counts never go negative (a delete of a value the histogram no
        longer accounts for is dropped).  One sort of the delta values plus
        one bisect per bucket — O(|delta| log |delta| + buckets), never a
        per-value Python loop, so stats maintenance stays cheap on the
        refresh hot path.  A numpy array of values takes the fully
        vectorized route: ``np.sort`` plus a single ``np.searchsorted``
        over all bucket bounds.
        """
        if _np is not None and isinstance(values, _np.ndarray):
            ordered = _np.sort(values.astype(_np.float64, copy=False))
            positions = _np.searchsorted(
                ordered, _np.asarray(self.bounds[1:], dtype=_np.float64), side="right"
            )
        else:
            ordered = sorted(values)
            positions = None
        n = len(ordered)
        if n == 0:
            return self
        bounds = list(self.bounds)
        if sign > 0:
            if ordered[0] < bounds[0]:
                bounds[0] = float(ordered[0])
            if ordered[-1] > bounds[-1]:
                bounds[-1] = float(ordered[-1])
        counts = list(self.counts)
        last = len(counts) - 1
        prev = 0
        for i in range(len(counts)):
            # Bucket i absorbs values up to (and including) its upper bound,
            # matching _bucket_of; the last bucket takes everything beyond.
            if i == last:
                pos = n
            elif positions is not None:
                pos = int(positions[i])
            else:
                pos = bisect_right(ordered, self.bounds[i + 1], prev)
            if pos > prev:
                counts[i] = max(0.0, counts[i] + sign * (pos - prev))
            prev = pos
        return Histogram(tuple(bounds), tuple(counts))

    def fraction_at_most(self, value: float, inclusive: bool = True) -> float:
        """Estimated fraction of rows with ``column <= value`` (or ``<``).

        Exact 0/1 outside the covered range; linear interpolation inside a
        bucket (the continuous-distribution assumption); spike buckets are
        counted exactly, which is where ``inclusive`` matters.
        """
        total = self.total
        if total <= 0:
            return 0.0
        if value < self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            if inclusive or value > self.bounds[-1]:
                return 1.0
        below = 0.0
        at = 0.0
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            if hi < value:
                below += count
            elif lo == hi:
                if hi == value:
                    at += count
            elif value >= hi:
                below += count
            elif value > lo:
                below += count * (value - lo) / (hi - lo)
        mass = below + (at if inclusive else 0.0)
        return min(1.0, max(0.0, mass / total))

    def equal_fraction(self, value: float, distinct: Optional[float] = None) -> float:
        """Estimated fraction of rows with ``column == value``.

        Spike buckets answer exactly; otherwise the containing bucket's mass
        is spread over its share of the column's distinct values.
        """
        total = self.total
        if total <= 0:
            return 0.0
        if value < self.bounds[0] or value > self.bounds[-1]:
            return 0.0
        spike = 0.0
        container: Optional[float] = None
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            if lo == hi:
                if lo == value:
                    spike += count
            elif lo <= value <= hi and container is None:
                container = count
        if spike > 0:
            return min(1.0, spike / total)
        if container is None:
            return 0.0
        populated = max(1, sum(1 for c in self.counts if c > 0))
        per_bucket_distinct = max(1.0, (distinct or float(populated)) / populated)
        return min(1.0, (container / total) / per_bucket_distinct)


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column.

    Parameters
    ----------
    distinct:
        Estimated number of distinct values.
    min_value / max_value:
        Numeric bounds when known; ``None`` for non-numeric columns.
    null_fraction:
        Fraction of NULLs (we keep it for completeness; TPC-D data has none).
    histogram:
        Optional equi-depth :class:`Histogram` of the value distribution,
        used by the estimator for interpolated range/equality selectivities.
    sampled:
        Whether these statistics were measured from a sample rather than a
        full scan.  Sampled min/max bounds underestimate the true range, so
        estimates must not treat values outside them as matching exactly
        zero rows.
    """

    distinct: float = 1.0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    null_fraction: float = 0.0
    histogram: Optional[Histogram] = None
    sampled: bool = False

    def scaled(self, factor: float) -> "ColumnStats":
        """Scale the distinct count (used when scaling table cardinalities)."""
        histogram = self.histogram.scaled(factor) if self.histogram is not None else None
        return replace(self, distinct=max(1.0, self.distinct * factor), histogram=histogram)


@dataclass(frozen=True)
class TableStats:
    """Statistics for a table or intermediate result.

    Parameters
    ----------
    cardinality:
        Estimated number of tuples.
    tuple_width:
        Width of one tuple in bytes.
    column_stats:
        Per-column statistics keyed by (possibly qualified) column name.
    """

    cardinality: float
    tuple_width: int
    column_stats: Mapping[str, ColumnStats] = field(default_factory=dict)

    @property
    def size_bytes(self) -> float:
        """Estimated size of the result in bytes."""
        return max(0.0, self.cardinality) * self.tuple_width

    def distinct(self, column: str, default: Optional[float] = None) -> float:
        """Distinct count for ``column`` with graceful fallbacks.

        If the column has no recorded statistics, the cardinality itself is
        used for key-like columns; callers can pass ``default`` to override.
        """
        stats = _lookup(self.column_stats, column)
        if stats is not None:
            return max(1.0, min(stats.distinct, max(self.cardinality, 1.0)))
        if default is not None:
            return max(1.0, default)
        return max(1.0, self.cardinality * DEFAULT_EQUALITY_SELECTIVITY)

    def column(self, column: str) -> Optional[ColumnStats]:
        """Return the :class:`ColumnStats` for ``column`` if recorded."""
        return _lookup(self.column_stats, column)

    def with_cardinality(self, cardinality: float) -> "TableStats":
        """Return a copy with a new cardinality, clamping distinct counts."""
        new_cols = {
            name: replace(cs, distinct=max(1.0, min(cs.distinct, max(cardinality, 1.0))))
            for name, cs in self.column_stats.items()
        }
        return TableStats(max(0.0, cardinality), self.tuple_width, new_cols)

    def scaled(self, factor: float) -> "TableStats":
        """Scale cardinality (and distinct counts) by ``factor``."""
        return self.with_cardinality(self.cardinality * factor)

    def updated_by_delta(self, delta, sign: int) -> "TableStats":
        """Fold one insert (+1) or delete (−1) bag into these statistics.

        ``delta`` is any relation-like object exposing ``schema`` and
        iteration over tuples.  The cardinality moves by the bag size,
        histogram bucket counts shift with the delta values, and inserts
        widen min/max bounds; distinct counts are clamped against the new
        cardinality (they are not otherwise re-estimated — the classic
        ANALYZE trade-off that keeps stats maintenance O(|delta|)).
        """
        count = float(len(delta))
        if count == 0:
            return self
        card = max(0.0, self.cardinality + sign * count)
        column_at = getattr(delta, "column_at", None)
        rows = None if column_at is not None else list(delta)
        store = _vector_store_of(delta)
        new_cols = dict(self.column_stats)
        for idx, column in enumerate(delta.schema.columns):
            found = _lookup_item(self.column_stats, column.name)
            if found is None:
                continue
            name, cs = found
            if cs.histogram is None and cs.min_value is None:
                # Non-numeric column: nothing distributional to maintain.
                continue
            values = None
            if store is not None and store.column(idx).dtype.kind in "if":
                # int64/float64 columns cannot hold None or bool by
                # construction (mixed columns fall back to object dtype),
                # so the per-value type filter is a no-op — feed the array
                # straight into the vectorized histogram shift.
                values = store.column(idx)
            if values is None:
                raw = column_at(idx) if column_at is not None else [row[idx] for row in rows]
                values = [v for v in raw if type(v) in _NUMERIC_TYPES]
            histogram = cs.histogram
            if len(values) and histogram is not None:
                histogram = histogram.shifted(values, sign)
            min_v, max_v = cs.min_value, cs.max_value
            if sign > 0 and len(values):
                if _np is not None and isinstance(values, _np.ndarray):
                    lo, hi = float(values.min()), float(values.max())
                else:
                    lo, hi = float(min(values)), float(max(values))
                min_v = lo if min_v is None else min(min_v, lo)
                max_v = hi if max_v is None else max(max_v, hi)
            # Distinct counts are deliberately left sticky: a transient
            # cardinality dip mid-merge (aggregate deltas delete every
            # affected group before reinserting it) must not collapse them;
            # the caller's final with_cardinality clamp applies the true
            # post-merge bound.
            new_cols[name] = replace(
                cs, min_value=min_v, max_value=max_v, histogram=histogram
            )
        return TableStats(card, self.tuple_width, new_cols)

    @staticmethod
    def from_relation(
        relation,
        schema: Optional[Schema] = None,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
        seed: int = _MEASUREMENT_SEED,
    ) -> "TableStats":
        """Measure statistics from an in-memory relation.

        ``relation`` is any object exposing ``schema`` and iteration over
        tuples (duck-typed to avoid a circular import with ``repro.storage``).

        Relations up to ``sample_size`` tuples are measured exactly.  Larger
        ones are measured from a reservoir sample (one pass over the rows,
        per-column work bounded by the sample): distinct counts use the GEE
        sample estimator, min/max and the equi-depth histogram come from the
        sample with bucket counts scaled to the full cardinality.
        """
        sampler = getattr(relation, "sample", None)
        sampled = False
        rows: Optional[list] = None
        column_at = getattr(relation, "column_at", None)
        if sampler is not None and len(relation) > sample_size:
            rows = sampler(sample_size, seed=seed)
            card = float(len(relation))
            observed = float(len(rows))
            sampled = True
        else:
            if column_at is None:
                rows = list(relation)
            card = float(len(relation) if rows is None else len(rows))
            observed = card
        schema = schema or relation.schema
        store = None if rows is not None else _vector_store_of(relation)
        col_stats: Dict[str, ColumnStats] = {}
        for idx, col in enumerate(schema.columns):
            array = None
            if store is not None:
                column = store.column(idx)
                if column.dtype.kind in "if":
                    array = column
            if array is not None:
                # Numeric-dtype store column: by construction it holds no
                # None and no bool, so the exact row-path filters are
                # no-ops and every value is a numeric measurement.
                null_fraction = (1.0 - len(array) / observed) if observed else 0.0
                population = card * (1.0 - null_fraction)
                distinct = float(len(_np.unique(array))) if len(array) else 1.0
                histogram = None
                min_v = max_v = None
                if len(array):
                    min_v, max_v = float(array.min()), float(array.max())
                    histogram = Histogram.from_values(
                        array, buckets=histogram_buckets, scale=1.0
                    )
                col_stats[col.name] = ColumnStats(
                    distinct=distinct,
                    min_value=min_v,
                    max_value=max_v,
                    null_fraction=null_fraction,
                    histogram=histogram,
                    sampled=sampled,
                )
                continue
            if rows is None:
                # Exact measurement straight off the column store: no row
                # materialization for store-backed relations.
                values = [v for v in column_at(idx) if v is not None]
            else:
                values = [row[idx] for row in rows if row[idx] is not None]
            null_fraction = (1.0 - len(values) / observed) if observed else 0.0
            population = card * (1.0 - null_fraction)
            if not sampled:
                distinct = float(len(set(values))) if values else 1.0
            else:
                distinct = _gee_distinct(values, population)
            numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
            histogram = None
            if numeric:
                scale = population / len(values) if values else 1.0
                histogram = Histogram.from_values(
                    numeric, buckets=histogram_buckets, scale=max(scale, 0.0)
                )
            col_stats[col.name] = ColumnStats(
                distinct=distinct,
                min_value=float(min(numeric)) if numeric else None,
                max_value=float(max(numeric)) if numeric else None,
                null_fraction=null_fraction,
                histogram=histogram,
                sampled=sampled,
            )
        return TableStats(card, schema.tuple_width, col_stats)


def _vector_store_of(delta):
    """The delta's numpy column store when one is (or is worth) building.

    Duck-typed like the rest of the stats measurement path: any relation
    that does not expose ``vector_store`` (or whose backend is pure Python)
    simply stays on the row route.
    """
    if _np is None:
        return None
    vector_store = getattr(delta, "vector_store", None)
    if vector_store is None:
        return None
    return vector_store(_VECTOR_STATS_MIN_ROWS)


def _gee_distinct(values: Sequence, population: float) -> float:
    """GEE distinct-count estimate from a uniform sample.

    ``D̂ = sqrt(n/k)·f₁ + (d − f₁)`` where ``f₁`` is the number of values
    seen exactly once in a sample of ``k`` out of ``n`` rows and ``d`` the
    sample's distinct count (Charikar et al.); clamped to ``[d, n]``.
    """
    if not values:
        return 1.0
    seen: Dict[object, int] = {}
    for v in values:
        seen[v] = seen.get(v, 0) + 1
    d = float(len(seen))
    f1 = float(sum(1 for c in seen.values() if c == 1))
    k = float(len(values))
    n = max(population, k)
    estimate = math.sqrt(n / k) * f1 + (d - f1)
    return max(1.0, min(max(d, estimate), n))


def _lookup_item(
    stats: Mapping[str, ColumnStats], column: str
) -> Optional[Tuple[str, ColumnStats]]:
    """Resolve a column name in a stats mapping to its ``(key, stats)`` entry.

    An exact (qualified) match always wins.  Unqualified suffix matches fall
    back to deterministic resolution: when several qualified names share the
    suffix, the lexicographically smallest qualified name is chosen rather
    than silently dropping to the magic-constant fallback.
    """
    if column in stats:
        return column, stats[column]
    suffix = column.rsplit(".", 1)[-1]
    matches = [(name, cs) for name, cs in stats.items() if name.rsplit(".", 1)[-1] == suffix]
    if not matches:
        return None
    return min(matches, key=lambda item: item[0])


def _lookup(stats: Mapping[str, ColumnStats], column: str) -> Optional[ColumnStats]:
    """Resolve a column name in a stats mapping, allowing suffix matches."""
    found = _lookup_item(stats, column)
    return found[1] if found is not None else None


def merge_column_stats(*mappings: Mapping[str, ColumnStats]) -> Dict[str, ColumnStats]:
    """Merge several column-stats mappings (later ones win on conflicts)."""
    merged: Dict[str, ColumnStats] = {}
    for mapping in mappings:
        merged.update(mapping)
    return merged


def estimate_selectivity(
    op: str,
    stats: TableStats,
    column: str,
    value: Optional[float] = None,
) -> float:
    """Estimate the selectivity of a simple predicate ``column op value``.

    ``op`` is one of ``==, !=, <, <=, >, >=``.  Uses distinct counts for
    equality and min/max interpolation for ranges, falling back to the
    classic System-R magic constants when statistics are missing.
    """
    col = stats.column(column)
    if op == "==":
        if col is not None:
            return 1.0 / max(1.0, col.distinct)
        return DEFAULT_EQUALITY_SELECTIVITY
    if op == "!=":
        if col is not None:
            return 1.0 - 1.0 / max(1.0, col.distinct)
        return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
    if op in ("<", "<=", ">", ">="):
        if (
            col is not None
            and col.min_value is not None
            and col.max_value is not None
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ):
            v = float(value)
            # Values strictly outside [min, max] have exact selectivity 0 or
            # 1 — clamping them to 1/cardinality would invent matching rows.
            # Bounds measured from a sample underestimate the true range,
            # so the zero side keeps the 1/cardinality floor there.
            floor = 1.0 / max(stats.cardinality, 1.0) if col.sampled else 0.0
            if v < col.min_value:
                return floor if op in ("<", "<=") else 1.0 - floor
            if v > col.max_value:
                return 1.0 - floor if op in ("<", "<=") else floor
            if col.max_value > col.min_value:
                frac = (v - col.min_value) / (col.max_value - col.min_value)
                frac = min(1.0, max(0.0, frac))
                if op in (">", ">="):
                    frac = 1.0 - frac
                return min(1.0, max(1.0 / max(stats.cardinality, 1.0), frac))
            # Degenerate single-point column: v == min == max.
            return 1.0 if op in ("<=", ">=") else 0.0
        return DEFAULT_RANGE_SELECTIVITY
    raise ValueError(f"unknown predicate operator {op!r}")


def join_selectivity(
    left: TableStats, right: TableStats, left_col: str, right_col: str
) -> float:
    """Equi-join selectivity ``1 / max(V(L,a), V(R,b))`` (containment)."""
    v_left = left.distinct(left_col, default=left.cardinality)
    v_right = right.distinct(right_col, default=right.cardinality)
    return 1.0 / max(1.0, v_left, v_right)


def estimate_join_cardinality(
    left: TableStats,
    right: TableStats,
    join_columns: Sequence[tuple],
) -> float:
    """Cardinality of an equi-join over ``join_columns`` pairs.

    Each element of ``join_columns`` is a ``(left_column, right_column)``
    pair; selectivities of independent join predicates multiply.
    """
    cardinality = left.cardinality * right.cardinality
    for left_col, right_col in join_columns:
        cardinality *= join_selectivity(left, right, left_col, right_col)
    return max(0.0, cardinality)


def estimate_group_count(stats: TableStats, group_columns: Sequence[str]) -> float:
    """Estimated number of groups of a group-by over ``group_columns``.

    Product of distinct counts, capped by the input cardinality (the standard
    Volcano/System-R estimate).
    """
    if not group_columns:
        return 1.0 if stats.cardinality > 0 else 0.0
    product = 1.0
    for col in group_columns:
        product *= stats.distinct(col)
    return max(1.0, min(product, max(stats.cardinality, 1.0)))


def union_cardinality(parts: Iterable[TableStats]) -> float:
    """Cardinality of a multiset union (duplicates preserved): plain sum."""
    return sum(p.cardinality for p in parts)


def difference_cardinality(left: TableStats, right: TableStats) -> float:
    """Cardinality of a multiset difference; never negative."""
    return max(0.0, left.cardinality - min(left.cardinality, right.cardinality))


def distinct_cardinality(stats: TableStats, columns: Sequence[str]) -> float:
    """Cardinality of duplicate elimination over ``columns``."""
    return estimate_group_count(stats, list(columns))


def blocks(size_bytes: float, block_size: int) -> float:
    """Number of blocks needed to hold ``size_bytes`` bytes."""
    if size_bytes <= 0:
        return 0.0
    return math.ceil(size_bytes / block_size)
