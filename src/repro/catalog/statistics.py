"""Table and column statistics, and selectivity estimation.

The optimizer's cardinality estimates follow the classic System-R style
assumptions the paper's prototype (built on a Volcano-style optimizer) uses:

* uniform value distributions within a column,
* independence between predicates,
* containment of value sets for equi-joins (``|R ⋈ S| = |R|·|S| / max(V(R,a),
  V(S,b))``).

Statistics can be *measured* from an actual :class:`~repro.storage.Relation`
or *declared* (for the benchmark harness, which mirrors the paper's TPC-D
scale-0.1 cardinalities without generating 100 MB of data).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.catalog.schema import Schema

#: Default selectivity used when a predicate cannot be estimated from stats.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column.

    Parameters
    ----------
    distinct:
        Estimated number of distinct values.
    min_value / max_value:
        Numeric bounds when known; ``None`` for non-numeric columns.
    null_fraction:
        Fraction of NULLs (we keep it for completeness; TPC-D data has none).
    """

    distinct: float = 1.0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    null_fraction: float = 0.0

    def scaled(self, factor: float) -> "ColumnStats":
        """Scale the distinct count (used when scaling table cardinalities)."""
        return replace(self, distinct=max(1.0, self.distinct * factor))


@dataclass(frozen=True)
class TableStats:
    """Statistics for a table or intermediate result.

    Parameters
    ----------
    cardinality:
        Estimated number of tuples.
    tuple_width:
        Width of one tuple in bytes.
    column_stats:
        Per-column statistics keyed by (possibly qualified) column name.
    """

    cardinality: float
    tuple_width: int
    column_stats: Mapping[str, ColumnStats] = field(default_factory=dict)

    @property
    def size_bytes(self) -> float:
        """Estimated size of the result in bytes."""
        return max(0.0, self.cardinality) * self.tuple_width

    def distinct(self, column: str, default: Optional[float] = None) -> float:
        """Distinct count for ``column`` with graceful fallbacks.

        If the column has no recorded statistics, the cardinality itself is
        used for key-like columns; callers can pass ``default`` to override.
        """
        stats = _lookup(self.column_stats, column)
        if stats is not None:
            return max(1.0, min(stats.distinct, max(self.cardinality, 1.0)))
        if default is not None:
            return max(1.0, default)
        return max(1.0, self.cardinality * DEFAULT_EQUALITY_SELECTIVITY)

    def column(self, column: str) -> Optional[ColumnStats]:
        """Return the :class:`ColumnStats` for ``column`` if recorded."""
        return _lookup(self.column_stats, column)

    def with_cardinality(self, cardinality: float) -> "TableStats":
        """Return a copy with a new cardinality, clamping distinct counts."""
        new_cols = {
            name: replace(cs, distinct=max(1.0, min(cs.distinct, max(cardinality, 1.0))))
            for name, cs in self.column_stats.items()
        }
        return TableStats(max(0.0, cardinality), self.tuple_width, new_cols)

    def scaled(self, factor: float) -> "TableStats":
        """Scale cardinality (and distinct counts) by ``factor``."""
        return self.with_cardinality(self.cardinality * factor)

    @staticmethod
    def from_relation(relation, schema: Optional[Schema] = None) -> "TableStats":
        """Measure statistics from an in-memory relation.

        ``relation`` is any object exposing ``schema`` and iteration over
        tuples (duck-typed to avoid a circular import with ``repro.storage``).
        """
        schema = schema or relation.schema
        rows = list(relation)
        card = float(len(rows))
        col_stats: Dict[str, ColumnStats] = {}
        for idx, col in enumerate(schema.columns):
            values = [row[idx] for row in rows if row[idx] is not None]
            distinct = float(len(set(values))) if values else 1.0
            numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
            col_stats[col.name] = ColumnStats(
                distinct=distinct,
                min_value=float(min(numeric)) if numeric else None,
                max_value=float(max(numeric)) if numeric else None,
                null_fraction=(1.0 - len(values) / card) if card else 0.0,
            )
        return TableStats(card, schema.tuple_width, col_stats)


def _lookup(stats: Mapping[str, ColumnStats], column: str) -> Optional[ColumnStats]:
    """Resolve a column name in a stats mapping, allowing suffix matches."""
    if column in stats:
        return stats[column]
    suffix = column.rsplit(".", 1)[-1]
    matches = [cs for name, cs in stats.items() if name.rsplit(".", 1)[-1] == suffix]
    if len(matches) == 1:
        return matches[0]
    return None


def merge_column_stats(*mappings: Mapping[str, ColumnStats]) -> Dict[str, ColumnStats]:
    """Merge several column-stats mappings (later ones win on conflicts)."""
    merged: Dict[str, ColumnStats] = {}
    for mapping in mappings:
        merged.update(mapping)
    return merged


def estimate_selectivity(
    op: str,
    stats: TableStats,
    column: str,
    value: Optional[float] = None,
) -> float:
    """Estimate the selectivity of a simple predicate ``column op value``.

    ``op`` is one of ``==, !=, <, <=, >, >=``.  Uses distinct counts for
    equality and min/max interpolation for ranges, falling back to the
    classic System-R magic constants when statistics are missing.
    """
    col = stats.column(column)
    if op == "==":
        if col is not None:
            return 1.0 / max(1.0, col.distinct)
        return DEFAULT_EQUALITY_SELECTIVITY
    if op == "!=":
        if col is not None:
            return 1.0 - 1.0 / max(1.0, col.distinct)
        return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
    if op in ("<", "<=", ">", ">="):
        if (
            col is not None
            and col.min_value is not None
            and col.max_value is not None
            and col.max_value > col.min_value
            and isinstance(value, (int, float))
        ):
            frac = (float(value) - col.min_value) / (col.max_value - col.min_value)
            frac = min(1.0, max(0.0, frac))
            if op in (">", ">="):
                frac = 1.0 - frac
            return min(1.0, max(1.0 / max(stats.cardinality, 1.0), frac))
        return DEFAULT_RANGE_SELECTIVITY
    raise ValueError(f"unknown predicate operator {op!r}")


def join_selectivity(
    left: TableStats, right: TableStats, left_col: str, right_col: str
) -> float:
    """Equi-join selectivity ``1 / max(V(L,a), V(R,b))`` (containment)."""
    v_left = left.distinct(left_col, default=left.cardinality)
    v_right = right.distinct(right_col, default=right.cardinality)
    return 1.0 / max(1.0, v_left, v_right)


def estimate_join_cardinality(
    left: TableStats,
    right: TableStats,
    join_columns: Sequence[tuple],
) -> float:
    """Cardinality of an equi-join over ``join_columns`` pairs.

    Each element of ``join_columns`` is a ``(left_column, right_column)``
    pair; selectivities of independent join predicates multiply.
    """
    cardinality = left.cardinality * right.cardinality
    for left_col, right_col in join_columns:
        cardinality *= join_selectivity(left, right, left_col, right_col)
    return max(0.0, cardinality)


def estimate_group_count(stats: TableStats, group_columns: Sequence[str]) -> float:
    """Estimated number of groups of a group-by over ``group_columns``.

    Product of distinct counts, capped by the input cardinality (the standard
    Volcano/System-R estimate).
    """
    if not group_columns:
        return 1.0 if stats.cardinality > 0 else 0.0
    product = 1.0
    for col in group_columns:
        product *= stats.distinct(col)
    return max(1.0, min(product, max(stats.cardinality, 1.0)))


def union_cardinality(parts: Iterable[TableStats]) -> float:
    """Cardinality of a multiset union (duplicates preserved): plain sum."""
    return sum(p.cardinality for p in parts)


def difference_cardinality(left: TableStats, right: TableStats) -> float:
    """Cardinality of a multiset difference; never negative."""
    return max(0.0, left.cardinality - min(left.cardinality, right.cardinality))


def distinct_cardinality(stats: TableStats, columns: Sequence[str]) -> float:
    """Cardinality of duplicate elimination over ``columns``."""
    return estimate_group_count(stats, list(columns))


def blocks(size_bytes: float, block_size: int) -> float:
    """Number of blocks needed to hold ``size_bytes`` bytes."""
    if size_bytes <= 0:
        return 0.0
    return math.ceil(size_bytes / block_size)
