"""Relational schemas.

A :class:`Schema` is an ordered list of named, typed columns.  Columns are
identified by a possibly-qualified name (``"orders.o_orderkey"`` or just
``"o_orderkey"``); resolution is by suffix match so that expressions written
against base-table column names keep working on join results whose schema
concatenates the inputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class ColumnType(enum.Enum):
    """Logical column types.

    Only the width matters to the cost model; values are ordinary Python
    objects at execution time.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    def default_width(self) -> int:
        """Return the default on-disk width in bytes used by the cost model."""
        return _DEFAULT_WIDTHS[self]


_DEFAULT_WIDTHS = {
    ColumnType.INTEGER: 4,
    ColumnType.FLOAT: 8,
    ColumnType.STRING: 24,
    ColumnType.DATE: 4,
    ColumnType.BOOLEAN: 1,
}


@dataclass(frozen=True)
class Column:
    """A single column of a schema.

    Parameters
    ----------
    name:
        Column name, optionally qualified as ``table.column``.
    ctype:
        Logical type, used for default widths.
    width:
        On-disk width in bytes; defaults to the type's default width.
    """

    name: str
    ctype: ColumnType = ColumnType.INTEGER
    width: Optional[int] = None

    @property
    def byte_width(self) -> int:
        """Width in bytes as seen by the cost model."""
        if self.width is not None:
            return self.width
        return self.ctype.default_width()

    @property
    def unqualified(self) -> str:
        """The column name without any table qualifier."""
        return self.name.rsplit(".", 1)[-1]

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of the column with a different name."""
        return Column(new_name, self.ctype, self.width)


class SchemaError(ValueError):
    """Raised when a column cannot be resolved or schemas are incompatible."""


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Column` objects.

    Schemas are immutable; operations that change them return new schemas.
    """

    columns: Tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))

    @staticmethod
    def of(*columns: Column) -> "Schema":
        """Build a schema from column objects."""
        return Schema(tuple(columns))

    @staticmethod
    def from_names(names: Sequence[str], ctype: ColumnType = ColumnType.INTEGER) -> "Schema":
        """Build a schema where every column has the same type."""
        return Schema(tuple(Column(n, ctype) for n in names))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    @property
    def names(self) -> Tuple[str, ...]:
        """Fully qualified column names in order."""
        return tuple(c.name for c in self.columns)

    @property
    def tuple_width(self) -> int:
        """Total tuple width in bytes (used by the cost model)."""
        return sum(c.byte_width for c in self.columns) or 1

    def index_of(self, name: str) -> int:
        """Resolve ``name`` to a column position.

        Exact matches win; otherwise a unique suffix match on the unqualified
        name is accepted.  Raises :class:`SchemaError` if the name is missing
        or ambiguous.
        """
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        target = name.rsplit(".", 1)[-1]
        matches = [i for i, col in enumerate(self.columns) if col.unqualified == target]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SchemaError(f"column {name!r} not found in schema {self.names}")
        raise SchemaError(f"column {name!r} is ambiguous in schema {self.names}")

    def column(self, name: str) -> Column:
        """Return the column object for ``name``."""
        return self.columns[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only ``names`` (in the given order)."""
        return Schema(tuple(self.columns[self.index_of(n)] for n in names))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (as a join does)."""
        return Schema(self.columns + other.columns)

    def rename_prefix(self, prefix: str) -> "Schema":
        """Return a schema with every column re-qualified under ``prefix``."""
        return Schema(tuple(c.renamed(f"{prefix}.{c.unqualified}") for c in self.columns))

    def positions(self, names: Iterable[str]) -> List[int]:
        """Resolve many names at once."""
        return [self.index_of(n) for n in names]


@dataclass(frozen=True)
class TableDef:
    """Definition of a stored base table.

    Parameters
    ----------
    name:
        Table name.
    schema:
        Table schema; column names should be qualified with the table name
        when used in multi-table expressions (the TPC-D schema uses globally
        unique column prefixes, so unqualified names are fine there).
    primary_key:
        Names of the primary-key columns, if any.
    foreign_keys:
        Mapping from a local column name to ``(referenced_table,
        referenced_column)``.  Used by the optional foreign-key pruning of
        empty differentials (paper §5.3).
    """

    name: str
    schema: Schema
    primary_key: Tuple[str, ...] = ()
    foreign_keys: Tuple[Tuple[str, str, str], ...] = ()

    @property
    def tuple_width(self) -> int:
        """Width of one tuple of the table in bytes."""
        return self.schema.tuple_width
