"""The unified cardinality estimator.

Every planning decision in this system — Volcano plan choice, maintenance
plan selection, MQO temporary materialization — ultimately consumes
cardinality and selectivity estimates.  Before this module existed those
estimates came from three independently coded paths that could disagree
about the same sub-expression; :class:`CardinalityEstimator` is now the one
place where an estimate is made.

It layers three sources of truth, best first:

1. **Runtime feedback** — actual output cardinalities recorded by the
   physical executor per plan node, keyed by the node expression's
   canonical form.  A valid observation overrides any model-based estimate
   and is invalidated automatically when the statistics of a base relation
   the expression depends on change (per-relation stats versions from the
   :class:`~repro.catalog.catalog.Catalog`).
2. **Histograms** — equi-depth histograms measured (or incrementally
   maintained) on base/view columns, interpolated for range and equality
   predicates, with exact 0/1 answers outside the covered value range.
3. **System-R formulas** — the classic uniformity/independence/containment
   fallbacks of :mod:`repro.catalog.statistics`, used only when neither of
   the above applies.

Estimates are memoized per canonical expression and revalidated against the
catalog's per-relation statistics versions, so repeated planning over an
unchanged database never re-derives, while a refresh round that moves a
relation's statistics transparently invalidates everything built on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.algebra.expressions import (
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
    base_relations,
)
from repro.algebra.predicates import ColumnRef, Comparison, Literal, Predicate, conjuncts
from repro.catalog.catalog import Catalog
from repro.catalog.statistics import (
    ColumnStats,
    TableStats,
    difference_cardinality,
    estimate_group_count,
    estimate_join_cardinality,
    estimate_selectivity,
    merge_column_stats,
    union_cardinality,
)

#: Estimate-vs-actual q-error beyond which a cached plan is considered
#: mis-costed and re-optimized against the observed cardinalities.
DEFAULT_DRIFT_THRESHOLD = 2.0


def qerror(estimated: float, actual: float) -> float:
    """The symmetric q-error ``max(e/a, a/e)`` with +1 smoothing.

    Smoothing keeps empty results comparable (an estimate of 3 rows against
    an actual of 0 scores 4, not infinity) and makes q-error 1.0 the exact
    floor.
    """
    e = max(0.0, estimated) + 1.0
    a = max(0.0, actual) + 1.0
    return max(e / a, a / e)


@dataclass
class Observation:
    """One observed actual cardinality, valid while its stats versions hold."""

    actual: float
    versions: Tuple[Tuple[str, int], ...]


class CardinalityEstimator:
    """Single shared estimator for selectivities, join sizes and feedback."""

    def __init__(
        self,
        catalog: Catalog,
        use_histograms: bool = True,
        use_feedback: bool = True,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> None:
        self.catalog = catalog
        self.use_histograms = use_histograms
        self.use_feedback = use_feedback
        self.drift_threshold = drift_threshold
        #: Memoized derived statistics: canonical key -> (stats, versions).
        self._memo: Dict[str, Tuple[TableStats, Tuple[Tuple[str, int], ...]]] = {}
        #: Runtime-feedback observations keyed by canonical expression.
        self._observations: Dict[str, Observation] = {}

    # ------------------------------------------------------------------ clones

    def for_catalog(
        self, catalog: Catalog, use_feedback: Optional[bool] = None
    ) -> "CardinalityEstimator":
        """A clone bound to another catalog, sharing the observation store.

        Used for differential derivations over a
        :class:`~repro.maintenance.diff_dag.DeltaCatalog` (one relation's
        stats replaced by its delta's): the clone gets its own memo — the
        catalogs disagree about the updated relation — while observed truths
        remain shared (feedback is usually disabled for delta derivations,
        since full-result observations do not describe differentials).
        """
        clone = CardinalityEstimator(
            catalog,
            use_histograms=self.use_histograms,
            use_feedback=self.use_feedback if use_feedback is None else use_feedback,
            drift_threshold=self.drift_threshold,
        )
        clone._observations = self._observations
        return clone

    # -------------------------------------------------------------- versioning

    def _versions_for(self, relations: Iterable[str]) -> Tuple[Tuple[str, int], ...]:
        return tuple((r, self.catalog.stats_version(r)) for r in sorted(relations))

    def _versions_valid(self, versions: Tuple[Tuple[str, int], ...]) -> bool:
        return all(self.catalog.stats_version(r) == v for r, v in versions)

    def clear(self) -> None:
        """Drop every memoized estimate and observation."""
        self._memo.clear()
        self._observations.clear()

    # ------------------------------------------------------------- derivation

    def stats(self, expression: Expression) -> TableStats:
        """Estimated statistics for ``expression``'s result (memoized).

        A valid runtime observation for the expression overrides the derived
        cardinality (column statistics are kept from the derivation).
        """
        canonical = getattr(expression, "canonical", None)
        if canonical is None:
            # Unknown expression shapes surface _derive's TypeError.
            return self._derive(expression)
        key = canonical()
        hit = self._memo.get(key)
        if hit is not None and self._versions_valid(hit[1]):
            return hit[0]
        derived = self._derive(expression)
        if self.use_feedback:
            observation = self._observations.get(key)
            if observation is not None and self._versions_valid(observation.versions):
                derived = derived.with_cardinality(observation.actual)
        versions = self._versions_for(base_relations(expression))
        self._memo[key] = (derived, versions)
        return derived

    def cardinality(self, expression: Expression) -> float:
        """Estimated output cardinality of ``expression``."""
        return self.stats(expression).cardinality

    def _schema(self, expression: Expression):
        # Lazy import: schema_derivation delegates derive_stats back to this
        # class, so a module-level import would be circular.
        from repro.algebra.schema_derivation import derive_schema

        return derive_schema(expression, self.catalog)

    def _derive(self, expression: Expression) -> TableStats:
        if isinstance(expression, BaseRelation):
            return self.catalog.stats(expression.name)

        if isinstance(expression, Select):
            child = self.stats(expression.child)
            selectivity = self.predicate_selectivity(expression.predicate, child)
            return child.with_cardinality(child.cardinality * selectivity)

        if isinstance(expression, Project):
            child = self.stats(expression.child)
            schema = self._schema(expression)
            kept = {c.name for c in schema.columns}
            cols = {
                n: cs
                for n, cs in child.column_stats.items()
                if n in kept or n.rsplit(".", 1)[-1] in kept
            }
            return TableStats(child.cardinality, schema.tuple_width, cols)

        if isinstance(expression, Join):
            left = self.stats(expression.left)
            right = self.stats(expression.right)
            return self.join_stats(left, right, expression.conditions, expression.residual)

        if isinstance(expression, Aggregate):
            child = self.stats(expression.child)
            groups = self.group_count(child, expression.group_by)
            schema = self._schema(expression)
            cols: Dict[str, ColumnStats] = {}
            for g in expression.group_by:
                base = child.column(g)
                if base is not None:
                    cols[g] = ColumnStats(distinct=min(base.distinct, groups))
                else:
                    cols[g] = ColumnStats(distinct=groups)
            for agg in expression.aggregates:
                cols[agg.alias] = ColumnStats(distinct=groups)
            return TableStats(groups, schema.tuple_width, cols)

        if isinstance(expression, UnionAll):
            parts = [self.stats(i) for i in expression.inputs]
            schema = self._schema(expression)
            cols = merge_column_stats(*[p.column_stats for p in parts])
            return TableStats(union_cardinality(parts), schema.tuple_width, cols)

        if isinstance(expression, Difference):
            left = self.stats(expression.left)
            right = self.stats(expression.right)
            return left.with_cardinality(difference_cardinality(left, right))

        if isinstance(expression, Distinct):
            child = self.stats(expression.child)
            schema = self._schema(expression)
            distinct = self.group_count(child, list(schema.names))
            return child.with_cardinality(distinct)

        raise TypeError(f"unknown expression type {type(expression).__name__}")

    # ----------------------------------------------------------- selectivities

    def predicate_selectivity(self, predicate: Predicate, stats: TableStats) -> float:
        """Estimated selectivity of an arbitrary predicate against ``stats``."""
        selectivity = 1.0
        for part in conjuncts(predicate):
            selectivity *= self._single_selectivity(part, stats)
        return max(0.0, min(1.0, selectivity))

    def _single_selectivity(self, predicate: Predicate, stats: TableStats) -> float:
        if isinstance(predicate, Comparison):
            left, right, op = predicate.left, predicate.right, predicate.op
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                return self.comparison_selectivity(op, stats, left.name, _numeric(right.value))
            if isinstance(left, Literal) and isinstance(right, ColumnRef):
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
                return self.comparison_selectivity(flipped, stats, right.name, _numeric(left.value))
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                # Column-to-column comparison within one input: treat as an
                # equi-restriction using the larger distinct count.
                v = max(stats.distinct(left.name), stats.distinct(right.name))
                return 1.0 / max(1.0, v) if op == "==" else 1.0 / 3.0
        # Unknown predicate shapes get the default restriction factor.
        return 0.25

    def comparison_selectivity(
        self, op: str, stats: TableStats, column: str, value: Optional[float]
    ) -> float:
        """Selectivity of ``column op value``: histogram first, System-R after."""
        if self.use_histograms and value is not None:
            col = stats.column(column)
            if col is not None and col.histogram is not None:
                estimated = self._histogram_selectivity(op, col, float(value))
                if estimated is not None:
                    floor = 1.0 / max(stats.cardinality, 1.0)
                    if estimated in (0.0, 1.0):
                        # Exact 0/1 answers are only trustworthy when the
                        # histogram's covered range is exact; sampled bounds
                        # underestimate the true range, so keep the floor.
                        if not col.sampled:
                            return estimated
                        return min(1.0 - floor, max(floor, estimated))
                    return min(1.0, max(floor, estimated))
        return estimate_selectivity(op, stats, column, value)

    @staticmethod
    def _histogram_selectivity(op: str, col: ColumnStats, value: float) -> Optional[float]:
        histogram = col.histogram
        if histogram is None or histogram.total <= 0:
            return None
        if op == "==":
            return histogram.equal_fraction(value, col.distinct)
        if op == "!=":
            return 1.0 - histogram.equal_fraction(value, col.distinct)
        if op == "<":
            return histogram.fraction_at_most(value, inclusive=False)
        if op == "<=":
            return histogram.fraction_at_most(value, inclusive=True)
        if op == ">":
            return 1.0 - histogram.fraction_at_most(value, inclusive=True)
        if op == ">=":
            return 1.0 - histogram.fraction_at_most(value, inclusive=False)
        return None

    # ------------------------------------------------------------------- joins

    def join_cardinality(
        self,
        left: TableStats,
        right: TableStats,
        conditions: Sequence[Tuple[str, str]],
    ) -> float:
        """Equi-join cardinality under containment of value sets."""
        return estimate_join_cardinality(left, right, conditions)

    def join_stats(
        self,
        left: TableStats,
        right: TableStats,
        conditions: Sequence[Tuple[str, str]],
        residual: Optional[Predicate] = None,
    ) -> TableStats:
        """Full :class:`TableStats` of an equi-join (width, merged columns)."""
        cardinality = self.join_cardinality(left, right, conditions)
        width = left.tuple_width + right.tuple_width
        cols = merge_column_stats(left.column_stats, right.column_stats)
        if residual is not None:
            combined = TableStats(max(cardinality, 1.0), width, cols)
            cardinality *= self.predicate_selectivity(residual, combined)
        # Clamp distinct counts to the join output cardinality.
        return TableStats(cardinality, width, cols).with_cardinality(cardinality)

    # ------------------------------------------------------------ group counts

    def group_count(self, stats: TableStats, group_columns: Sequence[str]) -> float:
        """Estimated group count of a group-by over ``group_columns``."""
        return estimate_group_count(stats, list(group_columns))

    # ---------------------------------------------------- refresh (delta) costs

    def delta_propagation_ratio(self, view: Expression, relation: str) -> float:
        """Estimated view-rows produced per delta-row of ``relation``.

        The differential of a view with respect to a single-relation update
        scales (to first order) with the delta size: a delta of ``n`` tuples
        on ``R`` flows through the view's joins and filters the same way
        ``R``'s own tuples do, producing roughly
        ``n * card(view) / card(R)`` changed view tuples.  The ratio is
        clamped below at a small floor so propagation work never estimates
        to zero — even a fully filtered-out delta costs a probe per tuple.
        """
        relation_cardinality = max(1.0, self.catalog.stats(relation).cardinality)
        view_cardinality = self.cardinality(view)
        return max(0.05, view_cardinality / relation_cardinality)

    def refresh_round_cost(
        self,
        views: Mapping[str, Expression],
        delta_sizes: Mapping[str, Tuple[int, int]],
        update_overhead_rows: float = 64.0,
        index_rebuild_fraction: Optional[float] = None,
        indexed_relations: Union[Iterable[str], Mapping[str, int]] = (),
    ) -> float:
        """Estimated cost of one refresh round, in delta-row-equivalents.

        ``delta_sizes`` maps each updated relation to its ``(inserts,
        deletes)`` bag sizes.  The model mirrors what
        :class:`~repro.maintenance.maintainer.ViewRefresher` actually does:

        * every non-empty single-relation update pays a fixed overhead
          (``update_overhead_rows``) for differential set-up — plan lookups,
          old-value cache checks, per-view dispatch;
        * every delta row pays the propagation ratio of each view that
          depends on the updated relation
          (:meth:`delta_propagation_ratio`);
        * when ``index_rebuild_fraction`` is given and a relation's insert
          bag exceeds that fraction of its cardinality, the incremental
          index maintenance of ``Database.apply_update`` falls back to a
          full rebuild — charged here as one pass over the relation per
          declared index.  ``indexed_relations`` is either a mapping
          relation → index count, or a plain iterable of relation names
          (one index each).

        This is the quantity the :class:`~repro.stream.StreamScheduler`
        compares between *replaying pending rounds eagerly* and *one
        coalesced deferred round*.
        """
        if isinstance(indexed_relations, Mapping):
            index_counts = dict(indexed_relations)
        else:
            index_counts = {relation: 1 for relation in indexed_relations}
        cost = 0.0
        for relation, (inserts, deletes) in delta_sizes.items():
            relation_rows = float(inserts) + float(deletes)
            if relation_rows <= 0:
                continue
            # One overhead per non-empty single-relation update (δ+ and δ−
            # are propagated separately, per the paper's 1..2n numbering).
            cost += update_overhead_rows * ((inserts > 0) + (deletes > 0))
            for view in views.values():
                if relation in base_relations(view):
                    cost += relation_rows * self.delta_propagation_ratio(view, relation)
            indexes = index_counts.get(relation, 0)
            if index_rebuild_fraction is not None and indexes > 0:
                cardinality = max(1.0, self.catalog.stats(relation).cardinality)
                if inserts > index_rebuild_fraction * cardinality:
                    cost += indexes * cardinality
        return cost

    # ---------------------------------------------------------------- feedback

    def record_actual(
        self,
        expression: Union[Expression, str],
        estimated: float,
        actual: float,
        relations: Optional[Iterable[str]] = None,
    ) -> bool:
        """Record an observed actual cardinality for an expression.

        Returns whether the observation *drifted* — disagreed with the
        estimate in force beyond the drift threshold — in which case callers
        holding plans costed with that estimate should re-optimize.  Any
        memoized estimate whose expression embeds the observed one (canonical
        forms are compositional strings) is invalidated so the correction
        propagates upward on the next derivation.
        """
        if isinstance(expression, Expression):
            key = expression.canonical()
            if relations is None:
                relations = base_relations(expression)
        else:
            key = expression
        actual = float(actual)
        versions = self._versions_for(relations or ())
        existing = self._observations.get(key)
        if existing is not None and existing.actual == actual and existing.versions == versions:
            # Unchanged observation: nothing new to learn, no memo to sweep.
            return qerror(estimated, actual) > self.drift_threshold
        self._observations[key] = Observation(actual, versions)
        for memo_key in [k for k in self._memo if key in k]:
            del self._memo[memo_key]
        return qerror(estimated, actual) > self.drift_threshold

    def observed_cardinality(self, key: str) -> Optional[float]:
        """The currently valid observed cardinality for ``key``, if any."""
        observation = self._observations.get(key)
        if observation is not None and self._versions_valid(observation.versions):
            return observation.actual
        return None

    def plan_drifted(self, snapshot: Mapping[str, float]) -> bool:
        """Whether any of a plan's recorded estimates drifted from observation.

        ``snapshot`` maps canonical expressions to the cardinalities the plan
        was costed with; a plan is stale when a valid observation disagrees
        with one of them beyond the drift threshold.
        """
        if not self.use_feedback:
            return False
        for key, estimated in snapshot.items():
            actual = self.observed_cardinality(key)
            if actual is not None and qerror(estimated, actual) > self.drift_threshold:
                return True
        return False


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None
