"""The streaming ingest session: ``Warehouse.stream()``.

A :class:`StreamSession` is the front door to :mod:`repro.stream`: update
batches are ingested instead of applied, buffered (and coalesced) in a
:class:`~repro.stream.PendingDeltas`, and flushed into one multi-round
refresh when the :class:`~repro.stream.StreamScheduler` decides deferral has
stopped paying — or when a staleness bound or an explicit :meth:`flush`
forces it::

    with wh.stream() as session:
        for batch in update_source:
            session.ingest(batch)          # refreshes only when it pays
    print(session.explain_schedule())      # the full decision trace

Unlike ``Warehouse.apply()``, stream flushes are **not transactional**: an
ingested delta is accepted state, so a flush failure surfaces without
rolling the database back (``verify_refresh`` still raises on divergence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.api.errors import StreamClosedError, WarehouseError, unknown_name
from repro.maintenance.update_spec import UpdateSpec
from repro.serving.sync import Mutex
from repro.storage.delta import DeltaStore
from repro.storage.relation import Row
from repro.stream import StreamPolicy, StreamScheduler, TickDecision
from repro.workloads import updategen

#: What ``ingest()`` accepts — the same shapes as ``Warehouse.apply()``.
IngestBatch = Union[DeltaStore, UpdateSpec, float]


class StreamSession:
    """One streaming ingest session over a :class:`~repro.api.Warehouse`.

    Create it with :meth:`Warehouse.stream`; use it as a context manager so
    pending deltas are flushed on exit.
    """

    def __init__(self, warehouse, policy: StreamPolicy) -> None:
        self._warehouse = warehouse
        self.policy = policy
        self._scheduler = StreamScheduler(
            policy,
            round_cost=warehouse._stream_round_cost(),
            workers=warehouse.config.workers,
        )
        self._closed = False
        #: Refresh reports of every flush, in order.
        self.reports: List = []
        #: Flushes skipped because the pending deltas annihilated to nothing.
        self.skipped_flushes = 0
        #: Tuples annihilated by coalescing across the session's lifetime.
        self.annihilated_rows = 0
        #: Rounds a *failed* flush was about to refresh, kept for inspection.
        #: A flush failure poisons the session (see :meth:`flush`).
        self.failed_rounds: List[DeltaStore] = []
        #: Pending-state tracking for deferred generation: rows already
        #: marked for deletion (never delete a tuple twice; reset per flush).
        #: Key sequences are tracked warehouse-wide (``_issued_keys`` on the
        #: :class:`Warehouse`), so apply() batches and stream ingests share
        #: one monotonic key space.
        self._pending_deletes: Dict[str, List[Row]] = {}
        self._ticks = 0
        #: Serializes ingest/flush/close: the session is not a concurrent
        #: object (use ``Warehouse.serve()`` for that), but lifecycle races
        #: must stay deterministic — a ``flush()`` racing a ``close()``
        #: either completes first or raises ``StreamClosedError``, never
        #: double-flushes or interleaves half-taken pending state.
        self._mutex = Mutex()

    # ---------------------------------------------------------------- ingest

    def ingest(
        self, batch: Optional[IngestBatch] = None, *, seed: Optional[int] = None
    ) -> TickDecision:
        """Absorb one update batch; refresh only if the policy says so.

        ``batch`` takes the same shapes as ``Warehouse.apply()``: a concrete
        :class:`DeltaStore`, an :class:`UpdateSpec`, a plain update fraction,
        or nothing (the config's default percentage).  Returns the
        scheduler's :class:`~repro.stream.TickDecision`; when it says
        ``refresh`` the flush has already happened (see :attr:`reports`).
        """
        with self._mutex:
            self._require_open()
            self._ticks += 1
            deltas = self._resolve(batch, seed)
            decision = self._scheduler.ingest(deltas)
            self._track_pending(deltas)
            if decision.refreshes:
                self._flush_pending()
            return decision

    def _resolve(self, batch: Optional[IngestBatch], seed: Optional[int]) -> DeltaStore:
        wh = self._warehouse
        database = wh._require_database()
        if isinstance(batch, DeltaStore):
            # Validate relation names and bag arities now, while rejecting
            # is free: a flush failure after buffering poisons the session
            # (the refresh is non-transactional), so a malformed round must
            # not get that far.  Every recorded delta is checked — even
            # fully empty ones, since the pending buffer adopts the first
            # round's bags as its schema templates.
            for delta in batch:
                if not database.has_relation(delta.relation):
                    raise unknown_name(
                        "relation",
                        delta.relation,
                        database.table_names(),
                        hint="(in ingested batch)",
                    )
                arity = len(database.table(delta.relation).schema)
                for bag in (delta.inserts, delta.deletes):
                    if len(bag.schema) != arity:
                        raise WarehouseError(
                            f"delta bag for {delta.relation!r} has arity "
                            f"{len(bag.schema)}, the table expects {arity} "
                            f"(in ingested batch)"
                        )
            # Caller-supplied inserts consume key space too — advance the
            # warehouse high-water mark so a later *generated* batch cannot
            # restart its key sequences underneath these pending rows.
            wh._advance_issued_keys(batch)
            return batch
        spec = wh._batch_spec(batch, "ingest()")
        relations = wh.view_relations
        # Vary the seed per tick (identical consecutive rounds would delete
        # the same sampled tuples twice), exclude already-pending deletes,
        # and continue key sequences past the warehouse high-water mark.
        tick_seed = (wh.config.seed + self._ticks) if seed is None else seed
        deltas = updategen.generate_deltas(
            database,
            spec.restricted_to(relations),
            relations,
            seed=tick_seed,
            exclude_deletes=self._pending_deletes,
            key_offsets=wh._key_offsets(relations),
        )
        wh._advance_issued_keys(deltas)
        return deltas

    def _track_pending(self, deltas: DeltaStore) -> None:
        for delta in deltas:
            if len(delta.deletes):
                self._pending_deletes.setdefault(delta.relation, []).extend(
                    delta.deletes.rows
                )

    # ----------------------------------------------------------------- flush

    def flush(self):
        """Force a refresh of everything pending.

        Returns the :class:`~repro.api.WarehouseRefreshReport`, or ``None``
        when there was nothing to refresh (nothing ingested, or every
        pending tuple annihilated during coalescing).

        A flush failure **poisons the session**: the refresh is
        non-transactional, so the database may hold a partially applied
        flush, and replaying the same rounds would double-apply them.  The
        session closes itself, the un-refreshed rounds stay readable in
        :attr:`failed_rounds`, and further ``ingest()``/``flush()`` raise
        :class:`~repro.api.errors.StreamClosedError`.

        ``flush()`` and ``close()`` are mutually exclusive: under a race,
        whichever enters second waits, and a flush that arrives after the
        close completed raises :class:`StreamClosedError` deterministically
        instead of double-flushing.
        """
        with self._mutex:
            self._require_open()
            return self._flush_pending()

    def _flush_pending(self):
        had_batches = self._scheduler.pending.batches > 0
        annihilated = self._scheduler.pending.annihilated_rows
        rounds = self._scheduler.take()
        # Flushed deletes are applied, so the exclusion pool resets; the
        # issued-keys high-water mark deliberately survives (see __init__).
        self._pending_deletes = {}
        if not rounds:
            if had_batches:
                # Batches were pending but coalesced to nothing — the
                # "insert-then-delete annihilates" fast path: no refresh.
                self.annihilated_rows += annihilated
                self.skipped_flushes += 1
            return None
        # The coalescing work happened whether or not the refresh succeeds.
        self.annihilated_rows += annihilated
        try:
            report = self._warehouse._refresh_rounds(rounds, transactional=False)
        except Exception:
            # Non-transactional: the database may hold a partially applied
            # flush, so retrying these rounds would double-apply them.
            # Poison the session; keep the rounds readable for diagnosis.
            self.failed_rounds = rounds
            self._closed = True
            raise
        self.reports.append(report)
        return report

    def close(self):
        """Flush pending deltas and retire the session.

        Idempotent and safe under a racing :meth:`flush`: both serialize on
        the session mutex, so exactly one of them performs the final flush
        and a second ``close()`` is a no-op returning ``None``.
        """
        with self._mutex:
            if self._closed:
                return None
            report = self._flush_pending()
            self._closed = True
            return report

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush only on clean exit: after an error the pending deltas may
        # describe state the caller no longer wants applied.
        if exc_type is None:
            self.close()
        else:
            with self._mutex:
                self._closed = True

    # ------------------------------------------------------------ inspection

    @property
    def closed(self) -> bool:
        """Whether the session was closed (closed sessions reject ingests)."""
        return self._closed

    @property
    def pending_rows(self) -> int:
        """Tuples a flush would currently propagate (after coalescing)."""
        return self._scheduler.pending.pending_rows()

    @property
    def pending_batches(self) -> int:
        """Update rounds deferred since the last flush."""
        return self._scheduler.pending.batches

    @property
    def decisions(self) -> List[TickDecision]:
        """Every scheduler decision so far (the explain trace)."""
        return list(self._scheduler.decisions)

    def explain_schedule(self) -> str:
        """Human-readable decision trace, like ``Warehouse.explain()``.

        One line per tick (arrived/pending/annihilated rows, estimated
        eager-vs-deferred cost, the verdict and its reason), followed by a
        summary of what the flushes actually did.
        """
        lines = [self._scheduler.render_trace()]
        total_changes = sum(report.total_changes() for report in self.reports)
        recomputes = sum(len(report.recomputed_views) for report in self.reports)
        flushed_rounds = sum(getattr(report, "rounds", 1) for report in self.reports)
        summary = (
            f"flushes: {len(self.reports)} ({flushed_rounds} "
            f"{'round' if flushed_rounds == 1 else 'rounds'} refreshed, "
            f"{total_changes} view tuples changed incrementally, "
            f"{recomputes} view recomputations"
        )
        if self.skipped_flushes:
            summary += f", {self.skipped_flushes} flushes skipped — fully annihilated"
        lines.append(summary + ")")
        return "\n".join(lines)

    # ----------------------------------------------------------------- guard

    def _require_open(self) -> None:
        if self._closed:
            raise StreamClosedError(
                "this stream session is closed — open a new one with "
                "Warehouse.stream()"
            )
