"""The concurrent serving session: ``Warehouse.serve()``.

A :class:`ServingSession` turns a loaded warehouse into something a client
swarm can query while updates keep arriving:

    with wh.serve() as session:
        session.ingest(0.02)                   # non-blocking: queued
        result = session.query("v_revenue")    # snapshot-isolated read
        print(result.version, result.degraded)
        print(session.freshness("v_revenue"))  # rounds/rows/seconds behind
    print(session.explain_serving())           # the full decision trace

Division of labor with :mod:`repro.serving`:

* the **daemon** (one background thread) owns every engine mutation —
  batch resolution, scheduler ticks, refresh flushes, snapshot publishes —
  so the database, refresher and shard pool stay single-threaded;
* **client threads** only enqueue ingests and read published snapshots;
  :meth:`query` pins a snapshot version for the duration of the read, so
  it can never observe torn or mid-refresh state;
* the per-view :class:`~repro.serving.FreshnessSLO` is enforced by the
  daemon as a hard bound over the cost-based scheduler, and by
  :meth:`query` as admission control (``serve-stale`` / ``block`` /
  ``reject``) for the window where the daemon has fallen behind anyway.

Like stream flushes, daemon refreshes are non-transactional: a refresh
failure poisons the session and surfaces as a
:class:`~repro.api.errors.ServingError` in the next client call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

from repro.algebra.expressions import base_relations
from repro.api.errors import (
    ServingClosedError,
    ServingError,
    StaleReadError,
    WarehouseError,
    unknown_name,
)
from repro.serving import (
    DaemonCrash,
    FreshnessSLO,
    IngestOverflow,
    RefreshDaemon,
    SnapshotHandle,
    SnapshotManager,
    Staleness,
    validate_read_policy,
)
from repro.serving.sync import Mutex
from repro.storage.delta import DeltaStore
from repro.storage.relation import Relation, Row
from repro.stream import StreamScheduler
from repro.workloads import updategen

#: What ``ingest()`` accepts — the same shapes as ``Warehouse.apply()``.
IngestBatch = Union[DeltaStore, "UpdateSpec", float]


@dataclass(frozen=True)
class ServedResult:
    """One snapshot-isolated read: the contents plus their freshness story."""

    #: The view the read was for.
    view: str
    #: The view contents as of the pinned snapshot (immutable by contract).
    relation: Relation
    #: Monotonic snapshot version the read was served from.
    version: int
    #: Ingested update rounds reflected in the served contents.
    as_of_round: int
    #: Whether the serve violated the view's freshness SLO.
    degraded: bool
    #: Why the read is degraded (``None`` when within the SLO).
    degraded_reason: Optional[str]
    #: The staleness measured at admission time.
    staleness: Staleness

    def __len__(self) -> int:
        return len(self.relation)


class ServingSession:
    """A thread-safe serving façade over one :class:`~repro.api.Warehouse`.

    Create it with :meth:`Warehouse.serve`; any number of threads may call
    :meth:`query` / :meth:`ingest` / :meth:`freshness` concurrently.  While
    the session is open it owns the warehouse's engine — do not interleave
    ``apply()`` / ``stream()`` calls on the same warehouse.
    """

    def __init__(
        self,
        warehouse,
        *,
        read_policy: Optional[str] = None,
        slo: Optional[FreshnessSLO] = None,
        slos: Optional[Mapping[str, FreshnessSLO]] = None,
        stream_policy=None,
    ) -> None:
        self._warehouse = warehouse
        config = warehouse.config
        self.read_policy = validate_read_policy(
            config.serving_read_policy if read_policy is None else read_policy
        )
        self._default_slo = config.make_freshness_slo() if slo is None else slo
        self._slos: Dict[str, FreshnessSLO] = dict(slos or {})
        for view in self._slos:
            if view not in warehouse._views:
                raise unknown_name("view", view, warehouse._views, hint="(in slos=)")
        self._block_timeout = config.serving_block_timeout_seconds

        database = warehouse._require_database()
        if not warehouse._views:
            raise WarehouseError("no views defined — call define_view() first")
        self._view_bases = {
            name: frozenset(base_relations(expr))
            for name, expr in warehouse._views.items()
        }
        # Materialize any missing views and build the shard pool *before*
        # the daemon thread starts: worker processes must not be forked from
        # a multi-threaded parent, and the first snapshot needs contents.
        self._materialize_missing(database)

        self._mutex = Mutex()
        self._closed = False
        #: Reads shed by the ``reject`` policy / served degraded (counters).
        self.degraded_reads = 0
        self.rejected_reads = 0
        self.shed_ingests = 0
        #: Daemon-thread resolution state (mirrors ``StreamSession``).
        self._ticks = 0
        self._pending_deletes: Dict[str, List[Row]] = {}

        self.snapshots = SnapshotManager()
        scheduler = StreamScheduler(
            stream_policy if stream_policy is not None else config.make_stream_policy(),
            round_cost=warehouse._stream_round_cost(),
            workers=config.workers,
        )
        self.daemon = RefreshDaemon(
            scheduler=scheduler,
            snapshots=self.snapshots,
            resolve=self._resolve_on_daemon,
            flush=self._flush_on_daemon,
            capture=self._capture_views,
            views_of=self._views_touched,
            slo_for=self.slo_for,
            view_names=list(warehouse._views),
            queue_capacity=config.serving_queue_capacity,
            tick_seconds=config.serving_tick_seconds,
        )
        # Version 1, as of round 0: the pre-stream contents every reader can
        # pin even before the first ingest.
        self.snapshots.publish(self._capture_views(), 0)
        self.daemon.start()

    def _materialize_missing(self, database) -> None:
        warehouse = self._warehouse
        pool = warehouse.shard_pool()
        if all(database.has_view(name) for name in warehouse._views):
            return
        from repro.maintenance.maintainer import ViewRefresher

        refresher = ViewRefresher(
            database,
            warehouse._views,
            use_physical=warehouse.config.use_physical,
            physical_executor=(
                warehouse._runtime if warehouse.config.use_physical else None
            ),
            parallel=pool,
        )
        refresher.ensure_views()

    # ------------------------------------------------------------------- SLOs

    def slo_for(self, view: str) -> FreshnessSLO:
        """The freshness SLO governing one view."""
        return self._slos.get(view, self._default_slo)

    def freshness(self, view: str) -> Staleness:
        """How far the view currently trails the ingested stream."""
        self._require_open()
        self._check_view(view)
        try:
            return self.daemon.staleness(view)
        except DaemonCrash as exc:
            raise ServingError(str(exc)) from exc

    # ------------------------------------------------------------------- read

    def query(self, view: str, *, read_policy: Optional[str] = None) -> ServedResult:
        """One snapshot-isolated read of a served view.

        Admission control runs first: if the view's staleness violates its
        SLO, the read policy decides — ``serve-stale`` serves anyway with
        ``degraded=True``, ``block`` waits for a fresh-enough snapshot (up
        to the configured timeout, then degrades), ``reject`` raises
        :class:`~repro.api.errors.StaleReadError`.  The returned contents
        are always one atomic snapshot version, never torn state.
        """
        self._require_open()
        self._check_view(view)
        policy = (
            self.read_policy if read_policy is None else validate_read_policy(read_policy)
        )
        slo = self.slo_for(view)
        try:
            staleness = self.daemon.staleness(view)
            reason = slo.violation(staleness)
            if reason is not None and policy == "block":
                if self.daemon.wait_until_fresh(view, slo, self._block_timeout):
                    staleness = self.daemon.staleness(view)
                    reason = slo.violation(staleness)
                else:
                    reason = f"{reason}; still stale after blocking {self._block_timeout:g}s"
        except DaemonCrash as exc:
            raise ServingError(str(exc)) from exc
        if reason is not None and policy == "reject":
            with self._mutex:
                self.rejected_reads += 1
            raise StaleReadError(
                f"read of {view!r} shed: {reason} (policy 'reject'; "
                f"staleness {staleness.render()})"
            )
        degraded = reason is not None
        if degraded:
            with self._mutex:
                self.degraded_reads += 1
        with self.pin() as handle:
            return ServedResult(
                view=view,
                relation=handle.view(view),
                version=handle.version,
                as_of_round=handle.as_of_round,
                degraded=degraded,
                degraded_reason=reason,
                staleness=staleness,
            )

    def pin(self) -> SnapshotHandle:
        """Pin the current snapshot for a multi-read transaction.

        Every :meth:`~repro.serving.SnapshotHandle.view` read through the
        handle sees the same version no matter how many refreshes commit
        concurrently; close the handle (or use ``with``) to release it.
        """
        self._require_open()
        return self.snapshots.pin()

    # ------------------------------------------------------------------ write

    def ingest(self, batch: Optional[IngestBatch] = None, *, seed: Optional[int] = None) -> int:
        """Queue one update round for the refresh daemon; returns its ticket.

        Non-blocking: validation happens here (so malformed batches fail in
        the calling thread), resolution and refresh happen on the daemon
        thread.  A full write queue sheds the ingest with
        :class:`~repro.api.errors.ServingError`.
        """
        self._require_open()
        rows_hint = 0
        if isinstance(batch, DeltaStore):
            self._validate_deltas(batch)
            rows_hint = batch.total_rows()
        else:
            # Raises the façade's error for unsupported batch types.
            self._warehouse._batch_spec(batch, "ingest()")
        try:
            return self.daemon.submit(batch, seed, rows_hint=rows_hint)
        except IngestOverflow as exc:
            with self._mutex:
                self.shed_ingests += 1
            raise ServingError(str(exc)) from exc
        except DaemonCrash as exc:
            raise ServingError(str(exc)) from exc

    def _validate_deltas(self, batch: DeltaStore) -> None:
        database = self._warehouse._require_database()
        for delta in batch:
            if not database.has_relation(delta.relation):
                raise unknown_name(
                    "relation",
                    delta.relation,
                    database.table_names(),
                    hint="(in ingested batch)",
                )
            arity = len(database.table(delta.relation).schema)
            for bag in (delta.inserts, delta.deletes):
                if len(bag.schema) != arity:
                    raise WarehouseError(
                        f"delta bag for {delta.relation!r} has arity "
                        f"{len(bag.schema)}, the table expects {arity} "
                        f"(in ingested batch)"
                    )

    def flush(self, timeout: Optional[float] = None) -> None:
        """Force a refresh of everything queued and pending, synchronously."""
        self._require_open()
        try:
            seq = self.daemon.request_flush()
            if not self.daemon.wait_processed(seq, timeout=timeout):
                raise ServingError(
                    f"flush did not complete within {timeout:g}s"
                )
        except DaemonCrash as exc:
            raise ServingError(str(exc)) from exc

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued ingest has been resolved and ticked."""
        self._require_open()
        try:
            return self.daemon.drain(timeout=timeout)
        except DaemonCrash as exc:
            raise ServingError(str(exc)) from exc

    # -------------------------------------------------------------- lifecycle

    def pause(self) -> None:
        """Freeze the daemon (test hook: staleness builds deterministically)."""
        self._require_open()
        self.daemon.pause()

    def resume(self) -> None:
        self._require_open()
        self.daemon.resume()

    def close(self) -> None:
        """Drain the queue, flush pending rounds, stop the daemon.

        Idempotent; a refresh failure during the final flush surfaces here
        as a :class:`~repro.api.errors.ServingError`.
        """
        with self._mutex:
            if self._closed:
                return
            self._closed = True
        self.daemon.stop(drain=True)
        try:
            self.daemon.check()
        except DaemonCrash as exc:
            raise ServingError(str(exc)) from exc

    @property
    def closed(self) -> bool:
        with self._mutex:
            return self._closed

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Mirror StreamSession: after an error, do not flush pending
            # work the caller may no longer want applied.
            with self._mutex:
                already = self._closed
                self._closed = True
            if not already:
                self.daemon.stop(drain=False)

    # ------------------------------------------------------------ inspection

    @property
    def reports(self) -> List:
        """Refresh reports of every daemon flush so far, in order."""
        return list(self.daemon.reports)

    @property
    def current_version(self) -> int:
        return self.snapshots.current_version

    @property
    def as_of_round(self) -> int:
        """Ingested rounds reflected in the currently published snapshot."""
        return self.snapshots.current_round

    def explain_serving(self) -> str:
        """Human-readable decision trace of the whole serving session.

        The scheduler's per-tick refresh-or-defer trace, the daemon's event
        log (SLO overrides, forced flushes, snapshot publishes), and the
        admission/snapshot counters.
        """
        daemon_stats = self.daemon.stats()
        snap = self.snapshots.stats()
        lines = [
            f"serving policy: {self.read_policy}, default SLO "
            f"{self._default_slo.render()}",
        ]
        for view in sorted(self._slos):
            lines.append(f"  SLO override {view}: {self._slos[view].render()}")
        lines.append(self.daemon.scheduler.render_trace())
        lines.append("daemon events:")
        lines.extend("  " + line for line in self.daemon.render_events().splitlines())
        lines.append(
            f"daemon: {daemon_stats.ticks} ticks, {daemon_stats.flushes} flushes "
            f"({daemon_stats.skipped_flushes} skipped — annihilated), "
            f"{daemon_stats.slo_overrides} SLO overrides, "
            f"{daemon_stats.timeout_flushes} idle-tick flushes, "
            f"queue peak {daemon_stats.queue_peak}"
        )
        lines.append(
            f"snapshots: {snap.published} published, {snap.retired} retired, "
            f"{snap.live_versions} live (current v{snap.current_version}, "
            f"{snap.pinned_readers} pinned readers)"
        )
        lines.append(
            f"reads: {self.degraded_reads} degraded, {self.rejected_reads} "
            f"rejected; ingests shed: {self.shed_ingests}"
        )
        return "\n".join(lines)

    # ----------------------------------------------------- daemon-side closures

    def _resolve_on_daemon(self, batch, seed: Optional[int]) -> DeltaStore:
        """Daemon thread: turn a queued batch into concrete deltas.

        Mirrors ``StreamSession._resolve`` — tick-varied seeds, exclusion of
        already-pending deletes, key sequences continued past the warehouse
        high-water mark — but runs on the daemon thread because delta
        generation reads the database.
        """
        warehouse = self._warehouse
        database = warehouse._require_database()
        self._ticks += 1
        if isinstance(batch, DeltaStore):
            warehouse._advance_issued_keys(batch)
            self._track_pending(batch)
            return batch
        spec = warehouse._batch_spec(batch, "ingest()")
        relations = warehouse.view_relations
        tick_seed = (warehouse.config.seed + self._ticks) if seed is None else seed
        deltas = updategen.generate_deltas(
            database,
            spec.restricted_to(relations),
            relations,
            seed=tick_seed,
            exclude_deletes=self._pending_deletes,
            key_offsets=warehouse._key_offsets(relations),
        )
        warehouse._advance_issued_keys(deltas)
        self._track_pending(deltas)
        return deltas

    def _track_pending(self, deltas: DeltaStore) -> None:
        for delta in deltas:
            if len(delta.deletes):
                self._pending_deletes.setdefault(delta.relation, []).extend(
                    delta.deletes.rows
                )

    def _flush_on_daemon(self, rounds):
        """Daemon thread: apply + refresh the taken rounds."""
        # Flushed deletes are applied (or the session is poisoned) either
        # way — the exclusion pool resets, the key high-water mark survives.
        self._pending_deletes = {}
        return self._warehouse._refresh_rounds(rounds, transactional=False)

    def _capture_views(self) -> Dict[str, Relation]:
        """Daemon thread: the view contents the next snapshot publishes."""
        database = self._warehouse._require_database()
        return {
            name: database.view(name)
            for name in self._warehouse._views
            if database.has_view(name)
        }

    def _views_touched(self, deltas: DeltaStore) -> List[str]:
        touched = {
            relation
            for relation in deltas.relation_order
            if deltas.has_updates(relation)
        }
        return [
            name for name, bases in self._view_bases.items() if bases & touched
        ]

    # ----------------------------------------------------------------- guards

    def _check_view(self, view: str) -> None:
        if view not in self._view_bases:
            raise unknown_name("view", view, self._view_bases)

    def _require_open(self) -> None:
        with self._mutex:
            closed = self._closed
        if closed:
            raise ServingClosedError(
                "this serving session is closed — open a new one with "
                "Warehouse.serve()"
            )
