"""The fluent view builder.

:class:`Q` is the public way to write a view definition:

    Q.table("lineitem").join("orders").join("customer").join("nation")
     .where(lt("o_totalprice", 100_000.0))
     .group_by("n_name").sum("l_extendedprice", "revenue").count("order_lines")

Every step returns a *new* builder (builders are immutable and freely
reusable as prefixes), and :meth:`Q.build` compiles the chain into the
existing logical algebra — the same left-deep
:class:`~repro.algebra.expressions.Join` trees, :class:`Select`,
:class:`Aggregate`, :class:`Project` and :class:`Distinct` nodes the
hand-built workload definitions use — so everything downstream (DAG
unification, costing, differentials, physical execution) is untouched.

Join conditions are inferred from the TPC-D foreign-key join graph exactly
the way :func:`repro.workloads.queries.chain_join` infers them (each new
relation links to the first already-joined relation it has a natural join
with); an explicit ``on=("l_orderkey", "o_orderkey")`` overrides inference,
which also makes ``Q`` usable over non-TPC-D schemas.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
)
from repro.algebra.predicates import And, Predicate
from repro.api.errors import WarehouseError
from repro.workloads.queries import join_condition


class Q:
    """Immutable fluent builder compiling to a logical :class:`Expression`."""

    def __init__(
        self,
        relations: Tuple[str, ...] = (),
        joins: Tuple[Tuple[str, Optional[Tuple[str, str]]], ...] = (),
        predicates: Tuple[Predicate, ...] = (),
        groups: Tuple[str, ...] = (),
        aggregates: Tuple[AggregateSpec, ...] = (),
        projection: Optional[Tuple[str, ...]] = None,
        distinct: bool = False,
    ) -> None:
        self._relations = relations
        #: ``(relation, explicit_condition_or_None)`` per join step.
        self._joins = joins
        self._predicates = predicates
        self._groups = groups
        self._aggregates = aggregates
        self._projection = projection
        self._distinct = distinct

    # ------------------------------------------------------------- construction

    @classmethod
    def table(cls, name: str) -> "Q":
        """Start a query from one base relation."""
        return cls(relations=(str(name),))

    def _replace(self, **changes) -> "Q":
        state = dict(
            relations=self._relations,
            joins=self._joins,
            predicates=self._predicates,
            groups=self._groups,
            aggregates=self._aggregates,
            projection=self._projection,
            distinct=self._distinct,
        )
        state.update(changes)
        return Q(**state)

    def _require_start(self, step: str) -> None:
        if not self._relations:
            raise WarehouseError(f"start with Q.table(...) before calling .{step}()")

    def join(self, relation: str, on: Optional[Tuple[str, str]] = None) -> "Q":
        """Join another relation (condition inferred from the join graph
        unless ``on=(left_column, right_column)`` is given)."""
        self._require_start("join")
        name = str(relation)
        if name in self._relations:
            raise WarehouseError(f"relation {name!r} is already part of this query")
        condition = (str(on[0]), str(on[1])) if on is not None else None
        return self._replace(
            relations=self._relations + (name,),
            joins=self._joins + ((name, condition),),
        )

    def where(self, predicate: Predicate) -> "Q":
        """Filter by a predicate (:func:`repro.algebra.predicates.lt` etc.);
        repeated calls conjoin."""
        self._require_start("where")
        if not isinstance(predicate, Predicate):
            raise WarehouseError(
                f"where() takes a Predicate (see repro.algebra.predicates), "
                f"got {type(predicate).__name__}"
            )
        return self._replace(predicates=self._predicates + (predicate,))

    def group_by(self, *columns: str) -> "Q":
        """Group by the given columns (then chain .sum()/.count()/...)."""
        self._require_start("group_by")
        if not columns:
            raise WarehouseError("group_by() needs at least one column")
        return self._replace(groups=self._groups + tuple(str(c) for c in columns))

    # ---------------------------------------------------------------- aggregates

    def _aggregate(self, func: AggregateFunc, column: Optional[str], alias: Optional[str]) -> "Q":
        self._require_start(func.value)
        if alias is None:
            alias = f"{func.value}_{column}" if column else func.value
        return self._replace(
            aggregates=self._aggregates + (AggregateSpec(func, column, alias),)
        )

    def sum(self, column: str, alias: Optional[str] = None) -> "Q":
        """Add ``SUM(column) AS alias``."""
        return self._aggregate(AggregateFunc.SUM, str(column), alias)

    def count(self, alias: Optional[str] = None) -> "Q":
        """Add ``COUNT(*) AS alias``."""
        return self._aggregate(AggregateFunc.COUNT, None, alias)

    def min(self, column: str, alias: Optional[str] = None) -> "Q":
        """Add ``MIN(column) AS alias``."""
        return self._aggregate(AggregateFunc.MIN, str(column), alias)

    def max(self, column: str, alias: Optional[str] = None) -> "Q":
        """Add ``MAX(column) AS alias``."""
        return self._aggregate(AggregateFunc.MAX, str(column), alias)

    def avg(self, column: str, alias: Optional[str] = None) -> "Q":
        """Add ``AVG(column) AS alias``."""
        return self._aggregate(AggregateFunc.AVG, str(column), alias)

    # ------------------------------------------------------------ output shaping

    def select(self, *columns: str) -> "Q":
        """Project onto the given columns (duplicate-preserving)."""
        self._require_start("select")
        if not columns:
            raise WarehouseError("select() needs at least one column")
        return self._replace(projection=tuple(str(c) for c in columns))

    def distinct(self) -> "Q":
        """Eliminate duplicates from the result."""
        self._require_start("distinct")
        return self._replace(distinct=True)

    # ----------------------------------------------------------------- compiling

    def build(self) -> Expression:
        """Compile the chain into a logical expression tree."""
        self._require_start("build")
        expression: Expression = BaseRelation(self._relations[0])
        joined: List[str] = [self._relations[0]]
        for name, explicit in self._joins:
            condition = explicit if explicit is not None else self._infer(name, joined)
            expression = Join(expression, BaseRelation(name), [condition])
            joined.append(name)
        if self._predicates:
            predicate = (
                self._predicates[0]
                if len(self._predicates) == 1
                else And(self._predicates)
            )
            expression = Select(expression, predicate)
        if self._aggregates or self._groups:
            if not self._aggregates:
                raise WarehouseError(
                    "group_by() without an aggregate — chain .sum()/.count()/"
                    ".min()/.max()/.avg() after it"
                )
            expression = Aggregate(expression, self._groups, self._aggregates)
        if self._projection is not None:
            expression = Project(expression, self._projection)
        if self._distinct:
            expression = Distinct(expression)
        self._check_structure(expression)
        return expression

    @staticmethod
    def _check_structure(expression: Expression) -> None:
        """Catalog-free static checks on the compiled chain.

        Catches what needs no schema to spot — duplicate aggregate aliases,
        a projection naming columns the aggregate below cannot produce —
        with the analyzer's diagnostic codes.  The full schema/type analysis
        runs in :meth:`Warehouse.define_view`, where a catalog exists.
        """
        from repro.analysis import render_diagnostics, structural_diagnostics
        from repro.analysis.diagnostics import errors

        bad = errors(structural_diagnostics(expression))
        if bad:
            raise WarehouseError(
                "the query chain cannot produce a valid result:\n"
                + render_diagnostics(bad)
            )

    @staticmethod
    def _infer(name: str, joined: Sequence[str]) -> Tuple[str, str]:
        """The natural join condition linking ``name`` to the chain so far."""
        for prev in joined:
            try:
                return join_condition(prev, name)
            except KeyError:
                continue
        raise WarehouseError(
            f"no natural join connects {name!r} to {list(joined)}; "
            f"pass join({name!r}, on=(left_column, right_column)) explicitly"
        )

    # ------------------------------------------------------------------- sugar

    def relations(self) -> Tuple[str, ...]:
        """The base relations referenced, in join order."""
        return self._relations

    def __repr__(self) -> str:
        try:
            return f"Q({self.build().canonical()})"
        except WarehouseError:
            return f"Q(relations={list(self._relations)})"


def as_expression(query) -> Expression:
    """Accept either a :class:`Q` builder or a ready logical expression."""
    if isinstance(query, Q):
        return query.build()
    if isinstance(query, Expression):
        return query
    raise WarehouseError(
        f"expected a Q builder or an algebra Expression, got {type(query).__name__}"
    )
