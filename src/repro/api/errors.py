"""Errors raised by the public :mod:`repro.api` surface.

Everything the façade raises on user mistakes is a :class:`WarehouseError`,
and name-lookup failures always carry the near-miss candidates — a typo'd
view or relation name should produce "did you mean ...", never a bare
``KeyError`` escaping from three layers down.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional


class WarehouseError(Exception):
    """A user-facing error from the :class:`~repro.api.Warehouse` façade."""


class StreamClosedError(WarehouseError):
    """Raised when ingesting into (or flushing) a closed stream session.

    A :class:`~repro.api.stream.StreamSession` flushes its pending deltas on
    ``close()`` (and on clean ``with``-block exit); afterwards the session
    object is inert — open a fresh one with ``Warehouse.stream()``.
    """


class ServingError(WarehouseError):
    """A serving-layer failure: a crashed refresh daemon surfacing into a
    client call, an ingest shed because the write queue is full, or misuse
    of the serving session."""


class ServingClosedError(ServingError):
    """Raised when querying (or ingesting into) a closed serving session."""


class StaleReadError(ServingError):
    """A read shed by the ``reject`` admission policy: the view's staleness
    exceeds its :class:`~repro.serving.FreshnessSLO` and the session was
    told to refuse degraded reads rather than serve or block."""


def unknown_name(
    kind: str, name: str, known: Iterable[str], hint: Optional[str] = None
) -> WarehouseError:
    """A :class:`WarehouseError` for an unknown name, listing near misses.

    ``kind`` is the noun used in the message ("view", "relation", "profile",
    ...); ``known`` is the universe of valid names to suggest from.
    """
    candidates = sorted(known)
    matches = difflib.get_close_matches(name, candidates, n=3, cutoff=0.5)
    message = f"unknown {kind} {name!r}"
    if matches:
        message += f" — did you mean {', '.join(repr(m) for m in matches)}?"
    elif candidates:
        shown = ", ".join(repr(c) for c in candidates[:8])
        if len(candidates) > 8:
            shown += ", ..."
        message += f" (known {kind}s: {shown})"
    else:
        message += f" (no {kind}s defined yet)"
    if hint:
        message += f" {hint}"
    return WarehouseError(message)
