"""One validated configuration object for the whole pipeline.

:class:`WarehouseConfig` consolidates the knobs that were previously spread
across ``ExperimentConfig``, ``ViewMaintenanceOptimizer``, ``ViewRefresher``
and the ``CardinalityEstimator`` into a single frozen dataclass the
:class:`~repro.api.Warehouse` hands to every component it owns.  Named
profiles capture the three configurations that matter in practice:

* ``paper``  — the paper's experimental setting (the defaults): Greedy on,
  primary-key indexes predeclared, histograms + runtime feedback, physical
  execution, no oracle verification;
* ``fast``   — quickest end-to-end runs: index candidate enumeration and
  runtime feedback (plan re-optimization) off;
* ``verify`` — every differential checked against the interpreted oracle,
  every refreshed view compared with recomputation, and every physical plan
  statically verified on every planning call — slow, but any divergence
  raises immediately.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.api.errors import WarehouseError, unknown_name


def _env_workers() -> int:
    """Default worker count: the ``REPRO_WORKERS`` env pin, else 1 (serial)."""
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        return int(raw)
    except ValueError as exc:
        raise WarehouseError(
            f"REPRO_WORKERS must be an integer, got {raw!r}"
        ) from exc


@dataclass(frozen=True)
class WarehouseConfig:
    """Every knob of the select–maintain–refresh pipeline in one place."""

    #: Buffer pool available to the cost model (pages of ``block_size`` bytes).
    buffer_pages: int = 8000
    block_size: int = 4096

    #: Run the greedy selection of extra materializations in ``optimize()``
    #: (``False`` gives the paper's NoGreedy baseline).
    greedy: bool = True
    #: Predeclare primary-key indexes when loading a workload catalog
    #: (the paper's default; Figure 5(b) turns it off).
    with_pk_indexes: bool = True
    #: Let Greedy consider building indexes.
    include_index_candidates: bool = True
    #: Let Greedy consider materializing differentials.
    include_differential_candidates: bool = False
    #: Use the monotonicity assumption to prune benefit recomputation.
    use_monotonicity: bool = True

    #: Estimate selectivities from equi-depth histograms when available.
    histograms: bool = True
    #: Feed observed operator cardinalities back into the estimator and
    #: re-optimize cached plans that drifted.
    feedback: bool = True

    #: Execute full (re)computations through the physical plan layer.
    use_physical: bool = True
    #: Run differentials through the vectorized engine (``None`` follows
    #: ``use_physical``, the historical default).
    vectorized_differentials: Optional[bool] = None
    #: Check every vectorized differential against the interpreted oracle.
    verify_differentials: bool = False
    #: After ``apply()``, compare every view against full recomputation and
    #: fail (rolling the batch back) on any mismatch.
    verify_refresh: bool = False

    #: Run the static expression analyzer on every ``define_view``/``query``
    #: definition, rejecting ill-typed expressions with diagnostics instead
    #: of letting them fail mid-execution.
    analysis: bool = True
    #: When the plan verifier runs over compiled physical plans:
    #: ``"cache-insert"`` checks each plan once, when it first enters the
    #: plan cache (the default — off the replay hot path); ``"always"``
    #: re-checks on every planning call (the ``verify`` profile);
    #: ``"off"`` disables plan verification.
    verify_plans: str = "cache-insert"

    #: Default update batch for ``optimize()``/``apply()`` when the caller
    #: does not pass one: the paper's uniform model at this fraction ...
    update_percentage: float = 0.05
    #: ... with this many inserts per delete (2:1 models a growing warehouse).
    insert_to_delete_ratio: float = 2.0
    #: Seed for generated update batches (kept fixed so runs reproduce).
    seed: int = 2024

    #: Cap on the number of greedy selections (``None`` = run to convergence).
    max_selections: Optional[int] = None

    #: Shard workers for parallel execution and refresh.  ``1`` (the
    #: default) keeps everything on the serial path — the oracle; ``> 1``
    #: partitions the sharded base relations across this many worker
    #: processes (see :mod:`repro.parallel`) and dispatches per-shard plans
    #: where the expression distributes, falling back to serial per
    #: expression otherwise.  Defaults to the ``REPRO_WORKERS`` env pin.
    workers: int = field(default_factory=_env_workers)

    #: Default refresh timing for ``Warehouse.stream()`` sessions:
    #: ``"coalesce"`` defers and coalesces update rounds until the cost model
    #: or a staleness bound triggers a flush; ``"eager"`` refreshes on every
    #: ingest (the paper's implicit behavior).
    stream_policy: str = "coalesce"
    #: Staleness bound: flush once this many pending (coalesced) delta rows
    #: have accumulated (``None`` = unbounded).
    stream_max_rows: Optional[int] = None
    #: Staleness bound: flush once this many update rounds were deferred
    #: (``None`` = unbounded; the default keeps sessions from deferring
    #: forever even when deferral keeps paying).
    stream_max_batches: Optional[int] = 32
    #: Consult the delta-size-aware cost model on every stream tick (with
    #: ``False`` only the staleness bounds trigger flushes).
    stream_cost_based: bool = True

    #: Admission policy for ``Warehouse.serve()`` reads whose view violates
    #: its freshness SLO: ``"serve-stale"`` serves the pinned snapshot and
    #: flags the result degraded; ``"block"`` waits (up to
    #: ``serving_block_timeout_seconds``) for a fresh-enough snapshot, then
    #: degrades; ``"reject"`` sheds the read with ``StaleReadError``.
    serving_read_policy: str = "serve-stale"
    #: Per-view freshness SLO: most ingested-but-unapplied update rounds a
    #: served view tolerates before the daemon forces a refresh
    #: (``None`` = unbounded, cost-based deferral alone decides).
    serving_max_staleness_rounds: Optional[int] = 8
    #: ... most pending delta rows over the view's base relations.
    serving_max_staleness_rows: Optional[int] = None
    #: ... longest (seconds) a pending ingest may wait before a refresh.
    serving_max_staleness_seconds: Optional[float] = None
    #: Bounded write queue between ``ingest()`` callers and the refresh
    #: daemon; a full queue sheds the ingest with ``ServingError``.
    serving_queue_capacity: int = 1024
    #: How long a ``block`` read waits for freshness before degrading.
    serving_block_timeout_seconds: float = 5.0
    #: Idle wake-up period of the refresh daemon (enforces time-based SLOs
    #: when no ingests arrive).
    serving_tick_seconds: float = 0.05

    #: Name of the profile this config was derived from (informational).
    profile_name: str = "paper"

    def __post_init__(self) -> None:
        if self.buffer_pages <= 0:
            raise WarehouseError(f"buffer_pages must be positive, got {self.buffer_pages}")
        if self.block_size <= 0:
            raise WarehouseError(f"block_size must be positive, got {self.block_size}")
        if self.update_percentage < 0:
            raise WarehouseError(
                f"update_percentage must be non-negative, got {self.update_percentage}"
            )
        if self.insert_to_delete_ratio <= 0:
            raise WarehouseError(
                f"insert_to_delete_ratio must be positive, got {self.insert_to_delete_ratio}"
            )
        if self.workers < 1:
            raise WarehouseError(f"workers must be >= 1, got {self.workers}")
        if self.max_selections is not None and self.max_selections < 0:
            raise WarehouseError(
                f"max_selections must be non-negative or None, got {self.max_selections}"
            )
        if self.verify_differentials and not self._vectorized():
            raise WarehouseError(
                "verify_differentials checks the vectorized engine against the "
                "interpreted oracle; it needs vectorized differentials enabled"
            )
        if self.stream_policy not in ("eager", "coalesce"):
            raise unknown_name("stream policy", self.stream_policy, ("eager", "coalesce"))
        if self.verify_plans not in ("always", "cache-insert", "off"):
            raise unknown_name(
                "plan verification mode",
                self.verify_plans,
                ("always", "cache-insert", "off"),
            )
        if self.stream_max_rows is not None and self.stream_max_rows < 1:
            raise WarehouseError(
                f"stream_max_rows must be positive or None, got {self.stream_max_rows}"
            )
        if self.stream_max_batches is not None and self.stream_max_batches < 1:
            raise WarehouseError(
                f"stream_max_batches must be positive or None, got {self.stream_max_batches}"
            )
        if (
            self.stream_policy == "coalesce"
            and not self.stream_cost_based
            and self.stream_max_rows is None
            and self.stream_max_batches is None
        ):
            raise WarehouseError(
                "a coalescing stream policy with stream_cost_based=False "
                "needs stream_max_rows or stream_max_batches — nothing "
                "would ever trigger a refresh"
            )
        if self.serving_read_policy not in ("serve-stale", "block", "reject"):
            raise unknown_name(
                "serving read policy",
                self.serving_read_policy,
                ("serve-stale", "block", "reject"),
            )
        if (
            self.serving_max_staleness_rounds is not None
            and self.serving_max_staleness_rounds < 1
        ):
            raise WarehouseError(
                f"serving_max_staleness_rounds must be positive or None, got "
                f"{self.serving_max_staleness_rounds}"
            )
        if (
            self.serving_max_staleness_rows is not None
            and self.serving_max_staleness_rows < 1
        ):
            raise WarehouseError(
                f"serving_max_staleness_rows must be positive or None, got "
                f"{self.serving_max_staleness_rows}"
            )
        if (
            self.serving_max_staleness_seconds is not None
            and self.serving_max_staleness_seconds <= 0
        ):
            raise WarehouseError(
                f"serving_max_staleness_seconds must be positive or None, got "
                f"{self.serving_max_staleness_seconds}"
            )
        if self.serving_queue_capacity < 1:
            raise WarehouseError(
                f"serving_queue_capacity must be positive, got "
                f"{self.serving_queue_capacity}"
            )
        if self.serving_block_timeout_seconds <= 0:
            raise WarehouseError(
                f"serving_block_timeout_seconds must be positive, got "
                f"{self.serving_block_timeout_seconds}"
            )
        if self.serving_tick_seconds <= 0:
            raise WarehouseError(
                f"serving_tick_seconds must be positive, got "
                f"{self.serving_tick_seconds}"
            )

    def make_stream_policy(self) -> "StreamPolicy":
        """The :class:`~repro.stream.StreamPolicy` these knobs describe."""
        from repro.stream import StreamPolicy

        if self.stream_policy == "eager":
            return StreamPolicy.always()
        return StreamPolicy.coalescing(
            max_rows=self.stream_max_rows,
            max_batches=self.stream_max_batches,
            cost_based=self.stream_cost_based,
        )

    def make_freshness_slo(self) -> "FreshnessSLO":
        """The default per-view :class:`~repro.serving.FreshnessSLO` the
        serving knobs describe (``serve()`` overrides apply per view)."""
        from repro.serving import FreshnessSLO

        return FreshnessSLO(
            max_rounds=self.serving_max_staleness_rounds,
            max_rows=self.serving_max_staleness_rows,
            max_seconds=self.serving_max_staleness_seconds,
        )

    def _vectorized(self) -> bool:
        if self.vectorized_differentials is None:
            return self.use_physical
        return self.vectorized_differentials

    # ------------------------------------------------------------------ profiles

    @classmethod
    def profile(cls, name: str, **overrides) -> "WarehouseConfig":
        """A named profile, optionally with field overrides on top."""
        if name not in _PROFILES:
            raise unknown_name("profile", name, _PROFILES)
        config = _PROFILES[name]
        if overrides:
            bad = set(overrides) - {f.name for f in fields(cls)}
            if bad:
                raise unknown_name(
                    "config field", sorted(bad)[0], [f.name for f in fields(cls)]
                )
            config = replace(config, **overrides)
        return config

    @classmethod
    def profiles(cls) -> Dict[str, "WarehouseConfig"]:
        """All named profiles."""
        return dict(_PROFILES)

    def describe(self) -> str:
        """One-line human-readable summary of the non-default knobs."""
        parts = [f"profile={self.profile_name}"]
        parts.append("greedy" if self.greedy else "no-greedy")
        if not self.with_pk_indexes:
            parts.append("no-pk-indexes")
        if not self.histograms:
            parts.append("no-histograms")
        if not self.feedback:
            parts.append("no-feedback")
        if self.verify_differentials:
            parts.append("verify-differentials")
        if self.verify_refresh:
            parts.append("verify-refresh")
        if not self.analysis:
            parts.append("no-analysis")
        if self.verify_plans != "cache-insert":
            parts.append(f"verify-plans={self.verify_plans}")
        if self.workers > 1:
            parts.append(f"workers={self.workers}")
        return ", ".join(parts)


_PROFILES: Dict[str, WarehouseConfig] = {
    "paper": WarehouseConfig(profile_name="paper"),
    "fast": WarehouseConfig(
        profile_name="fast",
        include_index_candidates=False,
        feedback=False,
    ),
    "verify": WarehouseConfig(
        profile_name="verify",
        verify_differentials=True,
        verify_refresh=True,
        verify_plans="always",
    ),
}
