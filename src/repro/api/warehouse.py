"""The :class:`Warehouse` session façade.

The paper's system is one closed loop — define views, let the optimizer pick
extra materializations, apply update batches, refresh incrementally — and
this class owns that whole loop behind a single object:

    wh = Warehouse(WarehouseConfig.profile("paper")).load(tpcd, scale=0.1)
    wh.define_view("revenue", Q.table("lineitem").join("orders")
                               .join("customer").join("nation")
                               .group_by("n_name").sum("l_extendedprice"))
    result = wh.optimize()              # Greedy / NoGreedy per the config
    wh.load_data(scale=0.001)           # executable data for actual refresh
    report = wh.apply(0.05)             # one transactional update+refresh
    print(wh.explain("revenue"))        # strategy, plan tree, est vs actual

Internally the warehouse wires the existing components — ``Catalog``,
``CardinalityEstimator``, ``ViewMaintenanceOptimizer``, ``Database``,
``PhysicalExecutor``, ``ViewRefresher`` — exactly the way the examples and
benchmarks used to wire them by hand, with one estimator per catalog shared
across every consumer so cardinalities (and the runtime feedback loop) are
consistent everywhere.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.algebra.expressions import Expression, base_relations
from repro.api.builder import Q, as_expression
from repro.api.config import WarehouseConfig
from repro.api.errors import WarehouseError, unknown_name
from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator, qerror
from repro.engine.database import Database
from repro.engine.physical import PhysicalExecutor
from repro.maintenance.maintainer import RefreshReport, ViewRefresher
from repro.maintenance.optimizer import OptimizationResult, ViewMaintenanceOptimizer
from repro.maintenance.update_spec import RelationUpdate, UpdateSpec
from repro.mqo.greedy import MqoResult, MultiQueryOptimizer
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.volcano import VolcanoSearch
from repro.storage.buffer import BufferPool
from repro.storage.delta import DeltaStore, merge_delta_sizes
from repro.workloads import datagen, updategen

if TYPE_CHECKING:
    from repro.analysis import ColumnProvenance


@dataclass
class WarehouseRefreshReport(RefreshReport):
    """A :class:`RefreshReport` plus what the warehouse knows about the batch."""

    #: Base relations the applied batch touched, in propagation order.
    updated_relations: List[str] = field(default_factory=list)
    #: Per-view result of verification against recomputation (only populated
    #: when the config asks for ``verify_refresh``).
    verification: Dict[str, bool] = field(default_factory=dict)
    #: Wall-clock seconds the update+refresh step took.
    elapsed_seconds: float = 0.0
    #: Update rounds refreshed in this step (stream flushes may carry many).
    rounds: int = 1
    #: Base-table tuples applied across all rounds (insert + delete bags).
    base_rows_applied: int = 0

    @property
    def verified(self) -> bool:
        """Whether verification ran *and* every view matched recomputation.

        ``False`` when no verification happened (profiles without
        ``verify_refresh``) — a report is never "verified" vacuously.
        """
        return bool(self.verification) and all(self.verification.values())


#: What ``apply()`` accepts as an update batch.
UpdateBatch = Union[DeltaStore, UpdateSpec, float]


class Warehouse:
    """One session over the select–maintain–refresh pipeline."""

    def __init__(self, config: Optional[WarehouseConfig] = None) -> None:
        self.config = config or WarehouseConfig()
        self._catalog: Optional[Catalog] = None
        self._estimator: Optional[CardinalityEstimator] = None
        self._optimizer: Optional[ViewMaintenanceOptimizer] = None
        self._views: Dict[str, Expression] = {}
        self._database: Optional[Database] = None
        self._runtime: Optional[PhysicalExecutor] = None
        #: Lazy shard pool (config.workers > 1): built on first refresh,
        #: kept in sync with the database round by round, torn down whenever
        #: the database object changes (load_data, rollback).
        self._shard_pool = None
        self._result: Optional[OptimizationResult] = None
        #: High-water mark of TPC-D keys ever issued per relation, shared by
        #: ``apply()`` and every stream session: deletes shrink the tables,
        #: so generated batches must not restart key sequences at
        #: ``len(table)`` and re-issue keys of rows that still exist.
        self._issued_keys: Dict[str, int] = {}

    # -------------------------------------------------------------------- load

    def load(self, workload=None, scale: float = 0.1, *, catalog: Optional[Catalog] = None) -> "Warehouse":
        """Attach the statistics catalog the optimizer plans against.

        ``workload`` is a workload module exposing a catalog factory — in
        practice :mod:`repro.workloads.tpcd` (or the string ``"tpcd"``) —
        instantiated at scale factor ``scale``; alternatively pass a
        ready-built :class:`Catalog` via ``catalog=``.
        """
        if catalog is not None:
            self._catalog = catalog
        else:
            if workload is None or workload == "tpcd":
                from repro.workloads import tpcd as workload
            factory = getattr(workload, "tpcd_catalog", None)
            if factory is None:
                raise WarehouseError(
                    f"cannot load {workload!r}: pass a workload module with a "
                    f"tpcd_catalog(scale_factor, with_pk_indexes) factory or "
                    f"a Catalog via load(catalog=...)"
                )
            self._catalog = factory(
                scale_factor=scale, with_pk_indexes=self.config.with_pk_indexes
            )
        self._estimator = CardinalityEstimator(
            self._catalog,
            use_histograms=self.config.histograms,
            use_feedback=self.config.feedback,
        )
        self._optimizer = ViewMaintenanceOptimizer(
            self._catalog,
            cost_model=self._cost_model(),
            include_differential_candidates=self.config.include_differential_candidates,
            include_index_candidates=self.config.include_index_candidates,
            use_monotonicity=self.config.use_monotonicity,
            estimator=self._estimator,
        )
        self._result = None
        return self

    def load_data(
        self,
        scale: float = 0.001,
        seed: int = 7,
        tables: Optional[Sequence[str]] = None,
        *,
        database: Optional[Database] = None,
    ) -> "Warehouse":
        """Populate (or attach) the executable database ``apply()`` runs on.

        The paper's pattern — plan against full-scale statistics, execute at
        a small scale factor — is the default: ``load()`` sets the planning
        catalog, this generates deterministic TPC-D data at ``scale``.
        """
        if database is not None:
            self._database = database
        else:
            self._database = datagen.small_database(
                scale_factor=scale, seed=seed, tables=tables
            )
        self._attach_runtime()
        if self._catalog is None:
            # No separate planning catalog: plan directly over the data.
            self.load(catalog=self._database.catalog)
        return self

    def _attach_runtime(self) -> None:
        self._close_shard_pool()
        runtime_estimator = CardinalityEstimator(
            self._database.catalog,
            use_histograms=self.config.histograms,
            use_feedback=self.config.feedback,
        )
        self._runtime = PhysicalExecutor(
            self._database,
            estimator=runtime_estimator,
            feedback=self.config.feedback,
            verify_plans=self.config.verify_plans,
        )

    def _cost_model(self) -> CostModel:
        return CostModel(
            CostParameters(), BufferPool(self.config.buffer_pages, self.config.block_size)
        )

    # ---------------------------------------------------------------- parallel

    def shard_pool(self):
        """The session's :class:`~repro.parallel.ShardPool`, or ``None``.

        Built lazily on first use when ``config.workers > 1`` and a database
        is loaded; the pool's worker shards are kept in sync with every
        applied batch and the pool lives until the database object changes
        (``load_data``, transactional rollback) or :meth:`close`.
        """
        if self.config.workers <= 1 or self._database is None:
            return None
        if self._shard_pool is None:
            from repro.parallel import ShardPool, ShardSpec

            spec = ShardSpec.for_database(self._database, self.config.workers)
            self._shard_pool = ShardPool(
                self._database, spec, use_physical=self.config.use_physical
            )
        return self._shard_pool

    def _close_shard_pool(self) -> None:
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None

    def close(self) -> None:
        """Release session resources (shard worker processes, if any)."""
        self._close_shard_pool()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------- views

    def define_view(self, name: str, query: Union[Q, Expression]) -> "Warehouse":
        """Register one materialized view definition (a :class:`Q` chain or a
        ready logical expression).

        With ``config.analysis`` (the default) the definition runs through
        the static expression analyzer first: unknown columns, ill-typed
        comparisons and joins, non-numeric aggregates and the like are
        rejected here — with diagnostic codes and fix hints — instead of
        failing as a ``KeyError`` deep inside a later refresh.
        """
        expression = as_expression(query)
        self._check_relations(expression, context=f"view {name!r}")
        self._analyze(expression, context=f"view {name!r}")
        self._views[str(name)] = expression
        self._result = None
        return self

    def define_views(self, views: Mapping[str, Union[Q, Expression]]) -> "Warehouse":
        """Register a whole set of view definitions at once."""
        for name, query in views.items():
            self.define_view(name, query)
        return self

    @property
    def views(self) -> Dict[str, Expression]:
        """The registered view definitions (name → logical expression)."""
        return dict(self._views)

    def view_definition(self, name: str) -> Expression:
        """The definition of one registered view."""
        if name not in self._views:
            raise unknown_name("view", name, self._views)
        return self._views[name]

    def _check_relations(self, expression: Expression, context: str) -> None:
        known = self._known_relations()
        if known is None:
            return
        for relation in sorted(base_relations(expression)):
            if relation not in known:
                raise unknown_name("relation", relation, known, hint=f"(in {context})")

    def _known_relations(self) -> Optional[List[str]]:
        if self._catalog is not None:
            return [table.name for table in self._catalog.tables()]
        if self._database is not None:
            return self._database.table_names()
        return None

    def _analysis_catalog(self) -> Optional[Catalog]:
        """The catalog static analysis resolves schemas against, if any."""
        if self._catalog is not None:
            return self._catalog
        if self._database is not None:
            return self._database.catalog
        return None

    def _analyze(self, expression: Expression, context: str) -> None:
        """Reject statically broken expressions with their diagnostics."""
        catalog = self._analysis_catalog()
        if not self.config.analysis or catalog is None:
            return
        from repro.analysis import analyze, render_diagnostics

        result = analyze(expression, catalog)
        if not result.ok:
            raise WarehouseError(
                f"static analysis rejected {context}:\n"
                + render_diagnostics(result.errors)
            )

    def provenance(self, view: Union[str, Q, Expression]) -> Dict[str, "ColumnProvenance"]:
        """Column provenance for a registered view (or an ad-hoc query).

        Maps each output column to a
        :class:`~repro.analysis.ColumnProvenance`: the base columns it
        derives from, the operators it passed through, and whether it is
        stored as-is (a column available directly from some base relation)
        or computed — the distinction Litwin-style partial materialization
        needs to pick a stored subset.
        """
        from repro.analysis import provenance as _provenance

        if isinstance(view, str):
            if view not in self._views:
                raise unknown_name("view", view, self._views)
            expression = self._views[view]
        else:
            expression = as_expression(view)
        catalog = self._analysis_catalog()
        if catalog is None:
            raise WarehouseError(
                "provenance needs a catalog — call load() or load_data() first"
            )
        return _provenance(expression, catalog)

    # ---------------------------------------------------------------- optimize

    def update_spec(self, update_percentage: Optional[float] = None) -> UpdateSpec:
        """The uniform update spec implied by the config (or an override)."""
        fraction = (
            self.config.update_percentage
            if update_percentage is None
            else update_percentage
        )
        return UpdateSpec.uniform(
            fraction, insert_to_delete_ratio=self.config.insert_to_delete_ratio
        )

    def optimize(
        self,
        spec: Optional[UpdateSpec] = None,
        *,
        update_percentage: Optional[float] = None,
        greedy: Optional[bool] = None,
        max_selections: Optional[int] = None,
    ) -> OptimizationResult:
        """Pick maintenance plans (and, under Greedy, extra materializations).

        Runs the paper's Greedy algorithm — or the NoGreedy baseline when the
        config (or the ``greedy=`` override) says so — over every registered
        view for the given update batch specification.
        """
        optimizer = self._require_optimizer()
        if not self._views:
            raise WarehouseError("no views defined — call define_view() first")
        if spec is None:
            spec = self.update_spec(update_percentage)
        run_greedy = self.config.greedy if greedy is None else greedy
        if max_selections is None:
            max_selections = self.config.max_selections
        if run_greedy:
            result = optimizer.optimize(self._views, spec, max_selections=max_selections)
        else:
            result = optimizer.no_greedy(self._views, spec)
        self._result = result
        return result

    def compare(
        self, spec: Optional[UpdateSpec] = None, *, update_percentage: Optional[float] = None
    ) -> Dict[str, OptimizationResult]:
        """Both algorithms on the same workload (one figure point)."""
        return {
            "no_greedy": self.optimize(spec, update_percentage=update_percentage, greedy=False),
            "greedy": self.optimize(spec, update_percentage=update_percentage, greedy=True),
        }

    def optimize_queries(self, queries: Mapping[str, Union[Q, Expression]]) -> MqoResult:
        """Multi-query optimization of an ad-hoc query batch (RSSB00): choose
        shared sub-expressions to materialize temporarily."""
        catalog = self._require_catalog()
        batch = {name: as_expression(query) for name, query in queries.items()}
        for name, expression in batch.items():
            self._check_relations(expression, context=f"query {name!r}")
            self._analyze(expression, context=f"query {name!r}")
        mqo = MultiQueryOptimizer(
            catalog,
            cost_model=self._cost_model(),
            use_monotonicity=self.config.use_monotonicity,
            estimator=self._estimator,
        )
        return mqo.optimize(batch)

    @property
    def last_optimization(self) -> Optional[OptimizationResult]:
        """The most recent ``optimize()`` outcome, if any."""
        return self._result

    # ------------------------------------------------------------------- apply

    def apply(
        self,
        batch: Optional[UpdateBatch] = None,
        *,
        seed: Optional[int] = None,
    ) -> WarehouseRefreshReport:
        """One transactional update+refresh step.

        ``batch`` may be a ready :class:`DeltaStore`, an :class:`UpdateSpec`,
        a plain update fraction (``0.05`` = the paper's 5% batch), or omitted
        to use the config's default percentage.  Concrete deltas are
        generated deterministically when a spec/fraction is given.  The base
        updates are applied and every view refreshed with the optimizer's
        decisions (recompute-vs-incremental, temporary shared results); if
        anything fails — including ``verify_refresh`` finding a mismatch —
        the database is rolled back to its pre-batch state before the error
        propagates.
        """
        deltas, spec = self._resolve_batch(batch, seed)
        return self._refresh_rounds([deltas], transactional=True, spec=spec)

    def _refresh_rounds(
        self,
        rounds: Sequence[DeltaStore],
        *,
        transactional: bool,
        spec: Optional[UpdateSpec] = None,
    ) -> WarehouseRefreshReport:
        """Refresh a sequence of concrete update rounds in one session.

        This is the shared core of :meth:`apply` (always one round,
        transactional) and the stream session's flush (possibly many rounds
        through :meth:`ViewRefresher.refresh_many`, non-transactional —
        ingested deltas are accepted state, so a failure surfaces without
        rolling back).
        """
        database = self._require_database()
        if not self._views:
            raise WarehouseError("no views defined — call define_view() first")
        started = time.perf_counter()
        relations: List[str] = []
        for deltas in rounds:
            for r in deltas.relation_order:
                if deltas.has_updates(r) and r not in relations:
                    relations.append(r)
        for relation in relations:
            if not database.has_relation(relation):
                raise unknown_name(
                    "relation", relation, database.table_names(), hint="(in update batch)"
                )
        self._verify_rounds(rounds)
        if self._result is None:
            self.optimize(spec if spec is not None else self._spec_of(rounds))
        recompute, temporaries = self._maintenance_choices()

        snapshot = database.copy() if transactional else None
        refresher = ViewRefresher(
            database,
            self._views,
            temporary_subexpressions=temporaries,
            recompute_views=recompute,
            use_physical=self.config.use_physical,
            vectorized_differentials=self.config.vectorized_differentials,
            verify_differentials=self.config.verify_differentials,
            physical_executor=self._runtime if self.config.use_physical else None,
            parallel=self.shard_pool(),
        )
        try:
            refresher.ensure_views()
            report = refresher.refresh_many(rounds)
            verification: Dict[str, bool] = {}
            if self.config.verify_refresh:
                verification = refresher.verify_against_recomputation()
                if not all(verification.values()):
                    failed = sorted(n for n, ok in verification.items() if not ok)
                    raise WarehouseError(
                        f"refresh verification failed for {failed}"
                        + ("; the batch was rolled back" if transactional else "")
                    )
        except Exception:
            if snapshot is not None:
                # Transactional semantics: restore the pre-batch state
                # (tables, views, indexes, statistics) before letting the
                # error surface.  When the planning catalog *is* the
                # database's catalog (the load_data-without-load path),
                # rebind planning to the restored copy too — otherwise
                # optimize()/explain() would keep pricing against statistics
                # that include the rolled-back batch.
                planning_was_runtime = self._catalog is database.catalog
                self._database = snapshot
                self._attach_runtime()
                if planning_was_runtime:
                    self.load(catalog=snapshot.catalog)
            raise
        return WarehouseRefreshReport(
            steps=report.steps,
            recomputed_views=report.recomputed_views,
            updated_relations=relations,
            verification=verification,
            elapsed_seconds=time.perf_counter() - started,
            rounds=len(rounds),
            base_rows_applied=sum(deltas.total_rows() for deltas in rounds),
        )

    def _verify_rounds(self, rounds: Sequence[DeltaStore]) -> None:
        """Statically verify every update round before anything is applied.

        Catches deltas over relations outside the database (``REPRO-P004``)
        and deltas logged against a stale base schema (``REPRO-P005``) —
        both would otherwise corrupt base tables or views mid-refresh,
        after some rounds already applied.
        """
        if self.config.verify_plans == "off":
            return
        from repro.analysis import render_diagnostics, verify_delta_round
        from repro.analysis.diagnostics import errors

        database = self._require_database()
        for deltas in rounds:
            bad = errors(verify_delta_round(deltas, database, views=self._views))
            if bad:
                raise WarehouseError(
                    "update batch failed static verification:\n"
                    + render_diagnostics(bad)
                )

    @property
    def view_relations(self) -> List[str]:
        """Loaded base relations the registered views depend on (sorted)."""
        database = self._require_database()
        return sorted(
            {r for expr in self._views.values() for r in base_relations(expr)}
            & set(database.table_names())
        )

    def _key_offsets(self, relations: Sequence[str]) -> Dict[str, int]:
        """How far each relation's key sequence must skip past ``len(table)``."""
        database = self._require_database()
        return {
            name: max(0, self._issued_keys.get(name, 0) - len(database.table(name)))
            for name in relations
        }

    def _advance_issued_keys(self, deltas: DeltaStore) -> None:
        """Raise the issued-keys high-water mark past a batch's inserts.

        Applied to caller-supplied stores too: their inserts consume key
        space (the generators continue sequences at the table length), so a
        later generated batch must start above them.
        """
        database = self._require_database()
        for delta in deltas:
            if len(delta.inserts) and database.has_relation(delta.relation):
                base = max(
                    self._issued_keys.get(delta.relation, 0),
                    len(database.table(delta.relation)),
                )
                self._issued_keys[delta.relation] = base + len(delta.inserts)

    def _batch_spec(self, batch: Optional[UpdateBatch], entry_point: str) -> UpdateSpec:
        """The :class:`UpdateSpec` an abstract batch argument describes.

        Shared dispatch for ``apply()`` and ``stream().ingest()`` — both
        document the same accepted shapes; ``entry_point`` names the caller
        in the error message.
        """
        if batch is None:
            return self.update_spec()
        if isinstance(batch, UpdateSpec):
            return batch
        if isinstance(batch, (int, float)) and not isinstance(batch, bool):
            return self.update_spec(float(batch))
        raise WarehouseError(
            f"{entry_point} takes a DeltaStore, an UpdateSpec or an update "
            f"fraction, got {type(batch).__name__}"
        )

    def _resolve_batch(
        self, batch: Optional[UpdateBatch], seed: Optional[int]
    ) -> Tuple[DeltaStore, UpdateSpec]:
        """Concrete deltas plus the spec describing them."""
        database = self._require_database()
        relations = self.view_relations
        if isinstance(batch, DeltaStore):
            self._advance_issued_keys(batch)
            return batch, self._spec_of([batch])
        spec = self._batch_spec(batch, "apply()")
        deltas = updategen.generate_deltas(
            database,
            spec.restricted_to(relations),
            relations,
            seed=self.config.seed if seed is None else seed,
            key_offsets=self._key_offsets(relations),
        )
        self._advance_issued_keys(deltas)
        return deltas, spec

    def _spec_of(self, rounds: Sequence[DeltaStore]) -> UpdateSpec:
        """The update spec a sequence of concrete delta rounds realizes.

        Used when a lazy ``optimize()`` has to run for caller-supplied
        :class:`DeltaStore` rounds: maintenance decisions are priced for the
        batch's real per-relation insert/delete fractions (summed across the
        rounds), not the config's default percentage.
        """
        database = self._require_database()
        sizes = merge_delta_sizes(*[deltas.delta_sizes() for deltas in rounds])
        updates: Dict[str, RelationUpdate] = {}
        for relation, (inserts, deletes) in sizes.items():
            if not database.has_relation(relation):
                continue
            current = max(1, len(database.table(relation)))
            updates[relation] = RelationUpdate(
                insert_fraction=inserts / current,
                delete_fraction=deletes / current,
            )
        return UpdateSpec(updates, relation_order=list(sizes))

    def _maintenance_choices(self) -> Tuple[List[str], Dict[str, Expression]]:
        """Recompute decisions and temporary shared results from the last run."""
        result = self._result
        if result is None:
            return [], {}
        recompute = [
            decision.view
            for decision in result.plan.decisions
            if decision.strategy == "recompute"
        ]
        temporaries: Dict[str, Expression] = {}
        if result.selection is not None:
            loaded = set(self._require_database().table_names())
            view_forms = {expr.canonical() for expr in self._views.values()}
            for chosen in result.selection.selections:
                candidate = chosen.candidate
                if chosen.disposition != "temporary" or candidate.kind != "result":
                    continue
                if candidate.key is None or not candidate.key.is_full:
                    continue
                expression = result.dag.node(candidate.node_id).expression
                if expression is None or expression.canonical() in view_forms:
                    continue
                if not base_relations(expression) <= loaded:
                    continue
                temporaries[f"__wh_tmp_e{candidate.node_id}"] = expression
        return recompute, temporaries

    # ------------------------------------------------------------------ stream

    def stream(self, policy: Optional[Union[str, "StreamPolicy"]] = None) -> "StreamSession":
        """Open a streaming ingest session (see :mod:`repro.stream`).

        ``policy`` may be a ready :class:`~repro.stream.StreamPolicy`, a
        policy name (``"eager"`` / ``"coalesce"``), or omitted to use the
        config's stream knobs.  The session buffers ingested update rounds,
        coalesces them (insert/delete annihilation), and refreshes only when
        the cost model or a staleness bound says deferral stopped paying::

            with wh.stream() as session:
                session.ingest(0.02)
                session.ingest(0.02)
            print(session.explain_schedule())
        """
        from repro.api.stream import StreamSession
        from repro.stream import StreamPolicy

        self._require_database()
        if not self._views:
            raise WarehouseError("no views defined — call define_view() first")
        if policy is None:
            policy = self.config.make_stream_policy()
        elif isinstance(policy, str):
            # Route through the config so the name-to-policy mapping (and
            # its validation) lives in exactly one place.
            policy = replace(self.config, stream_policy=policy).make_stream_policy()
        elif not isinstance(policy, StreamPolicy):
            raise WarehouseError(
                f"stream() takes a StreamPolicy or a policy name, got "
                f"{type(policy).__name__}"
            )
        try:
            return StreamSession(self, policy)
        except ValueError as exc:
            # e.g. a caller-built policy that could never trigger a refresh —
            # surface it as the façade's error family.
            raise WarehouseError(str(exc)) from exc

    # ----------------------------------------------------------------- serving

    def serve(
        self,
        *,
        read_policy: Optional[str] = None,
        slo=None,
        slos=None,
        stream_policy: Optional[Union[str, "StreamPolicy"]] = None,
    ) -> "ServingSession":
        """Open a concurrent serving session (see :mod:`repro.serving`).

        Returns a thread-safe :class:`~repro.api.serving.ServingSession`:
        readers query snapshot-isolated view contents while a background
        daemon drains ingested update rounds through the stream scheduler
        and republishes snapshots at every refresh commit::

            with wh.serve(read_policy="serve-stale") as session:
                session.ingest(0.02)               # queued, non-blocking
                result = session.query("revenue")  # never torn state
            print(session.explain_serving())

        ``read_policy`` (``"serve-stale"`` / ``"block"`` / ``"reject"``),
        the default ``slo`` (a :class:`~repro.serving.FreshnessSLO`) and
        per-view ``slos`` overrides default to the config's serving knobs;
        ``stream_policy`` takes the same shapes as :meth:`stream`.  While
        the session is open it owns this warehouse's engine — do not
        interleave ``apply()`` / ``stream()`` on the same warehouse.
        """
        from repro.api.serving import ServingSession
        from repro.stream import StreamPolicy

        self._require_database()
        if not self._views:
            raise WarehouseError("no views defined — call define_view() first")
        if isinstance(stream_policy, str):
            stream_policy = replace(
                self.config, stream_policy=stream_policy
            ).make_stream_policy()
        elif stream_policy is not None and not isinstance(stream_policy, StreamPolicy):
            raise WarehouseError(
                f"serve() takes a StreamPolicy or a policy name for "
                f"stream_policy, got {type(stream_policy).__name__}"
            )
        try:
            return ServingSession(
                self,
                read_policy=read_policy,
                slo=slo,
                slos=slos,
                stream_policy=stream_policy,
            )
        except ValueError as exc:
            raise WarehouseError(str(exc)) from exc

    def _stream_round_cost(self):
        """The per-round cost model stream schedulers consult.

        Delta-size-aware costing over the *runtime* catalog (the statistics
        of the actual loaded data — the index-rebuild threshold compares
        delta sizes against real cardinalities), including the large-delta
        penalty of ``Database.apply_update``'s rebuild fallback.
        """
        from repro.engine.database import INCREMENTAL_INDEX_FRACTION

        self._require_database()
        if self._runtime is None and self._estimator is None:
            return None

        def round_cost(delta_sizes: Mapping[str, Tuple[int, int]]) -> float:
            # Resolved per tick, not captured at session open: a rollback or
            # load_data() swaps the runtime (and its estimator/catalog), and
            # open sessions must price against the live statistics.
            database = self._require_database()
            estimator = (
                self._runtime.estimator if self._runtime is not None else self._estimator
            )
            indexed = Counter(index.table for index in database.catalog.all_indexes())
            return estimator.refresh_round_cost(
                self._views,
                delta_sizes,
                index_rebuild_fraction=INCREMENTAL_INDEX_FRACTION,
                indexed_relations=indexed,
            )

        return round_cost

    # ----------------------------------------------------------------- explain

    def explain(self, view: str) -> str:
        """Human-readable maintenance story for one view.

        Renders the chosen strategy (recompute vs incremental, with both
        costs), the extra materializations Greedy picked, the chosen plan
        tree under that configuration, and — once ``apply()`` has executed
        plans against real data — estimated-vs-actual cardinalities from the
        runtime feedback loop.
        """
        if view not in self._views:
            raise unknown_name("view", view, self._views)
        if self._result is None:
            self.optimize()
        result = self._result
        lines: List[str] = [f"view: {view}"]
        lines.append(f"definition: {self._views[view].canonical()}")
        decision = result.plan.decision_for(view)
        lines.append(
            f"strategy: {decision.strategy} (recompute {decision.recompute_cost:.2f}, "
            f"incremental {decision.incremental_cost:.2f}, estimated seconds)"
        )
        if result.selection is not None:
            for label, values in (
                ("permanent results", result.permanent_results),
                ("temporary results", result.temporary_results),
                ("indexes", result.indexes),
            ):
                if values:
                    lines.append(f"{label}: {', '.join(values)}")
        lines.append("plan:")
        plan = self._chosen_plan(view)
        lines.extend("  " + line for line in plan.pretty().splitlines())
        lines.append("cardinalities (estimated -> actual):")
        lines.extend("  " + line for line in self._cardinality_lines(plan))
        lines.append("verification:")
        lines.extend("  " + line for line in self._verification_lines(plan))
        return "\n".join(lines)

    def _verification_lines(self, plan) -> List[str]:
        """Static plan-verification status rendered for ``explain``."""
        from repro.analysis import render_verification, verify_plan

        if self.config.verify_plans == "off":
            return ["skipped (verify_plans=off)"]
        # Catalog-only verification: explain's plan is a planning-time
        # hypothetical (Greedy's extra materializations may not exist yet),
        # so materialization checks would mis-fire; schema and type checks
        # still run in full.
        diagnostics = verify_plan(plan, catalog=self._analysis_catalog())
        return render_verification(diagnostics)

    def _chosen_plan(self, view: str):
        """The view's best recomputation plan under the final configuration."""
        result = self._result
        dag = result.dag
        materialized = {
            key.node_id for key in result.engine.materialized if key.is_full
        }
        search = VolcanoSearch(dag, self._require_catalog(), self._cost_model())
        # The view's own full result must not satisfy itself through reuse.
        root_id = dag.roots[view].id
        outcome = search.optimize(materialized=frozenset(materialized - {root_id}))
        return outcome.extract_plan(root_id)

    def _cardinality_lines(self, plan) -> List[str]:
        lines: List[str] = []
        seen = set()

        def walk(node, depth: int) -> None:
            if node.expression is not None:
                key = node.expression.canonical()
                if key not in seen:
                    seen.add(key)
                    actual = None
                    if self._runtime is not None:
                        actual = self._runtime.estimator.observed_cardinality(key)
                    if actual is None:
                        observed = "(not yet observed)"
                    else:
                        observed = f"{actual:.0f} (q-error {qerror(node.cardinality, actual):.2f})"
                    lines.append(
                        f"{'  ' * depth}{node.description}: {node.cardinality:.0f} -> {observed}"
                    )
            for child in node.children:
                walk(child, depth + 1)

        walk(plan, 0)
        return lines

    # ------------------------------------------------------------ verification

    def verify(self) -> Dict[str, bool]:
        """Compare every materialized view against recomputation."""
        database = self._require_database()
        results: Dict[str, bool] = {}
        for name, expression in self._views.items():
            if not database.has_view(name):
                raise WarehouseError(
                    f"view {name!r} is not materialized yet — apply() a batch first"
                )
            from repro.engine.executor import evaluate

            results[name] = database.view(name).same_bag(evaluate(expression, database))
        return results

    # ------------------------------------------------------------- introspection

    @property
    def catalog(self) -> Optional[Catalog]:
        """The planning catalog (None before ``load()``)."""
        return self._catalog

    @property
    def database(self) -> Optional[Database]:
        """The executable database (None before ``load_data()``)."""
        return self._database

    @property
    def estimator(self) -> Optional[CardinalityEstimator]:
        """The planning-side estimator every optimizer cardinality comes from."""
        return self._estimator

    @property
    def optimizer(self) -> Optional[ViewMaintenanceOptimizer]:
        """The underlying maintenance optimizer (advanced use)."""
        return self._optimizer

    # ----------------------------------------------------------------- helpers

    def _require_catalog(self) -> Catalog:
        if self._catalog is None:
            raise WarehouseError("no catalog loaded — call load() first")
        return self._catalog

    def _require_optimizer(self) -> ViewMaintenanceOptimizer:
        self._require_catalog()
        return self._optimizer

    def _require_database(self) -> Database:
        if self._database is None:
            raise WarehouseError(
                "no executable data loaded — call load_data() before apply()"
            )
        return self._database
