"""Public API: one session façade over the select–maintain–refresh pipeline.

This package is the supported way to drive the reproduction:

* :class:`Warehouse` — the session object owning catalog, database,
  estimator, maintenance optimizer and refresher;
* :class:`WarehouseConfig` — every knob in one validated dataclass, with
  named profiles (``paper``, ``fast``, ``verify``);
* :class:`Q` — the fluent view builder compiling to the logical algebra;
* :class:`StreamSession` / :class:`StreamPolicy` — streaming ingest with
  delta coalescing and cost-based deferred refresh
  (``Warehouse.stream()``);
* :class:`ServingSession` / :class:`FreshnessSLO` — the concurrent serving
  tier: snapshot-isolated reads, a background refresh daemon, per-view
  staleness SLOs with degradation policies (``Warehouse.serve()``);
* :class:`WarehouseError` — everything the façade raises on user mistakes,
  always naming near-miss candidates for unknown names;
* :class:`Diagnostic` — one static-analysis finding (code, severity,
  message, path, hint), as produced by the expression analyzer behind
  ``define_view`` and exposed through ``Warehouse.provenance()``.

The lower-level modules (``repro.maintenance``, ``repro.engine``, ...)
remain importable for tests and advanced use, but examples and benchmarks
construct the pipeline exclusively through this package.
"""

from repro.analysis import ColumnProvenance, Diagnostic
from repro.api.builder import Q, as_expression
from repro.api.config import WarehouseConfig
from repro.api.errors import (
    ServingClosedError,
    ServingError,
    StaleReadError,
    StreamClosedError,
    WarehouseError,
)
from repro.api.serving import ServedResult, ServingSession
from repro.api.stream import StreamSession
from repro.api.warehouse import (
    UpdateBatch,
    Warehouse,
    WarehouseRefreshReport,
)
from repro.maintenance.maintainer import RefreshReport
from repro.maintenance.optimizer import OptimizationResult
from repro.maintenance.update_spec import UpdateSpec
from repro.serving import FreshnessSLO, SnapshotHandle, Staleness
from repro.stream import StreamPolicy, TickDecision

__all__ = [
    "Q",
    "as_expression",
    "ColumnProvenance",
    "Diagnostic",
    "FreshnessSLO",
    "OptimizationResult",
    "RefreshReport",
    "ServedResult",
    "ServingClosedError",
    "ServingError",
    "ServingSession",
    "SnapshotHandle",
    "StaleReadError",
    "Staleness",
    "StreamClosedError",
    "StreamPolicy",
    "StreamSession",
    "TickDecision",
    "UpdateBatch",
    "UpdateSpec",
    "Warehouse",
    "WarehouseConfig",
    "WarehouseError",
    "WarehouseRefreshReport",
]
