"""Static analysis of logical expressions: schema, types, provenance.

``analyze(expression, catalog)`` walks an :class:`~repro.algebra.Expression`
bottom-up and infers, per output column, its :class:`~repro.catalog.schema.Column`
(name + dtype), whether it can hold ``None``, which *base* columns it derives
from, and through which operators — without executing anything.  Problems are
reported as :class:`~repro.analysis.diagnostics.Diagnostic` objects (code,
path, hint) instead of the runtime ``SchemaError``/``KeyError`` the engine
would eventually raise three layers down.

The analyzer mirrors the resolution semantics the engine actually uses:

* column references resolve exactly like :meth:`Schema.index_of` — exact
  match first, then a unique suffix match on the unqualified name;
* join conditions resolve in either orientation, like the physical layer's
  ``_join_positions``;
* ``INTEGER`` and ``FLOAT`` are mutually comparable (and joinable), ``DATE``
  additionally compares with ``INTEGER`` (TPC-D stores dates ordinally);
  every other cross-type comparison is flagged.

Column provenance — which stored base columns an output column is derived
from, and whether it is directly stored or recomputed (aggregates) — is the
machinery Litwin-style partial materialization needs to pick a stored column
subset; it is exposed through :func:`provenance` and
``Warehouse.provenance``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
)
from repro.analysis.diagnostics import Diagnostic, errors
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Schema

__all__ = [
    "ColumnInfo",
    "ColumnProvenance",
    "AnalysisResult",
    "analyze",
    "provenance",
    "structural_diagnostics",
    "compatible_types",
]

#: Types that participate in arithmetic aggregation and compare freely.
_NUMERIC = frozenset({ColumnType.INTEGER, ColumnType.FLOAT})


def compatible_types(a: Optional[ColumnType], b: Optional[ColumnType]) -> bool:
    """Whether two dtypes may be compared / equi-joined.

    Unknown types (``None`` — e.g. a ``None`` literal) are compatible with
    everything: the analyzer only flags what it can prove wrong.
    """
    if a is None or b is None or a is b:
        return True
    if a in _NUMERIC and b in _NUMERIC:
        return True
    # TPC-D stores dates as ordinal integers; DATE columns compare with them.
    if {a, b} == {ColumnType.DATE, ColumnType.INTEGER}:
        return True
    return False


def _literal_type(value: object) -> Optional[ColumnType]:
    """The :class:`ColumnType` a Python literal carries (None if unknown)."""
    if isinstance(value, bool):  # bool is an int subclass — test it first
        return ColumnType.BOOLEAN
    if isinstance(value, int):
        return ColumnType.INTEGER
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.STRING
    return None


@dataclass(frozen=True)
class ColumnInfo:
    """Everything the analyzer knows about one output column."""

    #: The column as the engine will see it (name + dtype).
    column: Column
    #: Whether the column can hold ``None`` at this point of the tree.
    nullable: bool = False
    #: Base columns (``relation.column``) this column derives from.
    sources: FrozenSet[str] = frozenset()
    #: Operator kinds the derivation crosses (``select``, ``join``, ...).
    via: FrozenSet[str] = frozenset()
    #: Whether the value is stored verbatim in some base relation (False for
    #: aggregate outputs, which must be recomputed from their sources).
    stored: bool = True

    @property
    def name(self) -> str:
        return self.column.name

    @property
    def ctype(self) -> ColumnType:
        return self.column.ctype

    def through(self, operator: str) -> "ColumnInfo":
        """The same column seen through one more operator."""
        return ColumnInfo(
            self.column, self.nullable, self.sources, self.via | {operator}, self.stored
        )


@dataclass(frozen=True)
class ColumnProvenance:
    """Public provenance record for one output column of a view."""

    name: str
    ctype: str
    nullable: bool
    #: Sorted base columns (``relation.column``) the value derives from.
    sources: Tuple[str, ...]
    #: Sorted operator kinds the derivation crosses.
    operators: Tuple[str, ...]
    #: Whether the value is stored verbatim in a base relation (a stored
    #: column can be served from the base table; a derived one — aggregate
    #: outputs — must be recomputed from its sources).
    stored: bool


@dataclass
class AnalysisResult:
    """Outcome of :func:`analyze`: diagnostics plus the inferred columns."""

    diagnostics: List[Diagnostic]
    #: Per-output-column inference; ``None`` when the expression was too
    #: broken to type (e.g. its base relation does not exist).
    columns: Optional[List[ColumnInfo]] = None

    @property
    def ok(self) -> bool:
        """Whether no error-severity diagnostic was produced."""
        return not errors(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return errors(self.diagnostics)

    @property
    def schema(self) -> Optional[Schema]:
        """The inferred output schema (None when inference failed)."""
        if self.columns is None:
            return None
        return Schema(tuple(info.column for info in self.columns))

    @property
    def provenance(self) -> Dict[str, ColumnProvenance]:
        """Output column name → provenance record (empty if untypeable)."""
        records: Dict[str, ColumnProvenance] = {}
        for info in self.columns or []:
            records[info.column.unqualified] = ColumnProvenance(
                name=info.column.unqualified,
                ctype=info.ctype.value,
                nullable=info.nullable,
                sources=tuple(sorted(info.sources)),
                operators=tuple(sorted(info.via)),
                stored=info.stored,
            )
        return records


# ---------------------------------------------------------------- resolution

def _resolve(
    infos: Sequence[ColumnInfo],
    name: str,
    path: str,
    out: List[Diagnostic],
    *,
    context: str,
    severity: str = "error",
) -> Optional[ColumnInfo]:
    """Resolve ``name`` against inferred columns, mirroring ``Schema.index_of``.

    Emits ``REPRO-A002`` (unknown) or ``REPRO-A003`` (ambiguous) and returns
    ``None`` when resolution fails.
    """
    for info in infos:
        if info.column.name == name:
            return info
    target = name.rsplit(".", 1)[-1]
    matches = [info for info in infos if info.column.unqualified == target]
    if len(matches) == 1:
        return matches[0]
    available = sorted({info.column.unqualified for info in infos})
    if not matches:
        near = difflib.get_close_matches(target, available, n=3, cutoff=0.5)
        hint = (
            f"did you mean {', '.join(repr(n) for n in near)}?"
            if near
            else f"available columns: {', '.join(available[:8])}"
        )
        out.append(
            Diagnostic(
                "REPRO-A002",
                severity,
                f"column {name!r} is not produced by {context}",
                path,
                hint,
            )
        )
    else:
        out.append(
            Diagnostic(
                "REPRO-A003",
                severity,
                f"column {name!r} is ambiguous in {context} "
                f"({len(matches)} candidates)",
                path,
                "qualify the reference as 'relation.column'",
            )
        )
    return None


def _describe_scope(infos: Sequence[ColumnInfo]) -> str:
    names = [info.column.unqualified for info in infos]
    if len(names) > 6:
        return f"schema ({', '.join(names[:6])}, ...)"
    return f"schema ({', '.join(names)})"


# ----------------------------------------------------------------- analyzer

class _Analyzer:
    """One analysis walk; collects diagnostics as it infers columns."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.diagnostics: List[Diagnostic] = []

    # The walk returns None for sub-trees whose schema cannot be inferred
    # (unknown relation, failed projection): downstream checks that would
    # need that schema are skipped rather than piling on follow-up noise.

    def infer(self, node: Expression, path: str) -> Optional[List[ColumnInfo]]:
        if isinstance(node, BaseRelation):
            return self._base(node, path)
        if isinstance(node, Select):
            return self._select(node, path)
        if isinstance(node, Project):
            return self._project(node, path)
        if isinstance(node, Join):
            return self._join(node, path)
        if isinstance(node, Aggregate):
            return self._aggregate(node, path)
        if isinstance(node, UnionAll):
            return self._union(node, path)
        if isinstance(node, Difference):
            return self._difference(node, path)
        if isinstance(node, Distinct):
            child = self.infer(node.child, _extend(path, "distinct"))
            if child is None:
                return None
            return [info.through("distinct") for info in child]
        # Unknown node types are opaque, not an error: the algebra may grow.
        return None

    # ------------------------------------------------------------- operators

    def _base(self, node: BaseRelation, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, node.name)
        if not self.catalog.has_table(node.name):
            known = sorted(table.name for table in self.catalog.tables())
            near = difflib.get_close_matches(node.name, known, n=3, cutoff=0.5)
            hint = (
                f"did you mean {', '.join(repr(n) for n in near)}?"
                if near
                else "load a catalog defining it first"
            )
            self.diagnostics.append(
                Diagnostic(
                    "REPRO-A001",
                    "error",
                    f"base relation {node.name!r} is not in the catalog",
                    here,
                    hint,
                )
            )
            return None
        schema = self.catalog.schema(node.name)
        return [
            ColumnInfo(
                column,
                nullable=False,
                sources=frozenset({f"{node.name}.{column.unqualified}"}),
            )
            for column in schema.columns
        ]

    def _select(self, node: Select, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, "select")
        child = self.infer(node.child, here)
        if child is not None:
            self._check_predicate(node.predicate, child, here)
            return [info.through("select") for info in child]
        return None

    def _project(self, node: Project, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, "project")
        child = self.infer(node.child, here)
        if child is None:
            return None
        out: List[ColumnInfo] = []
        ok = True
        for name in node.columns:
            info = _resolve(
                child, name, here, self.diagnostics,
                context=_describe_scope(child),
            )
            if info is None:
                ok = False
                continue
            out.append(info.through("project"))
        return out if ok else None

    def _join(self, node: Join, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, "join")
        left = self.infer(node.left, here)
        right = self.infer(node.right, here)
        if left is not None and right is not None:
            self._check_join_conditions(node.conditions, left, right, here)
            combined = [info.through("join") for info in left + right]
            self._check_predicate(node.residual, combined, here)
            return combined
        return None

    def _check_join_conditions(
        self,
        conditions: Sequence[Tuple[str, str]],
        left: List[ColumnInfo],
        right: List[ColumnInfo],
        path: str,
    ) -> None:
        for a, b in conditions:
            # Mirror the engine's _join_positions: written orientation first,
            # then swapped; complain only when neither binds.
            probe: List[Diagnostic] = []
            la = _resolve(left, a, path, probe, context="the left input")
            rb = _resolve(right, b, path, probe, context="the right input")
            if la is None or rb is None:
                probe = []
                lb = _resolve(left, b, path, probe, context="the left input")
                ra = _resolve(right, a, path, probe, context="the right input")
                if lb is not None and ra is not None:
                    la, rb = lb, ra
                else:
                    self.diagnostics.append(
                        Diagnostic(
                            "REPRO-A002",
                            "error",
                            f"join condition {a!r}={b!r} binds in neither "
                            f"orientation ({_describe_scope(left)} vs "
                            f"{_describe_scope(right)})",
                            path,
                            "name one column from each join input",
                        )
                    )
                    continue
            if not compatible_types(la.ctype, rb.ctype):
                self.diagnostics.append(
                    Diagnostic(
                        "REPRO-A005",
                        "error",
                        f"join condition {a!r}={b!r} compares "
                        f"{la.ctype.value} with {rb.ctype.value}",
                        path,
                        "join keys must have comparable types "
                        "(integer/float interoperate; strings only match strings)",
                    )
                )

    def _aggregate(self, node: Aggregate, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, "aggregate")
        child = self.infer(node.child, here)
        if child is None:
            return None
        out: List[ColumnInfo] = []
        ok = True
        for group in node.group_by:
            info = _resolve(
                child, group, here, self.diagnostics,
                context=_describe_scope(child),
            )
            if info is None:
                ok = False
                continue
            out.append(info.through("aggregate"))
        seen_names = {info.column.unqualified for info in out}
        for spec in node.aggregates:
            sources: FrozenSet[str] = frozenset()
            nullable = False
            if spec.column is not None:
                info = _resolve(
                    child, spec.column, here, self.diagnostics,
                    context=_describe_scope(child),
                )
                if info is None:
                    ok = False
                else:
                    sources = info.sources
                    nullable = info.nullable
                    if (
                        spec.func in (AggregateFunc.SUM, AggregateFunc.AVG)
                        and info.ctype not in _NUMERIC
                    ):
                        self.diagnostics.append(
                            Diagnostic(
                                "REPRO-A006",
                                "error",
                                f"{spec.func.value}({spec.column}) aggregates a "
                                f"{info.ctype.value} column",
                                here,
                                "sum/avg need an integer or float column; "
                                "use count/min/max for other types",
                            )
                        )
            alias = spec.alias.rsplit(".", 1)[-1]
            if alias in seen_names:
                self.diagnostics.append(
                    Diagnostic(
                        "REPRO-A009",
                        "error",
                        f"output column {alias!r} is produced more than once",
                        here,
                        "give the aggregate a distinct alias",
                    )
                )
            seen_names.add(alias)
            ctype = (
                ColumnType.INTEGER
                if spec.func is AggregateFunc.COUNT
                else ColumnType.FLOAT
            )
            out.append(
                ColumnInfo(
                    Column(spec.alias, ctype),
                    nullable=nullable,
                    sources=sources,
                    via=frozenset({"aggregate"}),
                    stored=False,
                )
            )
        return out if ok else None

    def _union(self, node: UnionAll, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, "union")
        inferred = [self.infer(child, here) for child in node.inputs]
        known = [cols for cols in inferred if cols is not None]
        if not known:
            return None
        first = known[0]
        for cols in known[1:]:
            self._check_positional(first, cols, here, "REPRO-A007", "union")
        # The union's output schema is its first input's (positional algebra);
        # provenance merges all inputs positionally.
        merged: List[ColumnInfo] = []
        for position, info in enumerate(first):
            sources = info.sources
            nullable = info.nullable
            stored = info.stored
            for cols in known[1:]:
                if position < len(cols):
                    sources |= cols[position].sources
                    nullable = nullable or cols[position].nullable
                    stored = stored and cols[position].stored
            merged.append(
                ColumnInfo(
                    info.column, nullable, sources, info.via | {"union"}, stored
                )
            )
        return merged

    def _difference(self, node: Difference, path: str) -> Optional[List[ColumnInfo]]:
        here = _extend(path, "difference")
        left = self.infer(node.left, here)
        right = self.infer(node.right, here)
        if left is not None and right is not None:
            self._check_positional(left, right, here, "REPRO-A008", "difference")
        if left is None:
            return None
        return [info.through("difference") for info in left]

    def _check_positional(
        self,
        first: List[ColumnInfo],
        other: List[ColumnInfo],
        path: str,
        code: str,
        operation: str,
    ) -> None:
        if len(first) != len(other):
            self.diagnostics.append(
                Diagnostic(
                    code,
                    "error",
                    f"{operation} inputs have different arities "
                    f"({len(first)} vs {len(other)} columns)",
                    path,
                    f"{operation} combines inputs by position; project both "
                    f"sides to the same column list first",
                )
            )
            return
        for position, (a, b) in enumerate(zip(first, other)):
            if not compatible_types(a.ctype, b.ctype):
                self.diagnostics.append(
                    Diagnostic(
                        code,
                        "error",
                        f"{operation} column {position} pairs "
                        f"{a.column.unqualified!r} ({a.ctype.value}) with "
                        f"{b.column.unqualified!r} ({b.ctype.value})",
                        path,
                        "positionally combined columns must have "
                        "comparable types",
                    )
                )

    # ------------------------------------------------------------ predicates

    def _check_predicate(
        self,
        predicate: Optional[Predicate],
        scope: List[ColumnInfo],
        path: str,
    ) -> None:
        """Resolve and type-check every comparison inside a predicate tree."""
        if predicate is None:
            return
        if isinstance(predicate, (And, Or)):
            for part in predicate.parts:
                self._check_predicate(part, scope, path)
            return
        if isinstance(predicate, Not):
            self._check_predicate(predicate.inner, scope, path)
            return
        if isinstance(predicate, Comparison):
            left = self._operand_type(predicate.left, scope, path)
            right = self._operand_type(predicate.right, scope, path)
            if not compatible_types(left, right):
                self.diagnostics.append(
                    Diagnostic(
                        "REPRO-A004",
                        "error",
                        f"comparison {predicate.canonical()} compares "
                        f"{left.value} with {right.value}",
                        path,
                        "compare columns with literals of the same type "
                        "(integer/float interoperate)",
                    )
                )

    def _operand_type(
        self, operand: Predicate, scope: List[ColumnInfo], path: str
    ) -> Optional[ColumnType]:
        if isinstance(operand, ColumnRef):
            info = _resolve(
                scope, operand.name, path, self.diagnostics,
                context=_describe_scope(scope),
            )
            return info.ctype if info is not None else None
        if isinstance(operand, Literal):
            return _literal_type(operand.value)
        return None


def _extend(path: str, label: str) -> str:
    return f"{path}/{label}" if path else label


# -------------------------------------------------------------- entry points

def analyze(expression: Expression, catalog: Catalog) -> AnalysisResult:
    """Statically analyze ``expression`` against ``catalog``.

    Returns every diagnostic found (errors and warnings) plus the inferred
    output columns when the expression is typeable.  Never raises on a bad
    expression — the point is to replace runtime stack traces with
    structured findings.
    """
    analyzer = _Analyzer(catalog)
    columns = analyzer.infer(expression, "")
    return AnalysisResult(analyzer.diagnostics, columns)


def provenance(expression: Expression, catalog: Catalog) -> Dict[str, ColumnProvenance]:
    """Column provenance of ``expression``'s output (name → record).

    The record says which base columns each output column derives from,
    through which operators, and whether it is stored verbatim in a base
    relation or must be recomputed (aggregate outputs) — the inputs a
    partial-materialization optimizer needs to pick a stored column subset.
    """
    return analyze(expression, catalog).provenance


def structural_diagnostics(expression: Expression) -> List[Diagnostic]:
    """Catalog-free checks usable at :meth:`Q.build` time.

    Without a catalog the base-relation schemas are unknown, but aggregate
    shapes are self-describing: duplicate output aliases and projections
    over an aggregate that reference columns the aggregate does not produce
    are detectable from the expression alone.
    """
    out: List[Diagnostic] = []

    def walk(node: Expression, path: str) -> None:
        if isinstance(node, Aggregate):
            here = _extend(path, "aggregate")
            produced = [g.rsplit(".", 1)[-1] for g in node.group_by]
            for spec in node.aggregates:
                alias = spec.alias.rsplit(".", 1)[-1]
                if alias in produced:
                    out.append(
                        Diagnostic(
                            "REPRO-A009",
                            "error",
                            f"output column {alias!r} is produced more than once",
                            here,
                            "give the aggregate a distinct alias",
                        )
                    )
                produced.append(alias)
        if isinstance(node, Project) and isinstance(node.child, Aggregate):
            here = _extend(path, "project")
            aggregate = node.child
            produced = {g.rsplit(".", 1)[-1] for g in aggregate.group_by}
            produced |= {s.alias.rsplit(".", 1)[-1] for s in aggregate.aggregates}
            for name in node.columns:
                if name.rsplit(".", 1)[-1] not in produced:
                    out.append(
                        Diagnostic(
                            "REPRO-A002",
                            "error",
                            f"column {name!r} is not produced by the "
                            f"aggregate below (outputs: "
                            f"{', '.join(sorted(produced))})",
                            here,
                            "project only group-by columns and aggregate "
                            "aliases",
                        )
                    )
        for index, child in enumerate(node.children()):
            label = type(node).__name__.lower()
            walk(child, _extend(path, f"{label}[{index}]" if index else label))

    walk(expression, "")
    return out
