"""Static analysis: expression type checking and plan verification.

Two of the three static passes live here (the third, the repo invariant
linter, is ``tools/lint_invariants.py`` — it lints this repository rather
than user queries, but shares the ``REPRO-Lxxx`` code namespace):

* :mod:`repro.analysis.typecheck` — schema/dtype/nullability inference and
  column provenance over :class:`~repro.algebra.expressions.Expression`
  trees, emitting ``REPRO-Axxx`` diagnostics;
* :mod:`repro.analysis.planlint` — pre-execution verification of compiled
  plans, update rounds, and MQO temporary ordering, emitting
  ``REPRO-Pxxx`` diagnostics.

Both passes report through :class:`~repro.analysis.diagnostics.Diagnostic`
and never raise on bad input — callers decide the failure policy.
"""

from repro.analysis.diagnostics import (
    CODES,
    SEVERITIES,
    Diagnostic,
    errors,
    has_errors,
    render_diagnostics,
    warnings,
)
from repro.analysis.planlint import (
    render_verification,
    verify_delta_round,
    verify_plan,
    verify_shard_plan,
    verify_temporaries,
)
from repro.analysis.typecheck import (
    AnalysisResult,
    ColumnInfo,
    ColumnProvenance,
    analyze,
    compatible_types,
    provenance,
    structural_diagnostics,
)

__all__ = [
    "CODES",
    "SEVERITIES",
    "Diagnostic",
    "errors",
    "warnings",
    "has_errors",
    "render_diagnostics",
    "AnalysisResult",
    "ColumnInfo",
    "ColumnProvenance",
    "analyze",
    "compatible_types",
    "provenance",
    "structural_diagnostics",
    "verify_plan",
    "verify_delta_round",
    "verify_shard_plan",
    "verify_temporaries",
    "render_verification",
]
