"""Pre-execution verification of physical plans and differential rules.

``verify_plan`` walks an optimizer-extracted
:class:`~repro.optimizer.plans.PlanNode` tree *before* it is compiled and
run, checking that every step is actually executable over what its inputs
produce:

* projection / selection / group-by columns resolve against the input
  schema the plan really builds (``REPRO-P001`` — the "mutated payload"
  fault);
* join conditions bind in some orientation and the bound key columns have
  comparable types (``REPRO-P002``);
* index nested-loop joins point their probe at a stored inner side, and
  that side carries a usable catalog index (``REPRO-P003`` — the "wrong
  join orientation" fault; a missing index is only a warning, because the
  operator degrades to an ad-hoc bucket table);
* set operations combine same-arity inputs (``REPRO-P008``), scans name
  known relations (``REPRO-P009``), reuse leaves are resolvable
  (``REPRO-P006``).

``verify_delta_round`` checks an update round before it is propagated:
every delta names a relation known to the database (``REPRO-P004``) and
each delta's bags still carry the base relation's schema — a delta logged
against an outdated schema is the classic *stale δ-rule* (``REPRO-P005``).

``verify_temporaries`` checks the MQO shared-temporary materialization
order: a temporary whose expression contains another temporary must come
*after* it (``REPRO-P007``).

Everything here is conservative: a check that would need information the
verifier does not have (an opaque sub-plan, a missing catalog) is skipped,
never guessed — plans for every supported workload must verify with zero
diagnostics.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.algebra.expressions import BaseRelation, Expression, walk
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.typecheck import compatible_types
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema, SchemaError
from repro.optimizer.dag import OperatorKind
from repro.optimizer.plans import PlanNode
from repro.storage.delta import DeltaStore

__all__ = [
    "verify_plan",
    "verify_delta_round",
    "verify_shard_plan",
    "verify_temporaries",
    "render_verification",
]


def _position_of(schema: Schema, name: str) -> Optional[int]:
    """Resolve ``name`` in ``schema`` (None when missing or ambiguous)."""
    try:
        return schema.index_of(name)
    except SchemaError:
        return None


class _PlanVerifier:
    """One verification walk over a plan tree."""

    def __init__(
        self,
        database: Optional[Any],
        catalog: Optional[Catalog],
        materialized: Optional[Any],
    ) -> None:
        self.database = database
        if catalog is None and database is not None:
            catalog = database.catalog
        self.catalog = catalog
        self.materialized = materialized
        self.diagnostics: List[Diagnostic] = []

    def report(
        self, code: str, severity: str, message: str, node: PlanNode, hint: str = ""
    ) -> None:
        self.diagnostics.append(
            Diagnostic(code, severity, message, node.description, hint)
        )

    # The walk returns each step's output schema, or None when it cannot be
    # determined (opaque leaves, failed children): checks needing an unknown
    # schema are skipped so one root cause produces one diagnostic.

    def infer(self, node: PlanNode) -> Optional[Schema]:
        if node.reused:
            return self._reuse(node)
        op = node.operator
        if op is None:
            if isinstance(node.expression, BaseRelation):
                return self._scan_schema(node.expression.name, node)
            # Exotic leaf: compiled as a logical fallback, nothing to verify.
            return self._expression_schema(node.expression)
        if op.kind is OperatorKind.SCAN:
            return self._scan_schema(op.relation, node)
        inputs = [self.infer(child) for child in node.children]
        if op.kind is OperatorKind.SELECT:
            schema = inputs[0] if inputs else None
            if schema is not None and op.predicate is not None:
                self._check_columns(
                    sorted(op.predicate.columns()), schema, node,
                    what="selection predicate",
                )
            return schema
        if op.kind is OperatorKind.PROJECT:
            schema = inputs[0] if inputs else None
            if schema is None:
                return None
            missing = self._check_columns(
                op.columns, schema, node, what="projection"
            )
            if missing:
                return None
            return schema.project(op.columns)
        if op.kind is OperatorKind.JOIN:
            return self._join(node, inputs)
        if op.kind is OperatorKind.AGGREGATE:
            return self._aggregate(node, inputs)
        if op.kind in (OperatorKind.UNION, OperatorKind.DIFFERENCE):
            return self._setop(node, inputs)
        if op.kind is OperatorKind.DISTINCT:
            return inputs[0] if inputs else None
        return None

    # -------------------------------------------------------------- leaves

    def _scan_schema(self, relation: Optional[str], node: PlanNode) -> Optional[Schema]:
        if relation is None:
            return None
        if self.catalog is not None and self.catalog.has_table(relation):
            return self.catalog.schema(relation)
        if self.database is not None:
            if self.database.has_relation(relation):
                return self.database.table(relation).schema
            self.report(
                "REPRO-P009",
                "error",
                f"plan scans relation {relation!r}, which the database does "
                f"not contain",
                node,
                "load the relation or drop the view using it",
            )
            return None
        return None

    def _reuse_candidates(self, node: PlanNode) -> List[str]:
        """Names a reuse step may resolve to, mirroring ``compile_reuse``.

        Registry bindings are keyed by the expression's canonical form and
        win over the plan's DAG-scoped ``view_name`` label.
        """
        candidates: List[str] = []
        if self.materialized is not None and node.expression is not None:
            registered = self.materialized.lookup(node.expression)
            if registered:
                candidates.append(registered)
        if node.view_name:
            candidates.append(node.view_name)
        return candidates

    def _resolve_reuse(self, node: PlanNode) -> Optional[str]:
        """The stored name a reuse step will actually read, if any."""
        if self.database is None:
            return None
        for name in self._reuse_candidates(node):
            if self.database.has_view(name) or self.database.has_relation(name):
                return name
        return None

    def _reuse(self, node: PlanNode) -> Optional[Schema]:
        resolved = self._resolve_reuse(node)
        if self.database is not None and resolved is None:
            severity = "warning" if node.expression is not None else "error"
            hint = (
                "the step can still recompute through its logical expression"
                if node.expression is not None
                else "materialize the result (or re-plan) before executing"
            )
            label = ", ".join(self._reuse_candidates(node)) or node.description
            self.report(
                "REPRO-P006",
                severity,
                f"reused result {label!r} is not materialized",
                node,
                hint,
            )
        if resolved is not None:
            if self.database.has_view(resolved):
                return self.database.view(resolved).schema
            return self.database.table(resolved).schema
        return self._expression_schema(node.expression)

    def _expression_schema(self, expression: Optional[Expression]) -> Optional[Schema]:
        if expression is None or self.catalog is None:
            return None
        try:
            from repro.algebra.schema_derivation import derive_schema

            return derive_schema(expression, self.catalog)
        except Exception:
            return None

    # ----------------------------------------------------------- operators

    def _check_columns(
        self,
        columns: Sequence[str],
        schema: Schema,
        node: PlanNode,
        *,
        what: str,
    ) -> List[str]:
        """Report columns unresolvable in ``schema``; returns the missing ones."""
        missing: List[str] = []
        for name in columns:
            if _position_of(schema, name) is None:
                missing.append(name)
                self.report(
                    "REPRO-P001",
                    "error",
                    f"{what} references {name!r}, which the input does not "
                    f"produce (input columns: "
                    f"{', '.join(c.unqualified for c in schema.columns)})",
                    node,
                    "the plan payload disagrees with its input — replan "
                    "instead of patching plan steps",
                )
        return missing

    def _join(
        self, node: PlanNode, inputs: List[Optional[Schema]]
    ) -> Optional[Schema]:
        left = inputs[0] if len(inputs) > 0 else None
        right = inputs[1] if len(inputs) > 1 else None
        op = node.operator
        bound: List[Tuple[int, int]] = []
        if left is not None and right is not None:
            for a, b in op.conditions:
                la, rb = _position_of(left, a), _position_of(right, b)
                if la is None or rb is None:
                    lb, ra = _position_of(left, b), _position_of(right, a)
                    if lb is not None and ra is not None:
                        la, rb = lb, ra
                    else:
                        self.report(
                            "REPRO-P002",
                            "error",
                            f"join condition {a!r}={b!r} binds in neither "
                            f"orientation (left: "
                            f"{', '.join(c.unqualified for c in left.columns)}"
                            f"; right: "
                            f"{', '.join(c.unqualified for c in right.columns)})",
                            node,
                            "join conditions must name one column from each "
                            "input",
                        )
                        continue
                bound.append((la, rb))
                ltype = left.columns[la].ctype
                rtype = right.columns[rb].ctype
                if not compatible_types(ltype, rtype):
                    self.report(
                        "REPRO-P002",
                        "error",
                        f"join condition {a!r}={b!r} compares "
                        f"{ltype.value} with {rtype.value}",
                        node,
                        "join keys must have comparable types",
                    )
        algorithm = node.algorithm or ""
        if algorithm.startswith("index_nested_loop"):
            self._check_index_join(node, left, right, algorithm)
        if left is not None and right is not None:
            return left.concat(right)
        return None

    def _check_index_join(
        self,
        node: PlanNode,
        left: Optional[Schema],
        right: Optional[Schema],
        algorithm: str,
    ) -> None:
        inner_side = "left" if algorithm.endswith("_left") else "right"
        inner_index = 0 if inner_side == "left" else 1
        if inner_index >= len(node.children):
            return
        inner_node = node.children[inner_index]
        inner_schema = left if inner_side == "left" else right
        if inner_node.reused:
            # Materialized intermediates are stored by construction; if the
            # walk could not resolve one, P006 already covers it.  Their
            # indexes live outside the catalog, so the index check is
            # skipped either way.
            return
        inner_name = self._stored_name(inner_node)
        if inner_name is None:
            self.report(
                "REPRO-P003",
                "error",
                f"index nested-loop join probes its {inner_side} input, "
                f"which is not a stored relation "
                f"({inner_node.description})",
                node,
                "an index lookup needs a stored (or materialized) inner "
                "side — the orientation is wrong or the plan was mutated",
            )
            return
        if inner_schema is None or not node.operator.conditions:
            return
        # Which columns of the inner side the probe will look up.
        inner_columns: List[str] = []
        for a, b in node.operator.conditions:
            for candidate in (a, b):
                if _position_of(inner_schema, candidate) is not None:
                    inner_columns.append(candidate)
                    break
        if not inner_columns:
            self.report(
                "REPRO-P003",
                "error",
                f"index nested-loop join probes {inner_name!r} but no join "
                f"column resolves on that side",
                node,
                "the inner side must supply the join key — flip the "
                "orientation",
            )
            return
        if self.catalog is not None and self.catalog.has_table(inner_name):
            if not self.catalog.has_index_on(inner_name, inner_columns[:1]):
                self.report(
                    "REPRO-P003",
                    "warning",
                    f"index nested-loop join probes {inner_name!r} on "
                    f"{inner_columns[0]!r}, which has no declared index",
                    node,
                    "the operator will build an ad-hoc bucket table; "
                    "declare the index or cost a hash join",
                )

    @staticmethod
    def _stored_name(node: PlanNode) -> Optional[str]:
        if node.operator is not None and node.operator.kind is OperatorKind.SCAN:
            return node.operator.relation
        if isinstance(node.expression, BaseRelation):
            return node.expression.name
        return None

    def _aggregate(
        self, node: PlanNode, inputs: List[Optional[Schema]]
    ) -> Optional[Schema]:
        schema = inputs[0] if inputs else None
        op = node.operator
        if schema is not None:
            wanted = list(op.group_by) + [
                spec.column for spec in op.aggregates if spec.column is not None
            ]
            self._check_columns(wanted, schema, node, what="aggregation")
        return self._expression_schema(node.expression)

    def _setop(
        self, node: PlanNode, inputs: List[Optional[Schema]]
    ) -> Optional[Schema]:
        known = [schema for schema in inputs if schema is not None]
        for schema in known[1:]:
            if len(schema) != len(known[0]):
                self.report(
                    "REPRO-P008",
                    "error",
                    f"set-operation inputs have different arities "
                    f"({len(known[0])} vs {len(schema)} columns)",
                    node,
                    "project both inputs to the same column list",
                )
        return known[0] if known else None


def verify_plan(
    plan: PlanNode,
    database: Optional[Any] = None,
    catalog: Optional[Catalog] = None,
    materialized: Optional[Any] = None,
) -> List[Diagnostic]:
    """Verify a compiled-to-be plan tree; returns every diagnostic found.

    ``database`` enables materialization checks (reuse leaves resolve, scans
    name loaded relations); ``catalog`` enables schema/type checks; the
    ``materialized`` registry lets reuse steps resolve the way
    ``compile_plan`` resolves them.  Passing a database alone is enough —
    its catalog is used.  Checks whose prerequisites are missing are
    skipped, so the verifier never produces false alarms on information it
    does not have.
    """
    verifier = _PlanVerifier(database, catalog, materialized)
    verifier.infer(plan)
    return verifier.diagnostics


# ------------------------------------------------------------- delta rounds

def verify_delta_round(
    deltas: DeltaStore,
    database: Any,
    views: Optional[Any] = None,
) -> List[Diagnostic]:
    """Verify one update round before any delta is propagated.

    * every delta's relation must exist in the database (``REPRO-P004``) —
      a δ-rule over a relation outside the round's universe can never be
      applied;
    * each delta's insert/delete bags must carry the base relation's schema
      (``REPRO-P005``) — a mismatch means the delta was logged against an
      outdated definition (the *stale δ-rule* fault) and would corrupt the
      base table silently;
    * with ``views`` given (name → expression mapping), updated relations no
      registered view depends on are flagged as warnings: propagating them
      is legal but does nothing.
    """
    out: List[Diagnostic] = []
    depended: Optional[set] = None
    if views:
        from repro.algebra.expressions import base_relations

        depended = set()
        for expression in views.values():
            depended |= base_relations(expression)
    for delta in deltas:
        if not database.has_relation(delta.relation):
            out.append(
                Diagnostic(
                    "REPRO-P004",
                    "error",
                    f"update round carries a delta for {delta.relation!r}, "
                    f"which is not a loaded relation",
                    f"δ{delta.relation}",
                    "deltas must target relations in the update round's "
                    "universe — regenerate the batch",
                )
            )
            continue
        base = database.table(delta.relation).schema
        for label, bag in (("δ+", delta.inserts), ("δ-", delta.deletes)):
            if not len(bag):
                continue
            names = tuple(c.unqualified for c in bag.schema.columns)
            base_names = tuple(c.unqualified for c in base.columns)
            if names != base_names:
                out.append(
                    Diagnostic(
                        "REPRO-P005",
                        "error",
                        f"{label}{delta.relation} schema {list(names)} "
                        f"disagrees with the base relation's "
                        f"{list(base_names)}",
                        f"{label}{delta.relation}",
                        "the delta was logged against a stale schema — "
                        "regenerate it from the current definition",
                    )
                )
        if depended is not None and delta.relation not in depended and not delta.is_empty:
            out.append(
                Diagnostic(
                    "REPRO-P004",
                    "warning",
                    f"update round touches {delta.relation!r}, which no "
                    f"registered view depends on",
                    f"δ{delta.relation}",
                    "the delta applies to the base table but refreshes "
                    "nothing",
                )
            )
    return out


# -------------------------------------------------------- MQO temporaries

def verify_temporaries(
    ordered: Sequence[Tuple[str, Expression]],
) -> List[Diagnostic]:
    """Verify a shared-temporary materialization order is topological.

    ``ordered`` is the (name, expression) sequence in intended
    materialization order.  A temporary whose expression *contains* another
    temporary's expression as a sub-expression must be materialized after
    it — otherwise the nested shared result is recomputed instead of
    reused (or, under strict execution, the plan fails to resolve).
    """
    out: List[Diagnostic] = []
    canonicals = [expression.canonical() for _, expression in ordered]
    subtrees = [
        {node.canonical() for node in walk(expression)}
        for _, expression in ordered
    ]
    for i, (name, _) in enumerate(ordered):
        for j in range(i + 1, len(ordered)):
            if canonicals[j] in subtrees[i]:
                out.append(
                    Diagnostic(
                        "REPRO-P007",
                        "error",
                        f"temporary {name!r} contains temporary "
                        f"{ordered[j][0]!r} but is materialized first",
                        f"{name} -> {ordered[j][0]}",
                        "materialize nested shared results before the "
                        "results that contain them",
                    )
                )
    return out


# ----------------------------------------------------------- shard plans

def verify_shard_plan(
    plan: Any,
    spec: Any,
    database: Optional[Any] = None,
) -> List[Diagnostic]:
    """Verify a :class:`~repro.parallel.ShardPlan` against its shard spec.

    * the merge strategy must agree with the expression's shape
      (``REPRO-P010``): ``concat`` plans must not sit under an aggregate,
      ``reaggregate`` is only exact for COUNT/MIN/MAX partials,
      ``aggregate-input`` plans must ship the aggregate's child, and a
      ``serial`` plan must not carry a shard expression;
    * when two or more sharded relations appear, they must be connected
      through equi-joins on their partition keys (``REPRO-P011``) —
      otherwise the "shard-local" join would silently drop cross-shard
      matches;
    * with a ``database``, every sharded relation must exist and carry its
      partition-key column (``REPRO-P012``).
    """
    from repro.algebra.expressions import Aggregate, AggregateFunc
    from repro.parallel.shard import (
        MERGE_AGGREGATE_INPUT,
        MERGE_CONCAT,
        MERGE_REAGGREGATE,
        MERGE_SERIAL,
        _co_partitioned,
    )

    out: List[Diagnostic] = []
    expression = plan.expression
    aggregate = expression if isinstance(expression, Aggregate) else None
    path = f"shard-plan[{plan.merge}]"

    def p010(message: str, hint: str) -> None:
        out.append(Diagnostic("REPRO-P010", "error", message, path, hint))

    if plan.merge == MERGE_SERIAL:
        if plan.shard_expression is not None:
            p010(
                "serial shard plan carries a shard expression",
                "serial plans must leave execution to the serial engine",
            )
    elif plan.merge == MERGE_CONCAT:
        if aggregate is not None:
            p010(
                "concat merge under a top-level aggregate would emit one "
                "partial result row per shard",
                "aggregate results need reaggregate or aggregate-input merge",
            )
        if plan.shard_expression is not expression:
            p010(
                "concat plans must execute the full expression per shard",
                "set shard_expression to the expression itself",
            )
    elif plan.merge == MERGE_REAGGREGATE:
        if aggregate is None:
            p010(
                "reaggregate merge without a top-level aggregate",
                "use concat for pure select/project/join results",
            )
        else:
            inexact = sorted(
                agg.func.name
                for agg in aggregate.aggregates
                if agg.func not in (AggregateFunc.COUNT, AggregateFunc.MIN, AggregateFunc.MAX)
            )
            if inexact:
                p010(
                    f"reaggregating {', '.join(inexact)} partials is not exact "
                    f"(float sums do not reassociate)",
                    "merge SUM/AVG at the aggregation input instead",
                )
    elif plan.merge == MERGE_AGGREGATE_INPUT:
        if aggregate is None:
            p010(
                "aggregate-input merge without a top-level aggregate",
                "use concat for pure select/project/join results",
            )
        elif plan.shard_expression is not aggregate.child:
            p010(
                "aggregate-input plans must ship the aggregate's child rows",
                "set shard_expression to the aggregate's child",
            )

    key_map = dict(spec.keys)
    if plan.parallel and len(plan.sharded) > 1:
        body = aggregate.child if aggregate is not None else expression
        if not _co_partitioned(body, plan.sharded, key_map):
            out.append(
                Diagnostic(
                    "REPRO-P011",
                    "error",
                    f"sharded relations {list(plan.sharded)} are not connected "
                    f"through equi-joins on their partition keys",
                    path,
                    "shard-local joins need co-partitioned inputs — fall back "
                    "to serial execution for this expression",
                )
            )
    if database is not None:
        for name in plan.sharded:
            if not database.has_relation(name):
                out.append(
                    Diagnostic(
                        "REPRO-P012",
                        "error",
                        f"sharded relation {name!r} is not a loaded relation",
                        path,
                        "the shard spec must only partition loaded tables",
                    )
                )
                continue
            schema = database.table(name).schema
            key = key_map.get(name, "")
            if _position_of(schema, key) is None:
                out.append(
                    Diagnostic(
                        "REPRO-P012",
                        "error",
                        f"partition key {key!r} does not resolve in "
                        f"{name!r}'s schema",
                        path,
                        "pick a partition key from the relation's columns",
                    )
                )
    return out


def render_verification(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """Explain-friendly rendering of a verification outcome."""
    if not diagnostics:
        return ["verified: no diagnostics"]
    lines = [f"{len(diagnostics)} diagnostic(s):"]
    lines.extend(f"  {d.render()}" for d in diagnostics)
    return lines
