"""Structured diagnostics for the static-analysis passes.

Every static check in :mod:`repro.analysis` — the expression analyzer, the
plan verifier — reports problems as :class:`Diagnostic` objects instead of
raising mid-walk: a diagnostic carries a stable error code, a severity, a
human message, the path to the offending node, and a fix hint.  Callers
decide what to do with them (the :class:`~repro.api.Warehouse` raises a
``WarehouseError`` on analyzer errors; the physical executor raises a
``PhysicalPlanError`` on verifier errors; ``explain`` renders them inline).

Code families
-------------

* ``REPRO-A0xx`` — expression analyzer (:mod:`repro.analysis.typecheck`)
* ``REPRO-P0xx`` — plan verifier (:mod:`repro.analysis.planlint`)
* ``REPRO-L0xx`` — repo invariant linter (``tools/lint_invariants.py``)

The linter lives outside the package (it lints this repository, not user
queries) but shares the code namespace so one table documents everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = [
    "Diagnostic",
    "CODES",
    "SEVERITIES",
    "errors",
    "warnings",
    "has_errors",
    "render_diagnostics",
]

#: Every diagnostic code the static-analysis subsystem can emit, with the
#: one-line meaning documented in ARCHITECTURE.md.  Tests assert codes used
#: at runtime appear here, so the table cannot silently drift.
CODES: Dict[str, str] = {
    # ----------------------------------------------- expression analyzer (A)
    "REPRO-A001": "unknown base relation",
    "REPRO-A002": "unknown column",
    "REPRO-A003": "ambiguous column reference",
    "REPRO-A004": "comparison between incompatible types",
    "REPRO-A005": "join condition over incompatible key types",
    "REPRO-A006": "aggregate requires a numeric input column",
    "REPRO-A007": "union inputs do not line up",
    "REPRO-A008": "difference inputs do not line up",
    "REPRO-A009": "duplicate output column name",
    # --------------------------------------------------- plan verifier (P)
    "REPRO-P001": "plan step references a column its input does not produce",
    "REPRO-P002": "join condition unresolvable or over incompatible types",
    "REPRO-P003": "index nested-loop join misdirected (inner side/index)",
    "REPRO-P004": "delta references a relation outside the update round",
    "REPRO-P005": "stale delta rule (delta schema disagrees with its base)",
    "REPRO-P006": "reused result is not materialized",
    "REPRO-P007": "shared temporaries are not topologically ordered",
    "REPRO-P008": "set-operation inputs have different arities",
    "REPRO-P009": "plan scans a relation unknown to the database",
    "REPRO-P010": "shard plan's merge strategy disagrees with its expression",
    "REPRO-P011": "sharded relations are not co-partitioned through their join",
    "REPRO-P012": "shard partition key missing from its relation's schema",
    # ------------------------------------------------ invariant linter (L)
    "REPRO-L001": "numpy imported outside storage/columns.py",
    "REPRO-L002": "wall-clock call outside a sanctioned timing writer",
    "REPRO-L003": "Relation internals mutated outside storage/relation.py",
    "REPRO-L004": "mutable default argument",
    "REPRO-L005": "package __init__ missing __all__",
    "REPRO-L006": "unused module-level import",
    "REPRO-L007": "builtin name shadowed",
    "REPRO-L008": "multiprocessing imported outside src/repro/parallel/",
    "REPRO-L009": "threading imported outside src/repro/serving/ and src/repro/parallel/",
}

#: Diagnostic severities, in increasing order of trouble.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    #: Stable code from :data:`CODES` (``REPRO-A002``, ``REPRO-P001``, ...).
    code: str
    #: ``"error"`` (the expression/plan cannot run correctly) or
    #: ``"warning"`` (suspicious but executable).
    severity: str
    #: Human-readable statement of the problem.
    message: str
    #: Slash-separated path from the root to the offending node
    #: (``"aggregate/select/join"`` for expressions, plan-step descriptions
    #: for plans).  Empty when the finding is global.
    path: str = ""
    #: Actionable fix suggestion, when one exists.
    hint: str = ""

    def render(self) -> str:
        """One-line rendering: ``code [severity] message (at path; hint)``."""
        parts = [f"{self.code} [{self.severity}] {self.message}"]
        if self.path:
            parts.append(f"at {self.path}")
        if self.hint:
            parts.append(f"hint: {self.hint}")
        return " — ".join(parts)


def errors(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset, original order preserved."""
    return [d for d in diagnostics if d.severity == "error"]


def warnings(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The warning-severity subset, original order preserved."""
    return [d for d in diagnostics if d.severity == "warning"]


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    """Whether any diagnostic is an error."""
    return any(d.severity == "error" for d in diagnostics)


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line rendering used by error messages and ``explain`` output."""
    if not diagnostics:
        return "no diagnostics"
    return "\n".join(d.render() for d in diagnostics)
