"""Sharded parallel execution: partitioning, process pool, capacity model.

The serial engine stays the oracle; this package adds a data-parallel path
over it.  :mod:`repro.parallel.shard` partitions base relations by key and
merges per-shard results exactly (bag-identical to serial execution);
:mod:`repro.parallel.pool` runs per-shard physical plans and delta
propagation across worker processes; :mod:`repro.parallel.capacity` predicts
throughput vs. worker count and data size from measured per-unit costs.
"""

from repro.parallel.capacity import (
    CapacityModel,
    CapacityParameters,
    effective_cores,
    fit_error,
)
from repro.parallel.pool import ShardPool, ShardPoolError
from repro.parallel.shard import (
    MERGE_AGGREGATE_INPUT,
    MERGE_CONCAT,
    MERGE_REAGGREGATE,
    MERGE_SERIAL,
    ShardPlan,
    ShardSpec,
    merge_concat,
    merge_shards,
    partition_relation,
    plan_shards,
    shard_database,
)

__all__ = [
    "CapacityModel",
    "CapacityParameters",
    "MERGE_AGGREGATE_INPUT",
    "MERGE_CONCAT",
    "MERGE_REAGGREGATE",
    "MERGE_SERIAL",
    "ShardPlan",
    "ShardPool",
    "ShardPoolError",
    "ShardSpec",
    "effective_cores",
    "fit_error",
    "merge_concat",
    "merge_shards",
    "partition_relation",
    "plan_shards",
    "shard_database",
]
