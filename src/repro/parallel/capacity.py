"""Capacity model: predicted throughput vs. worker count and data size.

The model follows the config-driven measured-vs-predicted template of
resource modeling: a handful of *measured* per-unit costs (IPC roundtrip,
per-row result shipping, partition and merge kernel costs — calibrated
against the live pool and store kernels, not guessed) combine with a
*predicted* compute term to give the expected wall-clock of a sharded
execution:

    T(n) = T_serial / min(n, cores)            -- compute, core-bound
         + n · roundtrip                       -- dispatch/collect IPC
         + merged_rows · (ship + merge)        -- result shipping + merge
         + partitioned_rows · partition        -- delta partitioning

``cores`` is the *effective* core count (the scheduler affinity mask, not
the nominal CPU count), so the model predicts the honest flat curve on a
single-core host and the near-linear ramp on a multi-core one; throughput
is the reciprocal.  The benchmark (``benchmarks/test_parallel_scale.py``)
records the measured and predicted curves side by side and gates on their
relative fit.

This module is on the repo's timing allowlist: all ``perf_counter`` reads
of the parallel layer live here, next to the calibration they feed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.parallel.shard import ShardSpec, merge_concat, partition_relation
from repro.storage.relation import Relation

__all__ = ["CapacityModel", "CapacityParameters", "effective_cores", "fit_error"]


def effective_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass(frozen=True)
class CapacityParameters:
    """The model's per-unit costs — measured, except for ``cores``."""

    cores: int
    #: Seconds for one empty command roundtrip to one worker.
    roundtrip_seconds: float
    #: Seconds per row of relation payload crossing the pipe (one way).
    row_ship_seconds: float
    #: Seconds per row of the columnar concat merge kernel.
    merge_seconds_per_row: float
    #: Seconds per row of the partition kernel (shard-id + scatter).
    partition_seconds_per_row: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready view (all fields)."""
        return {
            "cores": self.cores,
            "roundtrip_seconds": self.roundtrip_seconds,
            "row_ship_seconds": self.row_ship_seconds,
            "merge_seconds_per_row": self.merge_seconds_per_row,
            "partition_seconds_per_row": self.partition_seconds_per_row,
        }


@dataclass
class CapacityModel:
    """Predicts sharded-execution wall-clock and throughput."""

    parameters: CapacityParameters
    #: Predicted points recorded by :meth:`predict_seconds`, for curve dumps.
    history: List[Dict[str, float]] = field(default_factory=list)

    @classmethod
    def calibrate(
        cls,
        pool,
        sample: Relation,
        key_column: Optional[str] = None,
        repeats: int = 3,
        cores: Optional[int] = None,
    ) -> "CapacityModel":
        """Measure the per-unit costs against a live pool and a sample bag.

        ``sample`` should be a few thousand rows of a real base relation;
        ``key_column`` defaults to its first column.  Costs are medians over
        ``repeats`` runs, divided down to per-row / per-roundtrip units.
        ``pool`` only needs ``ping(payload)`` and ``workers`` — inline pools
        calibrate too (their roundtrip cost is just much smaller).
        """
        workers = max(1, pool.workers)

        def timed(action) -> float:
            samples = []
            for _ in range(repeats):
                start = perf_counter()
                action()
                samples.append(perf_counter() - start)
            return sorted(samples)[len(samples) // 2]

        empty_ping = timed(lambda: pool.ping(None))
        payload_ping = timed(lambda: pool.ping(sample))
        roundtrip = empty_ping / workers
        shipped_rows = 2 * len(sample) * workers  # echoed: out and back, per worker
        row_ship = max(0.0, payload_ping - empty_ping) / max(1, shipped_rows)

        column = key_column if key_column is not None else sample.schema.names[0]
        spec = ShardSpec(
            ((sample.name or "__calibration__", column),), workers=workers
        )
        parts_holder: List[List[Relation]] = []

        def run_partition() -> None:
            parts_holder.append(partition_relation(sample, column, spec))

        partition_seconds = timed(run_partition)
        parts = parts_holder[-1]
        merge_seconds = timed(lambda: merge_concat(parts) if len(parts) > 1 else None)
        per_row = max(1, len(sample))
        return cls(
            CapacityParameters(
                cores=cores if cores is not None else effective_cores(),
                roundtrip_seconds=roundtrip,
                row_ship_seconds=row_ship,
                merge_seconds_per_row=merge_seconds / per_row,
                partition_seconds_per_row=partition_seconds / per_row,
            )
        )

    # --------------------------------------------------------------- prediction

    def predict_seconds(
        self,
        serial_seconds: float,
        workers: int,
        merged_rows: int = 0,
        partitioned_rows: int = 0,
        concurrent: bool = True,
    ) -> float:
        """Expected wall-clock of one sharded execution.

        ``serial_seconds`` is the measured single-worker compute time;
        ``concurrent=False`` models the inline executor (workers run
        sequentially, so compute does not scale no matter the core count).
        """
        p = self.parameters
        scale = min(workers, p.cores) if concurrent else 1
        seconds = (
            serial_seconds / max(1, scale)
            + workers * p.roundtrip_seconds
            + merged_rows * (p.row_ship_seconds + p.merge_seconds_per_row)
            + partitioned_rows * p.partition_seconds_per_row
        )
        self.history.append(
            {
                "workers": workers,
                "serial_seconds": serial_seconds,
                "predicted_seconds": seconds,
            }
        )
        return seconds

    def predict_throughput(
        self,
        serial_seconds: float,
        workers: int,
        merged_rows: int = 0,
        partitioned_rows: int = 0,
        concurrent: bool = True,
    ) -> float:
        """Expected executions per second (reciprocal of the time model)."""
        return 1.0 / max(
            1e-12,
            self.predict_seconds(
                serial_seconds, workers, merged_rows, partitioned_rows, concurrent
            ),
        )

    def curve(
        self,
        serial_seconds: float,
        worker_counts: Sequence[int],
        merged_rows: int = 0,
        partitioned_rows: int = 0,
        concurrent: bool = True,
    ) -> List[Dict[str, float]]:
        """Predicted (workers → seconds, throughput) points for one workload."""
        points = []
        for workers in worker_counts:
            seconds = self.predict_seconds(
                serial_seconds, workers, merged_rows, partitioned_rows, concurrent
            )
            points.append(
                {
                    "workers": workers,
                    "predicted_seconds": seconds,
                    "predicted_throughput": 1.0 / max(1e-12, seconds),
                }
            )
        return points


def fit_error(predicted_seconds: float, measured_seconds: float) -> float:
    """Relative error of one predicted point against its measurement."""
    return abs(predicted_seconds - measured_seconds) / max(1e-12, measured_seconds)
