"""Sharding: partition base relations by key, merge per-shard results.

The parallel engine is data-parallel: every worker holds one horizontal
partition (*shard*) of the sharded base relations plus a full copy of every
other ("broadcast") relation, executes the same plan against its shard, and
the parent merges the per-shard results.  This module owns the three pieces
that make that correct:

* the partition function — a deterministic pure function of the key *value*
  (hash or range), so a base table and a later delta against it always agree
  on where a row lives, keeping co-partitioned joins shard-local;
* the eligibility analysis (:func:`plan_shards`) — which expressions
  distribute over a shard union, and where the merge boundary sits;
* the merge kernels — concatenation for shard-local join results, partial
  group-by re-aggregation for distributive aggregates, and aggregation-input
  merging for SUM/AVG (see below).

Why SUM/AVG merge at the aggregation *input*: the engine's float sums are
``math.fsum`` — correctly rounded and therefore order-independent, but *not*
reassociable: the fsum of per-shard fsums can differ from the fsum of the
whole bag in the last ulp.  Concatenating the pre-aggregate child rows and
aggregating once in the parent reproduces the serial engine's sums bit for
bit, which is what keeps every parallel result bag-identical to the serial
oracle.  COUNT/MIN/MAX partials merge exactly (integer sums, min of mins),
so those re-aggregate without shipping child rows.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    walk,
)
from repro.catalog.schema import Schema
from repro.engine import operators
from repro.engine.database import Database
from repro.storage.columns import NumpyColumnStore, numpy as _np
from repro.storage.relation import Relation

__all__ = [
    "MERGE_AGGREGATE_INPUT",
    "MERGE_CONCAT",
    "MERGE_REAGGREGATE",
    "MERGE_SERIAL",
    "ShardPlan",
    "ShardSpec",
    "merge_concat",
    "merge_shards",
    "partition_relation",
    "plan_shards",
    "shard_database",
]

#: Merge strategies a :class:`ShardPlan` can carry.
MERGE_CONCAT = "concat"
MERGE_REAGGREGATE = "reaggregate"
MERGE_AGGREGATE_INPUT = "aggregate-input"
MERGE_SERIAL = "serial"

#: Aggregate functions whose partial states merge exactly: COUNT partials
#: sum (integers), MIN/MAX partials reduce by min/max.  SUM/AVG are excluded
#: on purpose — float fsum does not reassociate (module docstring).
_EXACT_PARTIAL_FUNCS = frozenset(
    {AggregateFunc.COUNT, AggregateFunc.MIN, AggregateFunc.MAX}
)


def _stable_hash(value: Any) -> int:
    """Process-independent hash (``hash()`` is salted per interpreter)."""
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def _normalized_key(value: Any) -> Any:
    """Collapse numerically equal keys (``1`` vs ``1.0``) to one shard."""
    if type(value) is float and value.is_integer():
        return int(value)
    return value


@dataclass(frozen=True)
class ShardSpec:
    """How base relations are partitioned across workers.

    ``keys`` maps each *sharded* relation to its partition-key column; every
    relation not named here is broadcast (each worker keeps the full copy —
    the small build sides of the workload's joins).  Two relations whose key
    columns are joined by an equi-join are co-partitioned: the same key value
    lands in the same shard on both sides, so the join is shard-local.

    ``mode`` is ``"hash"`` (default) or ``"range"``; range partitioning
    splits the numeric key domain at ``bounds`` (``workers - 1`` ascending
    split points, shared by every sharded relation so co-partitioning is
    preserved).
    """

    keys: Tuple[Tuple[str, str], ...]
    workers: int = 1
    mode: str = "hash"
    bounds: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in ("hash", "range"):
            raise ValueError(f"unknown partition mode {self.mode!r}")
        if self.mode == "range" and len(self.bounds) != self.workers - 1:
            raise ValueError(
                f"range mode needs workers-1={self.workers - 1} bounds, "
                f"got {len(self.bounds)}"
            )

    @property
    def key_map(self) -> Dict[str, str]:
        """``relation → partition-key column`` as a plain mapping."""
        return dict(self.keys)

    @classmethod
    def for_database(cls, database: Database, workers: int, mode: str = "hash") -> "ShardSpec":
        """The default spec for a loaded database.

        TPC-D databases co-partition ``lineitem`` and ``orders`` on the order
        key (their join is the workload's only sharded-sharded join); any
        other schema shards its largest table on that table's first column —
        with a single sharded relation every distributable plan is correct
        regardless of which column partitions it.
        """
        tables = database.table_names()
        keys: Tuple[Tuple[str, str], ...] = ()
        if "lineitem" in tables:
            keys = (("lineitem", "l_orderkey"),)
            if "orders" in tables:
                keys += (("orders", "o_orderkey"),)
        elif tables:
            largest = max(tables, key=lambda name: len(database.table(name)))
            schema = database.table(largest).schema
            if len(schema):
                keys = ((largest, schema.names[0]),)
        bounds: Tuple[float, ...] = ()
        if mode == "range" and keys:
            anchor, key_column = max(
                ((name, column) for name, column in keys),
                key=lambda item: len(database.table(item[0])),
            )
            bounds = _quantile_bounds(database.table(anchor), key_column, workers)
        return cls(keys, workers=workers, mode=mode, bounds=bounds)

    # ------------------------------------------------------------ assignment

    def shard_of(self, value: Any) -> int:
        """The shard a key value belongs to — pure function of the value."""
        if value is None:
            return 0
        if self.mode == "range":
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return bisect_right(self.bounds, value)
            return _stable_hash(value) % self.workers
        value = _normalized_key(value)
        if type(value) is int:
            return value % self.workers
        return _stable_hash(value) % self.workers

    def shard_ids(self, relation: Relation, key_column: str) -> Any:
        """Per-row shard assignment (an ``int64`` array on the numpy path)."""
        position = _key_position(relation.schema, key_column)
        store = relation.cached_store()
        if (
            _np is not None
            and isinstance(store, NumpyColumnStore)
            and store.column(position).dtype.kind == "i"
        ):
            column = store.column(position)
            if self.mode == "range":
                return _np.searchsorted(
                    _np.asarray(self.bounds, dtype=_np.float64), column, side="right"
                )
            return column % self.workers
        values = (
            store.column_native(position)
            if store is not None
            else relation.column_at(position)
        )
        return [self.shard_of(v) for v in values]


def _quantile_bounds(relation: Relation, key_column: str, workers: int) -> Tuple[float, ...]:
    """Equi-depth split points of a relation's key column (range mode)."""
    position = _key_position(relation.schema, key_column)
    values = sorted(
        float(v)
        for v in relation.column_at(position)
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    )
    if not values:
        return tuple(float(i) for i in range(1, workers))
    return tuple(
        values[min(len(values) - 1, (i * len(values)) // workers)]
        for i in range(1, workers)
    )


def _key_position(schema: Schema, key_column: str) -> int:
    try:
        return schema.index_of(key_column)
    except Exception:
        suffix = key_column.rsplit(".", 1)[-1]
        for i, name in enumerate(schema.names):
            if name.rsplit(".", 1)[-1] == suffix:
                return i
        raise


# ---------------------------------------------------------------- partitioning

def partition_relation(
    relation: Relation, key_column: str, spec: ShardSpec
) -> List[Relation]:
    """Split a relation into ``spec.workers`` shards by key column.

    Store-backed relations partition through the columnar kernels
    (:meth:`ColumnStore.partition`), so shards stay columnar end-to-end;
    every row lands in exactly one shard and the union of all shards is the
    input bag.
    """
    ids = spec.shard_ids(relation, key_column)
    store = relation.cached_store()
    if store is not None:
        return [
            Relation.from_store(relation.schema, part, relation.name)
            for part in store.partition(ids, spec.workers)
        ]
    buckets: List[List[Any]] = [[] for _ in range(spec.workers)]
    for row, shard in zip(relation.rows, ids):
        buckets[shard].append(row)
    return [
        Relation.from_trusted_rows(relation.schema, bucket, relation.name)
        for bucket in buckets
    ]


def shard_of_relation(
    relation: Relation, key_column: str, spec: ShardSpec, shard: int
) -> Relation:
    """One shard of a relation (what a single worker keeps)."""
    ids = spec.shard_ids(relation, key_column)
    store = relation.cached_store()
    if store is not None:
        if _np is not None and isinstance(store, NumpyColumnStore):
            keep = _np.asarray(ids, dtype=_np.int64) == shard
        else:
            keep = [i == shard for i in ids]
        return Relation.from_store(relation.schema, store.mask(keep), relation.name)
    rows = [row for row, i in zip(relation.rows, ids) if i == shard]
    return Relation.from_trusted_rows(relation.schema, rows, relation.name)


def shard_database(database: Database, spec: ShardSpec, shard: int) -> Database:
    """The database one worker executes against.

    Sharded relations are restricted to this worker's partition; broadcast
    relations are shared as-is (relations are immutable — updates replace
    entries in the worker's own table map).  The catalog is copied so worker-
    side statistics refreshes never write into the parent's catalog (the
    inline executor runs workers in-process).  Views and indexes are *not*
    carried: shard-local derived state is recomputed where needed, which is
    cheaper than shipping or splitting it (Litwin's stored/inherited
    relations argument).
    """
    shard_db = Database(database.catalog.copy())
    key_map = spec.key_map
    for name in database.table_names():
        relation = database.table(name)
        if name in key_map:
            relation = shard_of_relation(relation, key_map[name], spec, shard)
        # Private-map assignment on purpose: create_table/load_table would
        # re-measure statistics per table per worker; planning can keep the
        # full-table statistics of the copied catalog.
        shard_db._tables[name] = relation
    return shard_db


# ------------------------------------------------------------------ eligibility

@dataclass(frozen=True)
class ShardPlan:
    """How (and whether) one expression runs across shards.

    ``shard_expression`` is what every worker executes against its shard
    database — the full expression for ``concat``/``reaggregate`` merges,
    the aggregate's child for ``aggregate-input`` (the parent runs the final
    aggregate over the merged child rows), ``None`` when the plan is
    ``serial`` (``reasons`` says why the expression does not distribute).
    """

    expression: Expression
    shard_expression: Optional[Expression]
    sharded: Tuple[str, ...]
    merge: str
    aggregate: Optional[Aggregate] = None
    reasons: Tuple[str, ...] = ()

    @property
    def parallel(self) -> bool:
        """Whether the expression runs across shards at all."""
        return self.merge != MERGE_SERIAL


def plan_shards(expression: Expression, spec: ShardSpec) -> ShardPlan:
    """Decide whether ``expression`` distributes over the shard union.

    An expression is shard-parallelizable when its body (below an optional
    top-level aggregate) is select/project/join over base relations — the
    operators that are linear in each input — and each sharded relation
    appears at most once, with any two sharded relations connected through
    equi-joins on their partition keys (co-partitioning).  Everything else
    (set operations, distinct, nested aggregates, repeated sharded
    relations) falls back to the serial engine, which stays the oracle.
    """
    key_map = spec.key_map
    reasons: List[str] = []
    aggregate = expression if isinstance(expression, Aggregate) else None
    body = aggregate.child if aggregate is not None else expression

    for node in walk(body):
        if isinstance(node, (BaseRelation, Select, Project, Join)):
            continue
        if isinstance(node, Aggregate):
            reasons.append("aggregate below the merge boundary")
        else:
            reasons.append(
                f"{type(node).__name__} does not distribute over a shard union"
            )
    counts = Counter(
        node.name
        for node in walk(body)
        if isinstance(node, BaseRelation) and node.name in key_map
    )
    repeated = sorted(name for name, count in counts.items() if count > 1)
    if repeated:
        reasons.append(
            f"sharded relation(s) {', '.join(repeated)} appear more than once"
        )
    sharded = tuple(sorted(counts))
    if not sharded and not reasons:
        reasons.append("no sharded relation in the expression")
    if len(sharded) > 1 and not reasons and not _co_partitioned(body, sharded, key_map):
        reasons.append("sharded relations are not joined on their partition keys")
    if reasons:
        unique = tuple(dict.fromkeys(reasons))
        return ShardPlan(expression, None, sharded, MERGE_SERIAL, aggregate, unique)
    if aggregate is None:
        return ShardPlan(expression, expression, sharded, MERGE_CONCAT)
    funcs = {agg.func for agg in aggregate.aggregates}
    if funcs <= _EXACT_PARTIAL_FUNCS:
        return ShardPlan(expression, expression, sharded, MERGE_REAGGREGATE, aggregate)
    return ShardPlan(
        expression, aggregate.child, sharded, MERGE_AGGREGATE_INPUT, aggregate
    )


def _co_partitioned(
    body: Expression, sharded: Sequence[str], key_map: Mapping[str, str]
) -> bool:
    """Whether all sharded relations connect through partition-key joins."""
    owner: Dict[str, Optional[str]] = {}
    for name in sharded:
        suffix = key_map[name].rsplit(".", 1)[-1]
        owner[suffix] = name if suffix not in owner else None  # ambiguous → None
    parent = {name: name for name in sharded}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for node in walk(body):
        if not isinstance(node, Join):
            continue
        for a, b in node.conditions:
            left = owner.get(a.rsplit(".", 1)[-1])
            right = owner.get(b.rsplit(".", 1)[-1])
            if left and right and left != right:
                parent[find(left)] = find(right)
    roots = {find(name) for name in sharded}
    return len(roots) == 1


# ----------------------------------------------------------------- merge kernels

def merge_concat(parts: Sequence[Relation]) -> Relation:
    """Bag union of per-shard results (shard-local join/select/project).

    Store-backed parts of one backend merge through the columnar
    ``concat_many`` kernel; anything else falls back to row concatenation.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("merge_concat needs at least one part")
    if len(parts) == 1:
        return parts[0]
    schema = parts[0].schema
    stores = [part.cached_store() for part in parts]
    if all(store is not None for store in stores) and len(
        {type(store) for store in stores}
    ) == 1:
        return Relation.from_store(schema, type(stores[0]).concat_many(stores))
    rows = [row for part in parts for row in part.rows]
    return Relation.from_trusted_rows(schema, rows)


def _merge_reaggregate(parts: Sequence[Relation], aggregate: Aggregate) -> Relation:
    """Re-aggregate partial group-by states (COUNT/MIN/MAX partials).

    Groups a shard never saw are simply absent from its partial state, so
    the merged group set is the union and vanished groups never resurface;
    COUNT partials merge by integer summation, MIN/MAX by min/max over the
    non-NULL partials — all exact, hence bag-identical to the serial engine.
    """
    merged = merge_concat(parts)
    schema = parts[0].schema
    group_names = list(schema.names[: len(aggregate.group_by)])
    specs = [
        AggregateSpec(
            AggregateFunc.SUM if agg.func is AggregateFunc.COUNT else agg.func,
            agg.alias,
            agg.alias,
        )
        for agg in aggregate.aggregates
    ]
    result = operators.aggregate_batch(merged, group_names, specs)
    # Re-wrap with the partial (= serial output) schema: the COUNT→SUM
    # rewrite must not retype the count column.
    store = result.cached_store()
    if store is not None:
        return Relation.from_store(schema, store)
    return Relation.from_trusted_rows(schema, result.rows)


def _merge_aggregate_input(parts: Sequence[Relation], aggregate: Aggregate) -> Relation:
    """Merge at the aggregation input: concat child rows, aggregate once.

    This is the SUM/AVG merge boundary — ``math.fsum`` is order-independent
    but not reassociable, so the parent aggregates the full merged child bag
    exactly as the serial engine would (module docstring).
    """
    merged = merge_concat(parts)
    return operators.aggregate_batch(
        merged, list(aggregate.group_by), list(aggregate.aggregates)
    )


def merge_shards(plan: ShardPlan, parts: Sequence[Relation]) -> Relation:
    """Merge per-shard results according to the plan's merge strategy."""
    if plan.merge == MERGE_CONCAT:
        return merge_concat(parts)
    if plan.merge == MERGE_REAGGREGATE:
        assert plan.aggregate is not None
        return _merge_reaggregate(parts, plan.aggregate)
    if plan.merge == MERGE_AGGREGATE_INPUT:
        assert plan.aggregate is not None
        return _merge_aggregate_input(parts, plan.aggregate)
    raise ValueError(f"plan is not parallel (merge={plan.merge!r}): {plan.reasons}")
