"""Process pool running per-shard physical plans and delta propagation.

One worker per shard.  Each worker owns a shard database (its partition of
the sharded relations, full copies of the broadcast ones — see
:func:`repro.parallel.shard.shard_database`), a
:class:`~repro.engine.physical.PhysicalExecutor` over it, a
:class:`~repro.engine.differential.DifferentialEngine` with a worker-lifetime
:class:`~repro.engine.differential.OldValueCache`, and a registry of MQO
temporaries materialized once per shard.  The parent sends commands (pickled
expressions/relations over a duplex pipe), workers reply with per-shard
result relations, and the parent merges them through the plan's merge kernel.

Two executor modes share one worker implementation:

* ``"fork"`` — one ``multiprocessing`` process per shard, started with the
  ``fork`` method so the parent database is inherited copy-on-write instead
  of pickled.  All workers are dispatched before any reply is awaited, so
  shards genuinely execute concurrently.
* ``"inline"`` — the same ``_WorkerState`` objects driven sequentially in
  the parent process.  This is the portability/testing fallback (platforms
  without ``fork``) and is bag-identical to fork mode by construction.

Delta propagation stays exact: per-shard differentials are computed only for
``concat``-merge views (the differential of a linear select/project/join
expression is itself linear, so the per-shard δ bags concat to the serial
δ); aggregate views keep their serial differential in the parent.  Updates
against a sharded relation are partitioned with the same key function as the
base table, so co-partitioning survives every refresh round.
"""

from __future__ import annotations

import gc
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import Expression
from repro.engine.database import Database
from repro.engine.differential import (
    DifferentialEngine,
    ExpressionDelta,
    OldValueCache,
    differentiate,
)
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.parallel.shard import (
    MERGE_CONCAT,
    ShardPlan,
    ShardSpec,
    merge_concat,
    merge_shards,
    partition_relation,
    plan_shards,
)
from repro.storage.delta import DeltaKind
from repro.storage.relation import Relation

__all__ = ["ShardPool", "ShardPoolError"]


class ShardPoolError(RuntimeError):
    """A worker failed; carries the worker's traceback text."""


class _WorkerState:
    """Everything one shard worker owns; shared by fork and inline modes."""

    def __init__(
        self, database: Database, spec: ShardSpec, shard: int, use_physical: bool
    ) -> None:
        from repro.parallel.shard import shard_database

        self.database = shard_database(database, spec, shard)
        self.physical = None
        self.engine: Optional[DifferentialEngine] = None
        if use_physical:
            from repro.engine.physical import PhysicalExecutor

            self.physical = PhysicalExecutor(self.database)
            self.engine = DifferentialEngine(self.database, physical=self.physical)
        self.registry = MaterializedRegistry()
        self.temporaries: Dict[str, Expression] = {}
        self.cache = OldValueCache()

    # ---------------------------------------------------------------- commands

    def handle(self, message: Tuple[Any, ...]) -> Any:
        command = message[0]
        if command == "ping":
            return message[1]
        if command == "eval":
            return [self._evaluate(expression) for _key, expression in message[1]]
        if command == "temporaries":
            for name, expression in message[1]:
                if not self.database.has_view(name):
                    self.database.materialize_view(name, self._evaluate(expression))
                self.registry.register(expression, name)
                self.temporaries[name] = expression
            return None
        if command == "drop_temporaries":
            names = message[1] if message[1] is not None else list(self.temporaries)
            for name in names:
                expression = self.temporaries.pop(name, None)
                if expression is not None:
                    self.registry.unregister(expression)
                if self.database.has_view(name):
                    self.database.drop_view(name)
            return None
        if command == "differentials":
            _, items, relation, kind, delta_rows = message
            replies = []
            for _name, expression in items:
                change = self._differentiate(expression, relation, kind, delta_rows)
                replies.append((change.inserts, change.deletes))
            return replies
        if command == "apply":
            _, relation, kind, delta_rows, stale_temporaries = message
            self.database.apply_update(relation, kind, delta_rows)
            self.handle(("drop_temporaries", list(stale_temporaries)))
            self.cache.advance_round(relation)
            return None
        raise ValueError(f"unknown shard-pool command {command!r}")

    def _evaluate(self, expression: Expression) -> Relation:
        if self.physical is not None:
            return self.physical.evaluate(expression, self.registry)
        return evaluate(expression, self.database, self.registry)

    def _differentiate(
        self, expression: Expression, relation: str, kind: DeltaKind, delta_rows: Relation
    ) -> ExpressionDelta:
        if self.engine is not None:
            return self.engine.differentiate(
                expression,
                relation,
                kind,
                delta_rows,
                materialized=self.registry,
                cache=self.cache,
            )
        return differentiate(
            expression,
            self.database,
            relation,
            kind,
            delta_rows,
            materialized=self.registry,
        )


def _worker_main(connection: Any, database: Database, spec: ShardSpec, shard: int, use_physical: bool) -> None:
    """Forked worker loop: build the shard state, then serve commands."""
    try:
        state = _WorkerState(database, spec, shard, use_physical)
        # The inherited heap (the parent's full database plus whatever else
        # was live at fork time) is permanent from this worker's point of
        # view.  Freeze it so cyclic-GC passes neither scan those objects nor
        # dirty their headers — GC bookkeeping writes would make the kernel
        # copy the entire copy-on-write heap, one page at a time.
        gc.freeze()
        connection.send(("ok", None))
    except Exception:  # pragma: no cover - construction failures surface in parent
        connection.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            message = connection.recv()
        except EOFError:  # pragma: no cover - parent died
            break
        if message[0] == "close":
            connection.send(("ok", None))
            break
        try:
            connection.send(("ok", state.handle(message)))
        except Exception:
            connection.send(("error", traceback.format_exc()))


class ShardPool:
    """Executes expressions and delta propagation across shard workers.

    ``mode`` is ``"fork"``, ``"inline"``, or ``None`` (fork when the
    platform supports it, inline otherwise).  The pool is lazy about
    nothing: workers are started (and shard databases built) in the
    constructor, so the one-time partition cost is paid once per pool, not
    per query.  Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        database: Database,
        spec: ShardSpec,
        use_physical: bool = True,
        mode: Optional[str] = None,
    ) -> None:
        if mode not in (None, "fork", "inline"):
            raise ValueError(f"mode must be 'fork', 'inline' or None, got {mode!r}")
        if mode is None:
            import multiprocessing

            mode = "fork" if "fork" in multiprocessing.get_all_start_methods() else "inline"
        self.spec = spec
        self.mode = mode
        #: Kept for static shard-plan verification (P010–P012), not execution.
        self._database = database
        self._plans: Dict[str, ShardPlan] = {}
        self._closed = False
        self._processes: List[Any] = []
        self._connections: List[Any] = []
        self._states: List[_WorkerState] = []
        if mode == "fork":
            import multiprocessing

            context = multiprocessing.get_context("fork")
            for shard in range(spec.workers):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_main,
                    args=(child_end, database, spec, shard, use_physical),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._processes.append(process)
                self._connections.append(parent_end)
            # Wait for every worker to finish building its shard database.
            for shard, connection in enumerate(self._connections):
                status, payload = connection.recv()
                if status != "ok":
                    self.close()
                    raise ShardPoolError(f"shard {shard} failed to start:\n{payload}")
        else:
            self._states = [
                _WorkerState(database, spec, shard, use_physical)
                for shard in range(spec.workers)
            ]

    # ------------------------------------------------------------------ plumbing

    @property
    def workers(self) -> int:
        """Number of shard workers."""
        return self.spec.workers

    def plan(self, expression: Expression) -> ShardPlan:
        """The (memoized, statically verified) shard plan for an expression.

        Every fresh plan runs through the static shard-plan verifier
        (``REPRO-P010``/``P011``/``P012``) before anything is dispatched —
        a rejected plan signals a planner defect, so it raises instead of
        silently falling back.
        """
        key = expression.canonical()
        plan = self._plans.get(key)
        if plan is None:
            plan = plan_shards(expression, self.spec)
            from repro.analysis.diagnostics import has_errors, render_diagnostics
            from repro.analysis.planlint import verify_shard_plan

            diagnostics = verify_shard_plan(plan, self.spec, self._database)
            if has_errors(diagnostics):
                raise ShardPoolError(
                    "shard plan failed static verification:\n"
                    + render_diagnostics(diagnostics)
                )
            self._plans[key] = plan
        return plan

    def _request_all(self, message: Tuple[Any, ...]) -> List[Any]:
        """Send one command to every worker, collect every reply in order.

        Fork mode dispatches to all workers before awaiting any reply —
        that is where the shard concurrency comes from.
        """
        return self._request_each([message] * self.workers)

    def _request_each(self, messages: Sequence[Tuple[Any, ...]]) -> List[Any]:
        if self._closed:
            raise ShardPoolError("pool is closed")
        if self.mode == "inline":
            return [state.handle(message) for state, message in zip(self._states, messages)]
        for connection, message in zip(self._connections, messages):
            connection.send(message)
        replies: List[Any] = []
        for shard, connection in enumerate(self._connections):
            status, payload = connection.recv()
            if status != "ok":
                raise ShardPoolError(f"shard {shard} failed:\n{payload}")
            replies.append(payload)
        return replies

    # ----------------------------------------------------------------- execution

    def evaluate_many(
        self,
        items: Sequence[Tuple[str, Expression]],
        temporaries: Sequence[Tuple[str, Expression]] = (),
    ) -> Dict[str, Optional[Relation]]:
        """Evaluate many expressions across shards in one exchange.

        Returns ``key → merged result`` for every shard-parallelizable
        expression and ``key → None`` for the rest — the caller runs those
        through the serial engine (which stays the oracle).  ``temporaries``
        (MQO shared sub-expressions) are materialized once per shard before
        any evaluation, so every shard plan of this batch reuses them.
        """
        plans = {key: self.plan(expression) for key, expression in items}
        results: Dict[str, Optional[Relation]] = {key: None for key, _ in items}
        eligible = [
            (key, plans[key].shard_expression)
            for key, _ in items
            if plans[key].parallel
        ]
        if not eligible:
            return results
        if temporaries:
            self._request_all(("temporaries", list(temporaries)))
        replies = self._request_all(("eval", eligible))
        for index, (key, _) in enumerate(eligible):
            parts = [reply[index] for reply in replies]
            results[key] = merge_shards(plans[key], parts)
        return results

    def evaluate(self, expression: Expression) -> Optional[Relation]:
        """Single-expression convenience over :meth:`evaluate_many`."""
        return self.evaluate_many([("__one__", expression)])["__one__"]

    # ------------------------------------------------------------ refresh rounds

    def differentials(
        self,
        views: Sequence[Tuple[str, Expression]],
        relation: str,
        kind: DeltaKind,
        delta_rows: Relation,
    ) -> Dict[str, Optional[ExpressionDelta]]:
        """Per-shard differentials for one single-relation update round.

        Only ``concat``-merge views qualify (a linear expression's
        differential is linear, so per-shard δ bags concat to the serial δ);
        other views map to ``None`` and keep their serial differential in
        the parent.  The database — parent and workers — must still hold the
        round's *pre-update* state.
        """
        plans = {name: self.plan(expression) for name, expression in views}
        results: Dict[str, Optional[ExpressionDelta]] = {
            name: None for name, _ in views
        }
        eligible = [
            (name, expression)
            for name, expression in views
            if plans[name].merge == MERGE_CONCAT
        ]
        if not eligible:
            return results
        parts = self._delta_parts(relation, delta_rows)
        replies = self._request_each(
            [("differentials", eligible, relation, kind, part) for part in parts]
        )
        for index, (name, _) in enumerate(eligible):
            inserts = merge_concat([reply[index][0] for reply in replies])
            deletes = merge_concat([reply[index][1] for reply in replies])
            results[name] = ExpressionDelta(inserts=inserts, deletes=deletes)
        return results

    def apply_update(
        self,
        relation: str,
        kind: DeltaKind,
        delta_rows: Relation,
        stale_temporaries: Sequence[str] = (),
    ) -> None:
        """Apply one base update to every worker's shard database.

        Deltas against a sharded relation are partitioned with the same key
        function as the base table (co-partitioning survives); deltas
        against broadcast relations are applied in full everywhere.
        ``stale_temporaries`` names per-shard temporaries this update just
        invalidated — workers drop them, mirroring the parent refresher's
        staleness discipline.
        """
        parts = self._delta_parts(relation, delta_rows)
        self._request_each(
            [("apply", relation, kind, part, tuple(stale_temporaries)) for part in parts]
        )

    def materialize_temporaries(self, temporaries: Sequence[Tuple[str, Expression]]) -> None:
        """Materialize MQO temporaries once per shard (idempotent)."""
        if temporaries:
            self._request_all(("temporaries", list(temporaries)))

    def drop_temporaries(self, names: Optional[Sequence[str]] = None) -> None:
        """Drop the named (default: all) per-shard temporaries."""
        self._request_all(("drop_temporaries", list(names) if names is not None else None))

    def _delta_parts(self, relation: str, delta_rows: Relation) -> List[Relation]:
        key = self.spec.key_map.get(relation)
        if key is None:
            return [delta_rows] * self.workers
        return partition_relation(delta_rows, key, self.spec)

    # ---------------------------------------------------------------- lifecycle

    def ping(self, payload: Optional[Relation] = None) -> None:
        """One echo roundtrip per worker (capacity-model IPC calibration)."""
        self._request_all(("ping", payload))

    def close(self) -> None:
        """Shut every worker down; the pool is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                connection.recv()
            except (EOFError, OSError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._processes = []
        self._connections = []
        self._states = []

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
