"""Volcano-style AND-OR DAG optimizer.

This package implements the query-optimizer substrate the paper builds on:

* :mod:`repro.optimizer.dag` — the AND-OR DAG data structure (equivalence
  nodes and operation nodes);
* :mod:`repro.optimizer.dag_builder` — construction of the expanded DAG from
  logical expressions, with unification of logically equivalent
  sub-expressions and join associativity/commutativity expansion (paper §4);
* :mod:`repro.optimizer.cost_model` — the cost model (seeks, bytes read,
  bytes written, CPU) with per-algorithm formulas for full and differential
  operator execution;
* :mod:`repro.optimizer.volcano` — the Volcano best-plan search extended to
  reuse materialized results (paper §5.1);
* :mod:`repro.optimizer.plans` — extracted physical plan trees.
"""

from repro.optimizer.dag import Dag, EquivalenceNode, OperationNode, Operator, OperatorKind
from repro.optimizer.dag_builder import DagBuilder, build_dag
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.volcano import VolcanoSearch
from repro.optimizer.plans import PlanNode

__all__ = [
    "Dag",
    "EquivalenceNode",
    "OperationNode",
    "Operator",
    "OperatorKind",
    "DagBuilder",
    "build_dag",
    "CostModel",
    "CostParameters",
    "VolcanoSearch",
    "PlanNode",
]
