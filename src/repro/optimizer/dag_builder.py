"""Construction of the expanded AND-OR DAG.

The builder inserts queries/views one at a time (paper §4.2).  Each
expression is normalized (selection push-down), its join trees are flattened
into join blocks, and the block is expanded so that **every connected subset
of the joined inputs gets one equivalence node** and every way of splitting a
subset into two connected halves gets one operation node — the effect of
exhaustively applying join associativity and commutativity to the initial
query DAG (paper Figure 1(c); commutativity itself is folded into the cost
model's choice of build/probe sides).

Unification happens through canonical keys: when a second view (or a second
sub-expression of the same view) produces a key that already exists, the
existing equivalence node is reused, exposing the shared sub-expression to
the multi-query optimizer.  Subsumption derivations for selections
(``σ_{A<5}`` from ``σ_{A<10}``) and for group-bys (deriving coarser groupings
from a finer one) are added as extra operation nodes in a post-pass.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.algebra.expressions import (
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
    base_relations,
)
from repro.algebra.predicates import Comparison, conjoin, range_subsumes
from repro.algebra.rewrite import (
    JoinBlock,
    flatten_join_block,
    left_deep_join,
    push_down_selections,
)
from repro.algebra.schema_derivation import derive_schema
from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator
from repro.optimizer.dag import Dag, EquivalenceNode, Operator, OperatorKind


class DagBuilder:
    """Builds the expanded, unified AND-OR DAG for a set of expressions."""

    def __init__(
        self,
        catalog: Catalog,
        expand_joins: bool = True,
        enable_subsumption: bool = True,
        max_expanded_leaves: int = 10,
        estimator: Optional[CardinalityEstimator] = None,
    ) -> None:
        self.catalog = catalog
        #: The shared cardinality estimator every equivalence node's
        #: statistics come from; callers pass their session estimator so
        #: memoized estimates and runtime-feedback corrections carry across
        #: DAG builds.
        self.estimator = estimator or CardinalityEstimator(catalog)
        self.dag = Dag()
        self.expand_joins = expand_joins
        self.enable_subsumption = enable_subsumption
        #: Join blocks larger than this fall back to the initial (un-expanded)
        #: shape plus its mirror orders, to keep the DAG size bounded.
        self.max_expanded_leaves = max_expanded_leaves

    # -------------------------------------------------------------- public API

    def add_query(self, name: str, expression: Expression) -> EquivalenceNode:
        """Insert one query/view and return its root equivalence node."""
        normalized = push_down_selections(expression, self.catalog)
        root = self._insert(normalized)
        self.dag.mark_root(name, root)
        return root

    def finish(self) -> Dag:
        """Run post-passes (subsumption derivations) and return the DAG."""
        if self.enable_subsumption:
            self._add_selection_subsumptions()
            self._add_groupby_subsumptions()
        return self.dag

    # -------------------------------------------------------------- insertion

    def _insert(self, expression: Expression) -> EquivalenceNode:
        if isinstance(expression, BaseRelation):
            return self._insert_base(expression)
        if isinstance(expression, Join):
            return self._insert_join_block(expression)
        if isinstance(expression, Select):
            return self._insert_unary(
                expression,
                expression.child,
                Operator(OperatorKind.SELECT, predicate=expression.predicate),
            )
        if isinstance(expression, Project):
            return self._insert_unary(
                expression, expression.child, Operator(OperatorKind.PROJECT, columns=expression.columns)
            )
        if isinstance(expression, Aggregate):
            return self._insert_unary(
                expression,
                expression.child,
                Operator(
                    OperatorKind.AGGREGATE,
                    group_by=expression.group_by,
                    aggregates=expression.aggregates,
                ),
            )
        if isinstance(expression, Distinct):
            return self._insert_unary(expression, expression.child, Operator(OperatorKind.DISTINCT))
        if isinstance(expression, UnionAll):
            children = [self._insert(i) for i in expression.inputs]
            node = self._equivalence_for(expression)
            self.dag.add_operation(node, Operator(OperatorKind.UNION), children)
            return node
        if isinstance(expression, Difference):
            left = self._insert(expression.left)
            right = self._insert(expression.right)
            node = self._equivalence_for(expression)
            self.dag.add_operation(node, Operator(OperatorKind.DIFFERENCE), [left, right])
            return node
        raise TypeError(f"unknown expression type {type(expression).__name__}")

    def _insert_base(self, expression: BaseRelation) -> EquivalenceNode:
        node = self._equivalence_for(expression, is_base_relation=True)
        self.dag.add_operation(node, Operator(OperatorKind.SCAN, relation=expression.name), [])
        return node

    def _insert_unary(
        self, expression: Expression, child: Expression, operator: Operator
    ) -> EquivalenceNode:
        child_node = self._insert(child)
        node = self._equivalence_for(expression)
        self.dag.add_operation(node, operator, [child_node])
        return node

    def _equivalence_for(
        self,
        expression: Expression,
        key: Optional[str] = None,
        is_base_relation: bool = False,
    ) -> EquivalenceNode:
        key = key or expression.canonical()
        return self.dag.get_or_create_equivalence(
            key,
            expression,
            derive_schema(expression, self.catalog),
            self.estimator.stats(expression),
            base_relations(expression),
            is_base_relation=is_base_relation,
        )

    # ------------------------------------------------------------ join blocks

    def _insert_join_block(self, expression: Join) -> EquivalenceNode:
        block = flatten_join_block(expression)
        leaf_nodes = [self._insert(leaf) for leaf in block.leaves]

        if not self.expand_joins or len(block.leaves) > self.max_expanded_leaves:
            top = self._insert_join_tree_literal(expression)
        else:
            top = self._expand_block(block, leaf_nodes)

        if block.residuals:
            residual = conjoin(block.residuals)
            wrapped = Select(top.expression, residual)
            node = self._equivalence_for(wrapped)
            self.dag.add_operation(node, Operator(OperatorKind.SELECT, predicate=residual), [top])
            return node
        return top

    def _insert_join_tree_literal(self, expression: Join) -> EquivalenceNode:
        """Insert a join tree exactly as written (no associativity expansion)."""
        left = (
            self._insert_join_tree_literal(expression.left)
            if isinstance(expression.left, Join)
            else self._insert(expression.left)
        )
        right = (
            self._insert_join_tree_literal(expression.right)
            if isinstance(expression.right, Join)
            else self._insert(expression.right)
        )
        node = self._equivalence_for(expression)
        self.dag.add_operation(
            node,
            Operator(OperatorKind.JOIN, conditions=expression.conditions, residual=expression.residual),
            [left, right],
        )
        return node

    def _expand_block(self, block: JoinBlock, leaf_nodes: List[EquivalenceNode]) -> EquivalenceNode:
        """Create equivalence nodes for every connected leaf subset."""
        leaves = block.leaves
        n = len(leaves)
        if n == 1:
            return leaf_nodes[0]

        # Map each join-condition column to the leaf that provides it.
        leaf_schemas = [derive_schema(leaf, self.catalog) for leaf in leaves]

        def owner(column: str) -> Optional[int]:
            matches = [i for i, schema in enumerate(leaf_schemas) if column in schema]
            return matches[0] if len(matches) >= 1 else None

        edges: List[Tuple[int, int, Tuple[str, str]]] = []
        for a, b in block.conditions:
            ia, ib = owner(a), owner(b)
            if ia is None or ib is None or ia == ib:
                continue
            edges.append((ia, ib, (a, b)))

        def conditions_within(subset: FrozenSet[int]) -> List[Tuple[str, str]]:
            return [cond for ia, ib, cond in edges if ia in subset and ib in subset]

        def conditions_across(
            left: FrozenSet[int], right: FrozenSet[int]
        ) -> List[Tuple[str, str]]:
            across: List[Tuple[str, str]] = []
            for ia, ib, (a, b) in edges:
                if ia in left and ib in right:
                    across.append((a, b))
                elif ib in left and ia in right:
                    across.append((b, a))
            return across

        def connected(subset: FrozenSet[int]) -> bool:
            if len(subset) <= 1:
                return True
            adjacency: Dict[int, Set[int]] = {i: set() for i in subset}
            for ia, ib, _ in edges:
                if ia in subset and ib in subset:
                    adjacency[ia].add(ib)
                    adjacency[ib].add(ia)
            seen: Set[int] = set()
            stack = [next(iter(subset))]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(adjacency[current] - seen)
            return seen == set(subset)

        full_set = frozenset(range(n))
        nodes_by_subset: Dict[FrozenSet[int], EquivalenceNode] = {
            frozenset({i}): leaf_nodes[i] for i in range(n)
        }

        def subset_key(subset: FrozenSet[int]) -> str:
            leaf_keys = sorted(leaf_nodes[i].key for i in subset)
            conds = sorted(
                "=".join(sorted((a.rsplit(".", 1)[-1], b.rsplit(".", 1)[-1])))
                for a, b in conditions_within(subset)
            )
            return f"joinset[{'|'.join(leaf_keys)};{','.join(conds)}]"

        # Enumerate subsets by increasing size so both halves of any partition
        # already have equivalence nodes when the partition is considered.
        for size in range(2, n + 1):
            for combo in itertools.combinations(range(n), size):
                subset = frozenset(combo)
                if not connected(subset) and subset != full_set:
                    continue
                representative = left_deep_join(
                    [leaves[i] for i in subset], conditions_within(subset), self.catalog
                )
                node = self._equivalence_for(representative, key=subset_key(subset))
                nodes_by_subset[subset] = node
                # One operation node per unordered partition into two
                # (connected) halves; commutativity is handled by the cost
                # model choosing build/probe sides.
                members = sorted(subset)
                anchor = members[0]
                others = members[1:]
                for r in range(0, len(others)):
                    for rest in itertools.combinations(others, r):
                        left_part = frozenset({anchor, *rest})
                        right_part = subset - left_part
                        if not right_part:
                            continue
                        if left_part not in nodes_by_subset or right_part not in nodes_by_subset:
                            continue
                        across = conditions_across(left_part, right_part)
                        if not across and subset != full_set:
                            # Avoid creating cross products except when
                            # unavoidable at the top of the block.
                            continue
                        self.dag.add_operation(
                            node,
                            Operator(OperatorKind.JOIN, conditions=tuple(across)),
                            [nodes_by_subset[left_part], nodes_by_subset[right_part]],
                        )
        return nodes_by_subset[full_set]

    # ------------------------------------------------------------ subsumption

    def _add_selection_subsumptions(self) -> None:
        """Add derivations of more-selective selections from less-selective ones."""
        selects: List[Tuple[EquivalenceNode, Comparison, EquivalenceNode]] = []
        for node in self.dag.equivalence_nodes:
            for op in list(node.children):
                if op.operator.kind is OperatorKind.SELECT and isinstance(
                    op.operator.predicate, Comparison
                ):
                    selects.append((node, op.operator.predicate, op.inputs[0]))
        for (specific_node, specific_pred, child_a) in selects:
            for (general_node, general_pred, child_b) in selects:
                if specific_node is general_node or child_a is not child_b:
                    continue
                if range_subsumes(general_pred, specific_pred):
                    # specific = σ_specific(general): an extra way to compute it.
                    self.dag.add_operation(
                        specific_node,
                        Operator(OperatorKind.SELECT, predicate=specific_pred),
                        [general_node],
                    )

    def _add_groupby_subsumptions(self) -> None:
        """Add derivations of coarser group-bys from finer ones.

        If two aggregations over the same input group by G1 and G2 with the
        same re-aggregable aggregate specs, introduce (if needed) the
        aggregation over G1 ∪ G2 and derive both from it (paper §4.2).
        """
        from repro.algebra.expressions import AggregateFunc, AggregateSpec

        reaggregable = {AggregateFunc.SUM, AggregateFunc.COUNT, AggregateFunc.MIN, AggregateFunc.MAX}
        aggs: List[Tuple[EquivalenceNode, Tuple[str, ...], Tuple[AggregateSpec, ...], EquivalenceNode]] = []
        for node in self.dag.equivalence_nodes:
            for op in list(node.children):
                if op.operator.kind is OperatorKind.AGGREGATE:
                    aggs.append((node, op.operator.group_by, op.operator.aggregates, op.inputs[0]))

        for i, (node_a, groups_a, specs_a, child_a) in enumerate(aggs):
            for node_b, groups_b, specs_b, child_b in aggs[i + 1 :]:
                if child_a is not child_b or node_a is node_b:
                    continue
                if set(groups_a) == set(groups_b):
                    continue
                if {s.func for s in specs_a} != {s.func for s in specs_b}:
                    continue
                if not all(s.func in reaggregable for s in specs_a):
                    continue
                union_groups = tuple(sorted(set(groups_a) | set(groups_b)))
                union_expr = Aggregate(child_a.expression, union_groups, specs_a)
                union_node = self._equivalence_for(union_expr)
                if union_node.is_leaf:
                    self.dag.add_operation(
                        union_node,
                        Operator(OperatorKind.AGGREGATE, group_by=union_groups, aggregates=specs_a),
                        [child_a],
                    )
                for target, groups, specs in ((node_a, groups_a, specs_a), (node_b, groups_b, specs_b)):
                    # Re-aggregating a COUNT means SUMming the partial counts.
                    rolled = tuple(
                        AggregateSpec(
                            AggregateFunc.SUM if s.func is AggregateFunc.COUNT else s.func,
                            s.alias,
                            s.alias,
                        )
                        for s in specs
                    )
                    self.dag.add_operation(
                        target,
                        Operator(OperatorKind.AGGREGATE, group_by=groups, aggregates=rolled),
                        [union_node],
                    )


def build_dag(
    expressions: Dict[str, Expression],
    catalog: Catalog,
    expand_joins: bool = True,
    enable_subsumption: bool = True,
    estimator: Optional[CardinalityEstimator] = None,
) -> Dag:
    """Convenience wrapper: build the expanded DAG for named expressions."""
    builder = DagBuilder(
        catalog,
        expand_joins=expand_joins,
        enable_subsumption=enable_subsumption,
        estimator=estimator,
    )
    for name, expression in expressions.items():
        builder.add_query(name, expression)
    return builder.finish()
