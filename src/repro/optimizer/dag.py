"""The AND-OR DAG.

Following the paper (§4) and Volcano/RSSB00 terminology:

* an **equivalence node** (OR-node) represents a set of logically equivalent
  expressions — all ways of computing one result;
* an **operation node** (AND-node) represents one algebraic operation applied
  to input equivalence nodes.

Equivalence nodes are unified by a canonical key, so the same logical result
appearing in several views (or several times within one view's maintenance
expression) is represented once — this is what exposes sharing to the
multi-query optimizer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.algebra.expressions import AggregateSpec, Expression
from repro.algebra.predicates import Predicate, TruePredicate
from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStats


class OperatorKind(enum.Enum):
    """Kinds of algebraic operation an operation node can carry."""

    SCAN = "scan"
    SELECT = "select"
    PROJECT = "project"
    JOIN = "join"
    AGGREGATE = "aggregate"
    UNION = "union"
    DIFFERENCE = "difference"
    DISTINCT = "distinct"


@dataclass(frozen=True)
class Operator:
    """The algebraic operation carried by an operation node.

    Only the fields relevant to the kind are populated:

    * ``SCAN`` — ``relation``
    * ``SELECT`` — ``predicate``
    * ``PROJECT`` — ``columns``
    * ``JOIN`` — ``conditions`` (equi-join pairs) and ``residual``
    * ``AGGREGATE`` — ``group_by`` and ``aggregates``
    """

    kind: OperatorKind
    relation: Optional[str] = None
    predicate: Optional[Predicate] = None
    columns: Tuple[str, ...] = ()
    conditions: Tuple[Tuple[str, str], ...] = ()
    residual: Optional[Predicate] = None
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()

    def describe(self) -> str:
        """Short human-readable description for plan printing."""
        if self.kind is OperatorKind.SCAN:
            return f"scan({self.relation})"
        if self.kind is OperatorKind.SELECT:
            return f"σ[{self.predicate.canonical() if self.predicate else 'true'}]"
        if self.kind is OperatorKind.PROJECT:
            return f"π[{','.join(self.columns)}]"
        if self.kind is OperatorKind.JOIN:
            conds = ",".join(f"{a}={b}" for a, b in self.conditions) or "⨯"
            return f"⋈[{conds}]"
        if self.kind is OperatorKind.AGGREGATE:
            aggs = ",".join(a.canonical() for a in self.aggregates)
            return f"γ[{','.join(self.group_by)};{aggs}]"
        return self.kind.value


class OperationNode:
    """An AND-node: one operation applied to input equivalence nodes."""

    __slots__ = ("id", "operator", "inputs", "parent")

    def __init__(
        self,
        node_id: int,
        operator: Operator,
        inputs: Tuple["EquivalenceNode", ...],
        parent: "EquivalenceNode",
    ) -> None:
        self.id = node_id
        self.operator = operator
        self.inputs = inputs
        self.parent = parent

    def describe(self) -> str:
        """Readable description including input node ids."""
        ins = ",".join(f"e{i.id}" for i in self.inputs)
        return f"o{self.id}:{self.operator.describe()}({ins})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class EquivalenceNode:
    """An OR-node: a set of equivalent ways of computing one result."""

    __slots__ = (
        "id",
        "key",
        "expression",
        "schema",
        "stats",
        "children",
        "parents",
        "base_relations",
        "is_base_relation",
        "view_name",
    )

    def __init__(
        self,
        node_id: int,
        key: str,
        expression: Expression,
        schema: Schema,
        stats: TableStats,
        base_relations: FrozenSet[str],
        is_base_relation: bool = False,
    ) -> None:
        self.id = node_id
        self.key = key
        #: A representative logical expression for this equivalence class.
        self.expression = expression
        self.schema = schema
        self.stats = stats
        #: Alternative operation nodes computing this result.
        self.children: List[OperationNode] = []
        #: Operation nodes that consume this result.
        self.parents: List[OperationNode] = []
        self.base_relations = base_relations
        self.is_base_relation = is_base_relation
        #: Set when this node is the root of a named materialized view.
        self.view_name: Optional[str] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no operation children (a stored relation)."""
        return not self.children

    def depends_on(self, relation: str) -> bool:
        """Whether the result depends on base relation ``relation``."""
        return relation in self.base_relations

    def describe(self) -> str:
        """Readable one-line description."""
        kind = "base" if self.is_base_relation else f"{len(self.children)} alt"
        return f"e{self.id}[{kind}] {self.key}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class Dag:
    """The full AND-OR DAG for a set of queries/views."""

    def __init__(self) -> None:
        self._equivalence_nodes: Dict[int, EquivalenceNode] = {}
        self._by_key: Dict[str, EquivalenceNode] = {}
        self._operation_nodes: Dict[int, OperationNode] = {}
        self._op_signatures: Set[Tuple[int, str, Tuple[int, ...]]] = set()
        self._roots: Dict[str, EquivalenceNode] = {}
        self._next_eq_id = 0
        self._next_op_id = 0

    # ----------------------------------------------------------------- access

    @property
    def equivalence_nodes(self) -> List[EquivalenceNode]:
        """All equivalence nodes in creation order."""
        return [self._equivalence_nodes[i] for i in sorted(self._equivalence_nodes)]

    @property
    def operation_nodes(self) -> List[OperationNode]:
        """All operation nodes in creation order."""
        return [self._operation_nodes[i] for i in sorted(self._operation_nodes)]

    @property
    def roots(self) -> Dict[str, EquivalenceNode]:
        """Root equivalence nodes keyed by query/view name."""
        return dict(self._roots)

    def node(self, node_id: int) -> EquivalenceNode:
        """Equivalence node by id."""
        return self._equivalence_nodes[node_id]

    def by_key(self, key: str) -> Optional[EquivalenceNode]:
        """Equivalence node by canonical key, if present."""
        return self._by_key.get(key)

    def __len__(self) -> int:
        return len(self._equivalence_nodes)

    # ------------------------------------------------------------ construction

    def get_or_create_equivalence(
        self,
        key: str,
        expression: Expression,
        schema: Schema,
        stats: TableStats,
        base_relations: FrozenSet[str],
        is_base_relation: bool = False,
    ) -> EquivalenceNode:
        """Return the equivalence node for ``key``, creating it if new.

        This is the unification point: two syntactically different but
        logically equivalent sub-expressions map to the same key and hence
        the same node.
        """
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        node = EquivalenceNode(
            self._next_eq_id, key, expression, schema, stats, base_relations, is_base_relation
        )
        self._equivalence_nodes[node.id] = node
        self._by_key[key] = node
        self._next_eq_id += 1
        return node

    def add_operation(
        self,
        parent: EquivalenceNode,
        operator: Operator,
        inputs: Sequence[EquivalenceNode],
    ) -> Optional[OperationNode]:
        """Add an operation node below ``parent`` unless an identical one exists."""
        signature = (
            parent.id,
            _operator_signature(operator),
            tuple(i.id for i in inputs),
        )
        if signature in self._op_signatures:
            return None
        self._op_signatures.add(signature)
        op = OperationNode(self._next_op_id, operator, tuple(inputs), parent)
        self._operation_nodes[op.id] = op
        self._next_op_id += 1
        parent.children.append(op)
        for child in inputs:
            child.parents.append(op)
        return op

    def mark_root(self, name: str, node: EquivalenceNode) -> None:
        """Mark ``node`` as the root of the query/view called ``name``."""
        self._roots[name] = node
        node.view_name = node.view_name or name

    # -------------------------------------------------------------- traversal

    def ancestors_of(self, node: EquivalenceNode) -> Set[int]:
        """Ids of all equivalence nodes reachable upward from ``node``.

        Used by the incremental cost update: when a node is (un)materialized,
        only its ancestors' best plans can change.
        """
        seen: Set[int] = set()
        frontier: List[EquivalenceNode] = [node]
        while frontier:
            current = frontier.pop()
            for op in current.parents:
                parent = op.parent
                if parent.id not in seen:
                    seen.add(parent.id)
                    frontier.append(parent)
        return seen

    def topological_order(self) -> List[EquivalenceNode]:
        """Equivalence nodes ordered children-before-parents."""
        order: List[EquivalenceNode] = []
        visited: Set[int] = set()

        def visit(node: EquivalenceNode) -> None:
            if node.id in visited:
                return
            visited.add(node.id)
            for op in node.children:
                for child in op.inputs:
                    visit(child)
            order.append(node)

        for node in self.equivalence_nodes:
            visit(node)
        return order

    def describe(self) -> str:
        """Multi-line dump of the DAG (for debugging and documentation)."""
        lines = []
        for node in self.equivalence_nodes:
            lines.append(node.describe())
            for op in node.children:
                lines.append(f"  {op.describe()}")
        return "\n".join(lines)


def _operator_signature(operator: Operator) -> str:
    """A hashable signature for operator deduplication."""
    parts = [operator.kind.value, operator.relation or ""]
    if operator.predicate is not None:
        parts.append(operator.predicate.canonical())
    parts.append(",".join(operator.columns))
    parts.append(";".join(f"{a}={b}" for a, b in sorted(operator.conditions)))
    if operator.residual is not None and not isinstance(operator.residual, TruePredicate):
        parts.append(operator.residual.canonical())
    parts.append(",".join(operator.group_by))
    parts.append(",".join(a.canonical() for a in operator.aggregates))
    return "|".join(parts)
