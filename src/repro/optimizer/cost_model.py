"""The cost model.

Mirrors the paper's performance model (§7.1): the cost of a plan accounts
for the **number of seeks**, the **amount of data read**, the **amount of
data written**, and **CPU time** for in-memory processing, and is reported in
seconds.  Operator formulas model the standard algorithms (sequential scan,
hash join with Grace-style partitioning when the build input exceeds the
buffer pool, sort-merge join, nested loops, index nested loops, hash
aggregation, external sort), which produces the paper's qualitative
behaviours — in particular the sharp cost jump when an input stops fitting
in memory, and the strong benefit of indexes for joining small differentials
with large stored relations.

All formulas consume :class:`~repro.catalog.statistics.TableStats`
descriptors only — never actual data — so the same model prices both full
results and differentials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.catalog.statistics import TableStats
from repro.storage.buffer import BufferPool


@dataclass(frozen=True)
class CostParameters:
    """Elementary cost constants (seconds)."""

    seek_time: float = 0.01
    block_read_time: float = 0.0002
    block_write_time: float = 0.0004
    cpu_tuple_time: float = 2.0e-6
    cpu_probe_time: float = 4.0e-6
    cpu_compare_time: float = 1.0e-6
    #: CPU charged per output tuple produced by any operator.
    cpu_output_time: float = 1.0e-6


@dataclass(frozen=True)
class InputDescriptor:
    """What the cost model needs to know about one operator input.

    ``stored`` marks inputs that exist as stored relations (base tables or
    materialized results) — only those can be probed through an index or
    scanned repeatedly.  ``indexed_columns`` lists column sets that have an
    available index; ``sorted_on`` a sort order guaranteed by storage.
    """

    stats: TableStats
    stored: bool = False
    indexed_columns: Tuple[Tuple[str, ...], ...] = ()
    sorted_on: Tuple[str, ...] = ()

    def has_index_on(self, columns: Sequence[str]) -> bool:
        """Whether an index with leading key ``columns`` is available."""
        wanted = tuple(c.rsplit(".", 1)[-1] for c in columns)
        if not wanted:
            return False
        for key in self.indexed_columns:
            normalized = tuple(c.rsplit(".", 1)[-1] for c in key)
            if normalized[: len(wanted)] == wanted or wanted[: len(normalized)] == normalized:
                return True
        return False


class CostModel:
    """Prices individual operators and storage actions."""

    def __init__(
        self,
        parameters: Optional[CostParameters] = None,
        buffer: Optional[BufferPool] = None,
    ) -> None:
        self.parameters = parameters or CostParameters()
        self.buffer = buffer or BufferPool()

    # ------------------------------------------------------------- primitives

    def _blocks(self, stats: TableStats) -> float:
        return self.buffer.blocks_for(stats.size_bytes)

    def sequential_read(self, stats: TableStats) -> float:
        """Cost of reading a stored result sequentially (one seek + transfer)."""
        if stats.cardinality <= 0:
            return self.parameters.seek_time
        return self.parameters.seek_time + self._blocks(stats) * self.parameters.block_read_time

    def sequential_write(self, stats: TableStats) -> float:
        """Cost of writing a result out sequentially."""
        if stats.cardinality <= 0:
            return 0.0
        return self.parameters.seek_time + self._blocks(stats) * self.parameters.block_write_time

    # -------------------------------------------------- storage-level actions

    def scan_cost(self, stats: TableStats) -> float:
        """Cost of a relation scan (the explicit scan operation of the DAG)."""
        return self.sequential_read(stats) + stats.cardinality * self.parameters.cpu_tuple_time

    def reuse_cost(self, stats: TableStats) -> float:
        """``reusecost`` — cost of reusing a materialized result (re-reading it)."""
        return self.scan_cost(stats)

    def materialize_cost(self, stats: TableStats) -> float:
        """``matcost`` — cost of writing out a computed result."""
        return self.sequential_write(stats)

    def index_build_cost(self, stats: TableStats) -> float:
        """Cost of building an index over a stored result (sort + write)."""
        card = max(stats.cardinality, 1.0)
        sort_cpu = card * math.log2(card + 1) * self.parameters.cpu_compare_time
        key_stats = TableStats(stats.cardinality, 16)
        return self.sequential_read(stats) + sort_cpu + self.sequential_write(key_stats)

    def index_maintenance_cost(self, delta_stats_list: Sequence[TableStats]) -> float:
        """Cost of applying deltas to an index (one probe + one write per tuple)."""
        total_tuples = sum(d.cardinality for d in delta_stats_list)
        if total_tuples <= 0:
            return 0.0
        io = self.parameters.seek_time + self.buffer.blocks_for(total_tuples * 16) * self.parameters.block_write_time
        return io + total_tuples * (self.parameters.cpu_probe_time + self.parameters.cpu_tuple_time)

    def merge_cost(
        self,
        view_stats: TableStats,
        delta_stats_list: Sequence[TableStats],
        has_index: bool = False,
    ) -> float:
        """``mergeCost`` — cost of applying computed differentials to a stored view.

        Inserts are appended; deletes (and aggregate-row replacements) need to
        locate the affected tuples, which is cheap with an index on the view
        and requires re-reading the view otherwise.
        """
        total = sum(d.cardinality for d in delta_stats_list)
        if total <= 0:
            return 0.0
        write = self.parameters.seek_time + self.buffer.blocks_for(
            sum(d.size_bytes for d in delta_stats_list)
        ) * self.parameters.block_write_time
        cpu = total * (self.parameters.cpu_probe_time + self.parameters.cpu_tuple_time)
        locate = 0.0
        if has_index:
            locate = total * self.parameters.cpu_probe_time
        else:
            locate = self.sequential_read(view_stats)
        return write + cpu + locate

    # --------------------------------------------------------------- operators

    def select_cost(self, input_stats: TableStats, output_stats: TableStats) -> float:
        """CPU cost of filtering an input (input assumed pipelined)."""
        return (
            input_stats.cardinality * self.parameters.cpu_tuple_time
            + output_stats.cardinality * self.parameters.cpu_output_time
        )

    def project_cost(self, input_stats: TableStats, output_stats: TableStats) -> float:
        """CPU cost of a duplicate-preserving projection."""
        return (
            input_stats.cardinality * self.parameters.cpu_tuple_time
            + output_stats.cardinality * self.parameters.cpu_output_time
        )

    def union_cost(self, input_stats: Sequence[TableStats], output_stats: TableStats) -> float:
        """CPU cost of concatenating inputs."""
        return (
            sum(s.cardinality for s in input_stats) * self.parameters.cpu_tuple_time
            + output_stats.cardinality * self.parameters.cpu_output_time
        )

    def difference_cost(
        self, left: TableStats, right: TableStats, output_stats: TableStats
    ) -> float:
        """Hash-based multiset difference."""
        spill = self._spill_penalty(right)
        return (
            spill
            + (left.cardinality + right.cardinality) * self.parameters.cpu_probe_time
            + output_stats.cardinality * self.parameters.cpu_output_time
        )

    def distinct_cost(self, input_stats: TableStats, output_stats: TableStats) -> float:
        """Hash-based duplicate elimination."""
        return self.aggregate_cost(input_stats, output_stats)

    def aggregate_cost(self, input_stats: TableStats, output_stats: TableStats) -> float:
        """Hash aggregation; spills to disk when the input exceeds the buffer."""
        spill = self._spill_penalty(input_stats)
        return (
            spill
            + input_stats.cardinality
            * (self.parameters.cpu_probe_time + self.parameters.cpu_tuple_time)
            + output_stats.cardinality * self.parameters.cpu_output_time
        )

    def sort_cost(self, stats: TableStats) -> float:
        """External-sort cost (used by merge join when an input is unsorted)."""
        card = max(stats.cardinality, 1.0)
        cpu = card * math.log2(card + 1) * self.parameters.cpu_compare_time
        io = 0.0
        if not self.buffer.fits(stats.size_bytes):
            # one write + one read pass per merge level
            passes = max(1, self.buffer.partitions_needed(stats.size_bytes))
            io = passes * (
                2 * self._blocks(stats) * (self.parameters.block_read_time + self.parameters.block_write_time) / 2
                + 2 * self.parameters.seek_time
            )
        return cpu + io

    def _spill_penalty(self, build_stats: TableStats) -> float:
        """Extra I/O when a hash table over ``build_stats`` does not fit in memory."""
        if self.buffer.fits(build_stats.size_bytes):
            return 0.0
        passes = self.buffer.partitions_needed(build_stats.size_bytes)
        return passes * (
            self._blocks(build_stats)
            * (self.parameters.block_read_time + self.parameters.block_write_time)
            + 2 * self.parameters.seek_time
        )

    def pipeline_breaker_cost(self, output_stats: TableStats) -> float:
        """Cost of materializing an intermediate result that exceeds the buffer.

        The paper's Volcano-based prototype does not pipeline large
        intermediate results through multi-way joins ("the cost of executing
        an operation o also takes into account the cost of reading the
        inputs, if they are not pipelined", §5.1): an intermediate result
        larger than the buffer pool is written to disk by its producer and
        re-read by its consumer.  Differential plans rarely pay this penalty
        because their intermediate results (joins against small deltas) fit
        in memory — which is precisely why incremental maintenance wins at
        low update percentages and recomputation catches up at high ones.
        """
        if self.buffer.fits(output_stats.size_bytes):
            return 0.0
        return self.sequential_write(output_stats) + self.sequential_read(output_stats)

    # -------------------------------------------------------------------- joins

    def join_cost(
        self,
        conditions: Sequence[Tuple[str, str]],
        left: InputDescriptor,
        right: InputDescriptor,
        output_stats: TableStats,
        left_access: float = 0.0,
        right_access: float = 0.0,
    ) -> Tuple[float, str]:
        """Cost of the cheapest join algorithm for these inputs.

        ``left_access``/``right_access`` are the costs of *producing* each
        input (the Volcano ``C(e_i, M)`` terms).  They are folded in here
        rather than added by the caller because an index nested-loop join
        that probes a stored input through its index never reads that input
        in full — which is exactly why indexes make differential maintenance
        cheap (paper §7: "all required indices got chosen for permanent
        materialization").

        Returns ``(cost_including_input_access, algorithm)``.  Candidates:

        * hash join (build on the smaller input; Grace partitioning I/O added
          when the build side exceeds the buffer pool);
        * sort-merge join (sorts whichever inputs are not already sorted on
          the join key);
        * (block) nested-loop join — only competitive for tiny inputs or
          cross products;
        * index nested-loop join, when one side is a *stored* relation with
          an index on its join columns.
        """
        p = self.parameters
        output_cpu = output_stats.cardinality * p.cpu_output_time
        both_access = left_access + right_access
        candidates: List[Tuple[float, str]] = []

        left_cols = [a for a, _ in conditions]
        right_cols = [b for _, b in conditions]

        if conditions:
            # --- hash join
            build, probe = (right, left) if right.stats.size_bytes <= left.stats.size_bytes else (left, right)
            hash_cost = (
                both_access
                + self._spill_penalty(build.stats)
                + build.stats.cardinality * (p.cpu_tuple_time + p.cpu_probe_time)
                + probe.stats.cardinality * p.cpu_probe_time
                + output_cpu
            )
            candidates.append((hash_cost, "hash"))

            # --- sort-merge join
            merge_cost = (
                both_access
                + output_cpu
                + (left.stats.cardinality + right.stats.cardinality) * p.cpu_compare_time
            )
            if tuple(c.rsplit(".", 1)[-1] for c in left.sorted_on[: len(left_cols)]) != tuple(
                c.rsplit(".", 1)[-1] for c in left_cols
            ):
                merge_cost += self.sort_cost(left.stats)
            if tuple(c.rsplit(".", 1)[-1] for c in right.sorted_on[: len(right_cols)]) != tuple(
                c.rsplit(".", 1)[-1] for c in right_cols
            ):
                merge_cost += self.sort_cost(right.stats)
            candidates.append((merge_cost, "merge"))

            # --- index nested loops (either direction): the probed stored
            # side is accessed only through its index, so its access cost is
            # NOT charged.
            if right.stored and right.has_index_on(right_cols):
                matches = output_stats.cardinality / max(left.stats.cardinality, 1.0)
                probe_io = 0.0
                if not self.buffer.fits(right.stats.size_bytes):
                    probe_io = p.block_read_time + p.seek_time * 0.01
                index_cost = (
                    left_access
                    + left.stats.cardinality * (p.cpu_probe_time + probe_io + matches * p.cpu_tuple_time)
                    + output_cpu
                )
                candidates.append((index_cost, "index_nested_loop_right"))
            if left.stored and left.has_index_on(left_cols):
                matches = output_stats.cardinality / max(right.stats.cardinality, 1.0)
                probe_io = 0.0
                if not self.buffer.fits(left.stats.size_bytes):
                    probe_io = p.block_read_time + p.seek_time * 0.01
                index_cost = (
                    right_access
                    + right.stats.cardinality * (p.cpu_probe_time + probe_io + matches * p.cpu_tuple_time)
                    + output_cpu
                )
                candidates.append((index_cost, "index_nested_loop_left"))

        # --- (block) nested loops; the only choice for pure cross products.
        small, big = (left, right) if left.stats.size_bytes <= right.stats.size_bytes else (right, left)
        nl_cost = (
            both_access
            + small.stats.cardinality * big.stats.cardinality * p.cpu_compare_time * 0.01
            + (small.stats.cardinality + big.stats.cardinality) * p.cpu_tuple_time
            + self._spill_penalty(small.stats)
            + output_cpu
        )
        candidates.append((nl_cost, "nested_loop"))

        best_cost, best_algorithm = min(candidates, key=lambda c: c[0])
        # Non-pipelined intermediate results are written and re-read by the
        # consumer regardless of the join algorithm chosen.
        return best_cost + self.pipeline_breaker_cost(output_stats), best_algorithm
