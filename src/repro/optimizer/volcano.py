"""Volcano-style best-plan search over the AND-OR DAG.

Implements the cost recurrences of paper §5.1:

* ``compcost(o) = cost of executing o + Σ compcost(e_i)`` over the operation
  node's input equivalence nodes;
* ``compcost(e) = min over children operation nodes``, 0 for stored leaves;
* when a set ``M`` of equivalence nodes is materialized, an input in ``M``
  contributes ``min(compcost(e), reusecost(e))`` instead.

Best plans per equivalence node are cached (memoized depth-first traversal)
and can be extracted as :class:`~repro.optimizer.plans.PlanNode` trees.
Index availability is consulted through the catalog for base relations and
through an ``extra_indexes`` mapping for materialized intermediate results,
which is how index selection is folded into plan search (paper §4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.catalog.catalog import Catalog
from repro.optimizer.cost_model import CostModel, InputDescriptor
from repro.optimizer.dag import Dag, EquivalenceNode, OperationNode, Operator, OperatorKind
from repro.optimizer.plans import PlanNode, reuse_plan

INFINITY = math.inf


@dataclass
class OperationChoice:
    """Best costing found for one operation node."""

    operation: OperationNode
    cost: float
    algorithm: str


@dataclass
class NodeBest:
    """Best plan information cached for one equivalence node."""

    compcost: float
    best_operation: Optional[OperationChoice]


class VolcanoSearch:
    """Best-plan search with support for reusing materialized results."""

    def __init__(
        self,
        dag: Dag,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        extra_indexes: Optional[Mapping[int, Iterable[Tuple[str, ...]]]] = None,
    ) -> None:
        self.dag = dag
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        #: Indexes available on materialized intermediate results, keyed by
        #: equivalence node id; values are tuples of indexed column names.
        self.extra_indexes: Dict[int, List[Tuple[str, ...]]] = {
            node_id: [tuple(cols) for cols in columns]
            for node_id, columns in (extra_indexes or {}).items()
        }

    # -------------------------------------------------------------- descriptors

    def input_descriptor(self, node: EquivalenceNode, materialized: FrozenSet[int]) -> InputDescriptor:
        """Describe an operator input for the cost model."""
        stored = node.is_base_relation or node.id in materialized
        indexed: List[Tuple[str, ...]] = []
        sorted_on: Tuple[str, ...] = ()
        if node.is_base_relation:
            relation = node.expression.canonical()
            for index in self.catalog.indexes(relation):
                indexed.append(tuple(index.columns))
                if index.kind == "btree" and not sorted_on:
                    sorted_on = tuple(index.columns)
        if node.id in self.extra_indexes:
            indexed.extend(self.extra_indexes[node.id])
        return InputDescriptor(
            stats=node.stats,
            stored=stored,
            indexed_columns=tuple(indexed),
            sorted_on=sorted_on,
        )

    # ------------------------------------------------------------- local costs

    def operation_total_cost(
        self,
        operation: OperationNode,
        materialized: FrozenSet[int],
        input_costs: Sequence[float],
    ) -> Tuple[float, str]:
        """Total cost of one operation *including* its input access costs.

        ``input_costs`` are the ``C(e_i, M)`` values of the operation's
        inputs, in order.  For joins the decision of whether an input's
        access cost is actually paid belongs to the join algorithm (an index
        nested-loop probe never reads the stored input in full), so the cost
        model folds them in; for every other operator they are simply added.
        """
        cm = self.cost_model
        op = operation.operator
        output = operation.parent.stats
        inputs = [node.stats for node in operation.inputs]
        access = sum(input_costs)

        if op.kind is OperatorKind.SCAN:
            return cm.scan_cost(self.catalog.stats(op.relation)), "scan"
        if op.kind is OperatorKind.SELECT:
            return access + cm.select_cost(inputs[0], output), "filter"
        if op.kind is OperatorKind.PROJECT:
            return access + cm.project_cost(inputs[0], output), "project"
        if op.kind is OperatorKind.JOIN:
            left = self.input_descriptor(operation.inputs[0], materialized)
            right = self.input_descriptor(operation.inputs[1], materialized)
            return cm.join_cost(
                op.conditions, left, right, output, input_costs[0], input_costs[1]
            )
        if op.kind is OperatorKind.AGGREGATE:
            return access + cm.aggregate_cost(inputs[0], output), "hash_aggregate"
        if op.kind is OperatorKind.UNION:
            return access + cm.union_cost(inputs, output), "append"
        if op.kind is OperatorKind.DIFFERENCE:
            return access + cm.difference_cost(inputs[0], inputs[1], output), "hash_difference"
        if op.kind is OperatorKind.DISTINCT:
            return access + cm.distinct_cost(inputs[0], output), "hash_distinct"
        raise ValueError(f"unknown operator kind {op.kind}")

    # ------------------------------------------------------------------ search

    def optimize(self, materialized: Optional[Iterable[int]] = None) -> "SearchResult":
        """Compute best plans for every equivalence node given materialized set ``M``."""
        mat: FrozenSet[int] = frozenset(materialized or ())
        memo: Dict[int, NodeBest] = {}
        in_progress: Set[int] = set()

        def compcost(node: EquivalenceNode) -> NodeBest:
            cached = memo.get(node.id)
            if cached is not None:
                return cached
            if node.id in in_progress:
                # Cycle guard (subsumption derivations cannot create cycles,
                # but be safe): treat as unusable along this path.
                return NodeBest(INFINITY, None)
            in_progress.add(node.id)
            if not node.children:
                best = NodeBest(0.0, None)
            else:
                best_cost = INFINITY
                best_choice: Optional[OperationChoice] = None
                for operation in node.children:
                    input_costs = [
                        self.input_cost(child, mat, compcost) for child in operation.inputs
                    ]
                    if any(c >= INFINITY for c in input_costs):
                        continue
                    total, algorithm = self.operation_total_cost(operation, mat, input_costs)
                    if total < best_cost:
                        best_cost = total
                        best_choice = OperationChoice(operation, total, algorithm)
                best = NodeBest(best_cost, best_choice)
            in_progress.discard(node.id)
            memo[node.id] = best
            return best

        for node in self.dag.topological_order():
            compcost(node)
        return SearchResult(self, mat, memo)

    def input_cost(self, node: EquivalenceNode, materialized: FrozenSet[int], compcost_fn) -> float:
        """``C(e, M)`` — cost of obtaining an input result (paper §5.1)."""
        best = compcost_fn(node)
        if node.id in materialized:
            return min(best.compcost, self.cost_model.reuse_cost(node.stats))
        return best.compcost


class SearchResult:
    """Best costs/plans for every node under one materialized-set assumption."""

    def __init__(self, search: VolcanoSearch, materialized: FrozenSet[int], memo: Dict[int, NodeBest]):
        self._search = search
        self.materialized = materialized
        self._memo = memo

    def compcost(self, node_id: int) -> float:
        """Cost of computing the node's result (ignoring the option to reuse it)."""
        return self._memo[node_id].compcost

    def cost_with_reuse(self, node_id: int) -> float:
        """``C(e, M)``: min of recomputation and reuse for materialized nodes."""
        node = self._search.dag.node(node_id)
        cost = self._memo[node_id].compcost
        if node_id in self.materialized:
            return min(cost, self._search.cost_model.reuse_cost(node.stats))
        return cost

    def best_operation(self, node_id: int) -> Optional[OperationChoice]:
        """The chosen operation node (None for stored leaves)."""
        return self._memo[node_id].best_operation

    # --------------------------------------------------------- plan extraction

    def extract_plan(self, node_id: int, allow_reuse_of_root: bool = False) -> PlanNode:
        """Extract the chosen plan tree rooted at ``node_id``.

        By default the root itself is computed (not reused) even if
        materialized — callers asking "how do I recompute this view?" want
        the computation plan; inputs are still allowed to reuse materialized
        results.
        """
        return self._extract(self._search.dag.node(node_id), is_root=not allow_reuse_of_root)

    def _extract(self, node: EquivalenceNode, is_root: bool = False) -> PlanNode:
        reuse_cost = self._search.cost_model.reuse_cost(node.stats)
        best = self._memo[node.id]
        if not is_root and node.id in self.materialized and reuse_cost <= best.compcost:
            label = node.view_name or f"e{node.id}"
            return reuse_plan(
                node.id,
                label,
                reuse_cost,
                node.stats,
                expression=node.expression,
                view_name=node.view_name,
            )
        if best.best_operation is None:
            if node.is_base_relation:
                relation = node.expression.canonical()
                return PlanNode(
                    description=f"scan({relation})",
                    node_id=node.id,
                    cost=self._search.cost_model.scan_cost(node.stats),
                    cardinality=node.stats.cardinality,
                    algorithm="scan",
                    operator=Operator(OperatorKind.SCAN, relation=relation),
                    expression=node.expression,
                )
            return PlanNode(
                description=node.key,
                node_id=node.id,
                cost=best.compcost,
                cardinality=node.stats.cardinality,
                expression=node.expression,
            )
        choice = best.best_operation
        children = [self._extract(child) for child in choice.operation.inputs]
        return PlanNode(
            description=choice.operation.operator.describe(),
            node_id=node.id,
            cost=choice.cost,
            cardinality=node.stats.cardinality,
            algorithm=choice.algorithm,
            children=children,
            operator=choice.operation.operator,
            expression=node.expression,
        )
