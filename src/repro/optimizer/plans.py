"""Physical plan trees extracted from the DAG by the plan search.

A :class:`PlanNode` records, per step, which operation was chosen for which
equivalence node, which join/aggregation algorithm prices it, what its
estimated cost and cardinality are, and whether an input was satisfied by
reusing a materialized result rather than recomputing it.

Besides the display fields, each node carries an *execution payload*: the
algebraic :class:`~repro.optimizer.dag.Operator` the optimizer chose and a
representative logical :class:`~repro.algebra.Expression` for the step's
result.  The physical layer (:mod:`repro.engine.physical`) compiles these
payloads into executable operators, so the plans the optimizer picks are the
plans that actually run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.algebra.expressions import Expression
from repro.catalog.statistics import TableStats
from repro.optimizer.dag import Operator


@dataclass
class PlanNode:
    """One step of an extracted plan."""

    description: str
    node_id: int
    cost: float
    cardinality: float
    algorithm: str = ""
    reused: bool = False
    children: List["PlanNode"] = field(default_factory=list)
    #: The algebraic operation the optimizer chose for this step (None for
    #: reuse leaves and for leaves without an explicit operation node).
    operator: Optional[Operator] = None
    #: A representative logical expression for this step's result; used by
    #: the physical layer to resolve reuse through a materialized registry
    #: and as a correctness/fallback oracle.
    expression: Optional[Expression] = None
    #: The materialized view holding this step's result, for reuse leaves.
    view_name: Optional[str] = None

    def total_cost(self) -> float:
        """The cost recorded at the root (already includes the children)."""
        return self.cost

    def pretty(self, indent: int = 0) -> str:
        """Multi-line, indented rendering of the plan."""
        marker = " [reuse]" if self.reused else ""
        algo = f" <{self.algorithm}>" if self.algorithm else ""
        line = (
            f"{'  ' * indent}{self.description}{algo}{marker}"
            f"  (cost={self.cost:.4f}, rows={self.cardinality:.0f})"
        )
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def count_nodes(self) -> int:
        """Number of plan steps (used in tests)."""
        return 1 + sum(c.count_nodes() for c in self.children)

    def reused_nodes(self) -> List["PlanNode"]:
        """All steps satisfied by reusing a materialized result."""
        found = [self] if self.reused else []
        for child in self.children:
            found.extend(child.reused_nodes())
        return found


def reuse_plan(
    node_id: int,
    label: str,
    cost: float,
    stats: TableStats,
    expression: Optional[Expression] = None,
    view_name: Optional[str] = None,
) -> PlanNode:
    """A leaf plan step that reads a materialized result."""
    return PlanNode(
        description=f"reuse[{label}]",
        node_id=node_id,
        cost=cost,
        cardinality=stats.cardinality,
        algorithm="scan",
        reused=True,
        expression=expression,
        view_name=view_name or label,
    )
