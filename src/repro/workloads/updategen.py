"""Generation of update (delta) batches.

The paper models an "x% update" to a relation as inserting x% as many tuples
as the relation currently holds and deleting x/2% of the current tuples
(twice as many inserts as deletes, modelling a growing warehouse).  This
module turns that specification into concrete :class:`Delta` batches against
an executable database — fresh, referentially consistent tuples for the
inserts and a deterministic sample of existing tuples for the deletes — so
the maintenance machinery can be exercised and verified end to end.

For streaming sessions (:meth:`repro.api.Warehouse.stream`) the generator
additionally supports *deferred* generation: rounds produced while earlier
rounds are still pending can exclude already-pending deletes (so a tuple is
never deleted twice) and continue primary-key sequences past pending
inserts; :func:`generate_update_stream` produces whole round sequences whose
deletes deliberately overlap earlier rounds' inserts — the workload where
coalescing annihilation pays.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.engine.database import Database
from repro.maintenance.update_spec import UpdateSpec
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation, Row, multiset_subtract
from repro.workloads.datagen import TpcdDataGenerator


def generate_deltas(
    database: Database,
    spec: UpdateSpec,
    relations: Optional[Sequence[str]] = None,
    seed: int = 2024,
    generator: Optional[TpcdDataGenerator] = None,
    exclude_deletes: Optional[Mapping[str, Iterable[Row]]] = None,
    key_offsets: Optional[Mapping[str, int]] = None,
) -> DeltaStore:
    """Build a :class:`DeltaStore` realizing ``spec`` against ``database``.

    Inserted tuples are produced by the TPC-D generator (continuing its key
    sequences, so they do not collide with existing primary keys); deleted
    tuples are sampled uniformly from the current contents.

    ``exclude_deletes`` removes a multiset of rows per relation from the
    delete-sampling pool (a streaming session passes its pending delete
    bags, so deferred rounds never delete the same tuple twice), and
    ``key_offsets`` advances the insert key sequences per relation (past
    pending, not-yet-applied inserts).
    """
    rng = random.Random(seed)
    names = list(relations) if relations is not None else database.table_names()
    generator = generator or TpcdDataGenerator(scale_factor=0.001, seed=seed)
    offsets = dict(key_offsets or {})
    # Continue key sequences past what is already loaded (and pending).
    for name in names:
        generator._counters[name] = len(database.table(name)) + offsets.get(name, 0)

    store = DeltaStore(names)
    for name in names:
        current = database.table(name)
        fractions = spec.for_relation(name)
        insert_count = int(round(len(current) * fractions.insert_fraction))
        delete_count = int(round(len(current) * fractions.delete_fraction))

        inserts = Relation(current.schema, [], name=f"delta_plus_{name}")
        if insert_count > 0:
            inserts.extend(generator.generate_table(name, cardinality=insert_count))

        pool = multiset_subtract(current.rows, (exclude_deletes or {}).get(name, ()))
        delete_count = min(delete_count, len(pool))

        deletes = Relation(current.schema, [], name=f"delta_minus_{name}")
        if delete_count > 0 and pool:
            deletes.extend(rng.sample(pool, delete_count))

        store.set_delta(Delta(name, inserts, deletes))
    return store


def uniform_deltas(
    database: Database,
    update_percentage: float,
    relations: Optional[Sequence[str]] = None,
    seed: int = 2024,
) -> DeltaStore:
    """Deltas for the paper's uniform "x% update" model."""
    names = list(relations) if relations is not None else database.table_names()
    return generate_deltas(database, UpdateSpec.uniform(update_percentage, names), names, seed=seed)


def generate_update_stream(
    database: Database,
    update_percentage: float,
    rounds: int,
    relations: Optional[Sequence[str]] = None,
    overlap: float = 0.5,
    seed: int = 2024,
) -> List[DeltaStore]:
    """A sequence of update rounds with insert/delete overlap between rounds.

    Each round realizes the paper's uniform update model against a lock-step
    simulation of the base tables (so the rounds can be replayed verbatim by
    both an eager and a deferred consumer), except that an ``overlap``
    fraction of every round's deletes is drawn from the *previous round's
    inserts* instead of the original contents — the churn pattern of a
    warehouse ingesting corrections: a tuple arrives, is amended, and the
    first version is deleted again one batch later.  Those insert-then-delete
    pairs are exactly what :func:`repro.storage.delta.coalesce_delta`
    annihilates.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be within [0, 1], got {overlap}")
    rng = random.Random(seed)
    names = list(relations) if relations is not None else database.table_names()
    sim = database.copy()
    generator = TpcdDataGenerator(scale_factor=0.001, seed=seed)
    stream: List[DeltaStore] = []
    previous_inserts: Dict[str, List[Row]] = {}
    # Key sequences advance monotonically past everything ever issued —
    # deletes shrink the simulated tables, so resetting the counters to the
    # current length each round would re-issue earlier rounds' keys.
    issued: Dict[str, int] = {name: len(sim.table(name)) for name in names}

    for round_number in range(rounds):
        store = DeltaStore(names)
        round_inserts: Dict[str, List[Row]] = {}
        for name in names:
            current = sim.table(name)
            generator._counters[name] = issued[name]
            insert_count = int(round(len(current) * update_percentage))
            issued[name] += insert_count
            delete_count = int(round(len(current) * update_percentage / 2.0))

            inserts = Relation(current.schema, [], name=f"delta_plus_{name}")
            if insert_count > 0:
                inserts.extend(generator.generate_table(name, cardinality=insert_count))
            round_inserts[name] = list(inserts.rows)

            # Deletes: `overlap` of them target the previous round's inserts
            # (which the simulation has already applied), the rest sample the
            # remaining contents.
            recent = previous_inserts.get(name, [])
            from_recent = min(len(recent), int(round(delete_count * overlap)))
            chosen: List[Row] = []
            if from_recent > 0:
                chosen.extend(rng.sample(recent, from_recent))
            rest = delete_count - from_recent
            if rest > 0:
                pool = multiset_subtract(current.rows, chosen)
                chosen.extend(rng.sample(pool, min(rest, len(pool))))
            deletes = Relation(current.schema, chosen, name=f"delta_minus_{name}")
            store.set_delta(Delta(name, inserts, deletes))

        stream.append(store)
        for delta in store:
            sim.apply_delta(delta)
        previous_inserts = round_inserts
    return stream
