"""Generation of update (delta) batches.

The paper models an "x% update" to a relation as inserting x% as many tuples
as the relation currently holds and deleting x/2% of the current tuples
(twice as many inserts as deletes, modelling a growing warehouse).  This
module turns that specification into concrete :class:`Delta` batches against
an executable database — fresh, referentially consistent tuples for the
inserts and a deterministic sample of existing tuples for the deletes — so
the maintenance machinery can be exercised and verified end to end.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.engine.database import Database
from repro.maintenance.update_spec import UpdateSpec
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation
from repro.workloads.datagen import TpcdDataGenerator


def generate_deltas(
    database: Database,
    spec: UpdateSpec,
    relations: Optional[Sequence[str]] = None,
    seed: int = 2024,
    generator: Optional[TpcdDataGenerator] = None,
) -> DeltaStore:
    """Build a :class:`DeltaStore` realizing ``spec`` against ``database``.

    Inserted tuples are produced by the TPC-D generator (continuing its key
    sequences, so they do not collide with existing primary keys); deleted
    tuples are sampled uniformly from the current contents.
    """
    rng = random.Random(seed)
    names = list(relations) if relations is not None else database.table_names()
    generator = generator or TpcdDataGenerator(scale_factor=0.001, seed=seed)
    # Continue key sequences past what is already loaded.
    for name in names:
        generator._counters[name] = len(database.table(name))

    store = DeltaStore(names)
    for name in names:
        current = database.table(name)
        fractions = spec.for_relation(name)
        insert_count = int(round(len(current) * fractions.insert_fraction))
        delete_count = int(round(len(current) * fractions.delete_fraction))
        delete_count = min(delete_count, len(current))

        inserts = Relation(current.schema, [], name=f"delta_plus_{name}")
        if insert_count > 0:
            inserts.extend(generator.generate_table(name, cardinality=insert_count))

        deletes = Relation(current.schema, [], name=f"delta_minus_{name}")
        if delete_count > 0 and len(current):
            deletes.extend(rng.sample(list(current.rows), delete_count))

        store.set_delta(Delta(name, inserts, deletes))
    return store


def uniform_deltas(
    database: Database,
    update_percentage: float,
    relations: Optional[Sequence[str]] = None,
    seed: int = 2024,
) -> DeltaStore:
    """Deltas for the paper's uniform "x% update" model."""
    names = list(relations) if relations is not None else database.table_names()
    return generate_deltas(database, UpdateSpec.uniform(update_percentage, names), names, seed=seed)
