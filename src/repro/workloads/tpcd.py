"""The TPC-D schema and catalog.

Table and column definitions follow the TPC-D/TPC-H specification (a
representative subset of the columns — the ones the paper's style of
warehouse views join, filter, group and aggregate on — with per-tuple widths
padded so that total table sizes track the benchmark's: ~100 MB at the
paper's scale factor 0.1).

``tpcd_catalog`` builds a :class:`~repro.catalog.Catalog` with declared
statistics at any scale factor *without generating data*: this is what the
benchmark harness uses, mirroring the paper whose numbers are optimizer cost
estimates.  ``tpcd_tables`` exposes the raw definitions for the data
generator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Schema, TableDef
from repro.catalog.statistics import ColumnStats, TableStats

#: Base cardinalities at scale factor 1.0 (TPC-D specification).
BASE_CARDINALITIES: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Tables whose cardinality does not scale with the scale factor.
FIXED_SIZE_TABLES = {"region", "nation"}

#: Approximate tuple widths in bytes (padded to track TPC-D table sizes).
TUPLE_WIDTHS: Dict[str, int] = {
    "region": 120,
    "nation": 128,
    "supplier": 160,
    "customer": 180,
    "part": 156,
    "partsupp": 144,
    "orders": 128,
    "lineitem": 138,
}


def _columns(table: str) -> List[Column]:
    I, F, S, D = ColumnType.INTEGER, ColumnType.FLOAT, ColumnType.STRING, ColumnType.DATE
    layouts: Dict[str, List[Tuple[str, ColumnType]]] = {
        "region": [("r_regionkey", I), ("r_name", S)],
        "nation": [("n_nationkey", I), ("n_name", S), ("n_regionkey", I)],
        "supplier": [
            ("s_suppkey", I),
            ("s_name", S),
            ("s_nationkey", I),
            ("s_acctbal", F),
        ],
        "customer": [
            ("c_custkey", I),
            ("c_name", S),
            ("c_nationkey", I),
            ("c_acctbal", F),
            ("c_mktsegment", S),
        ],
        "part": [
            ("p_partkey", I),
            ("p_name", S),
            ("p_brand", S),
            ("p_type", S),
            ("p_size", I),
            ("p_retailprice", F),
        ],
        "partsupp": [
            ("ps_partkey", I),
            ("ps_suppkey", I),
            ("ps_availqty", I),
            ("ps_supplycost", F),
        ],
        "orders": [
            ("o_orderkey", I),
            ("o_custkey", I),
            ("o_orderstatus", S),
            ("o_totalprice", F),
            ("o_orderdate", I),
            ("o_orderpriority", S),
        ],
        "lineitem": [
            ("l_orderkey", I),
            ("l_partkey", I),
            ("l_suppkey", I),
            ("l_linenumber", I),
            ("l_quantity", F),
            ("l_extendedprice", F),
            ("l_discount", F),
            ("l_returnflag", S),
            ("l_shipdate", I),
        ],
    }
    return [Column(name, ctype) for name, ctype in layouts[table]]


def tpcd_tables() -> Dict[str, TableDef]:
    """Table definitions (schemas, primary keys, foreign keys) for TPC-D."""
    schemas = {name: Schema(tuple(_columns(name))) for name in BASE_CARDINALITIES}
    return {
        "region": TableDef("region", schemas["region"], ("r_regionkey",)),
        "nation": TableDef(
            "nation",
            schemas["nation"],
            ("n_nationkey",),
            (("n_regionkey", "region", "r_regionkey"),),
        ),
        "supplier": TableDef(
            "supplier",
            schemas["supplier"],
            ("s_suppkey",),
            (("s_nationkey", "nation", "n_nationkey"),),
        ),
        "customer": TableDef(
            "customer",
            schemas["customer"],
            ("c_custkey",),
            (("c_nationkey", "nation", "n_nationkey"),),
        ),
        "part": TableDef("part", schemas["part"], ("p_partkey",)),
        "partsupp": TableDef(
            "partsupp",
            schemas["partsupp"],
            ("ps_partkey", "ps_suppkey"),
            (
                ("ps_partkey", "part", "p_partkey"),
                ("ps_suppkey", "supplier", "s_suppkey"),
            ),
        ),
        "orders": TableDef(
            "orders",
            schemas["orders"],
            ("o_orderkey",),
            (("o_custkey", "customer", "c_custkey"),),
        ),
        "lineitem": TableDef(
            "lineitem",
            schemas["lineitem"],
            ("l_orderkey", "l_linenumber"),
            (
                ("l_orderkey", "orders", "o_orderkey"),
                ("l_partkey", "part", "p_partkey"),
                ("l_suppkey", "supplier", "s_suppkey"),
            ),
        ),
    }


def cardinality(table: str, scale_factor: float) -> int:
    """Cardinality of ``table`` at the given scale factor."""
    base = BASE_CARDINALITIES[table]
    if table in FIXED_SIZE_TABLES:
        return base
    return max(1, int(round(base * scale_factor)))


def _column_stats(table: str, scale_factor: float) -> Dict[str, ColumnStats]:
    card = cardinality(table, scale_factor)
    orders_card = cardinality("orders", scale_factor)
    parts_card = cardinality("part", scale_factor)
    suppliers_card = cardinality("supplier", scale_factor)
    customers_card = cardinality("customer", scale_factor)

    stats: Dict[str, ColumnStats] = {}
    key_like = {
        "r_regionkey": 5,
        "n_nationkey": 25,
        "s_suppkey": suppliers_card,
        "c_custkey": customers_card,
        "p_partkey": parts_card,
        "o_orderkey": orders_card,
    }
    for column in _columns(table):
        name = column.name
        if name in key_like:
            stats[name] = ColumnStats(distinct=float(key_like[name]), min_value=1, max_value=key_like[name])
        elif name in ("n_regionkey",):
            stats[name] = ColumnStats(distinct=5, min_value=0, max_value=4)
        elif name in ("s_nationkey", "c_nationkey"):
            stats[name] = ColumnStats(distinct=25, min_value=0, max_value=24)
        elif name == "ps_partkey":
            stats[name] = ColumnStats(distinct=float(parts_card), min_value=1, max_value=parts_card)
        elif name == "ps_suppkey":
            stats[name] = ColumnStats(distinct=float(suppliers_card), min_value=1, max_value=suppliers_card)
        elif name == "o_custkey":
            stats[name] = ColumnStats(distinct=float(customers_card), min_value=1, max_value=customers_card)
        elif name == "l_orderkey":
            stats[name] = ColumnStats(distinct=float(orders_card), min_value=1, max_value=orders_card)
        elif name == "l_partkey":
            stats[name] = ColumnStats(distinct=float(parts_card), min_value=1, max_value=parts_card)
        elif name == "l_suppkey":
            stats[name] = ColumnStats(distinct=float(suppliers_card), min_value=1, max_value=suppliers_card)
        elif name in ("o_orderdate", "l_shipdate"):
            stats[name] = ColumnStats(distinct=2400.0, min_value=0, max_value=2400)
        elif name == "o_orderpriority":
            stats[name] = ColumnStats(distinct=5.0)
        elif name in ("o_orderstatus", "l_returnflag"):
            stats[name] = ColumnStats(distinct=3.0)
        elif name == "c_mktsegment":
            stats[name] = ColumnStats(distinct=5.0)
        elif name == "p_brand":
            stats[name] = ColumnStats(distinct=25.0)
        elif name == "p_type":
            stats[name] = ColumnStats(distinct=150.0)
        elif name == "p_size":
            stats[name] = ColumnStats(distinct=50.0, min_value=1, max_value=50)
        elif name == "l_quantity":
            stats[name] = ColumnStats(distinct=50.0, min_value=1, max_value=50)
        elif name == "l_discount":
            stats[name] = ColumnStats(distinct=11.0, min_value=0.0, max_value=0.1)
        elif name == "l_linenumber":
            stats[name] = ColumnStats(distinct=7.0, min_value=1, max_value=7)
        elif name.endswith("acctbal") or name.endswith("price") or name.endswith("cost"):
            stats[name] = ColumnStats(distinct=min(float(card), 100_000.0), min_value=0.0, max_value=100_000.0)
        elif name == "ps_availqty":
            stats[name] = ColumnStats(distinct=10_000.0, min_value=1, max_value=10_000)
        else:
            stats[name] = ColumnStats(distinct=min(float(card), 1000.0))
    return stats


def table_stats(table: str, scale_factor: float) -> TableStats:
    """Declared statistics for ``table`` at a scale factor."""
    return TableStats(
        cardinality=float(cardinality(table, scale_factor)),
        tuple_width=TUPLE_WIDTHS[table],
        column_stats=_column_stats(table, scale_factor),
    )


def tpcd_catalog(scale_factor: float = 0.1, with_pk_indexes: bool = True) -> Catalog:
    """Build a TPC-D catalog with declared statistics.

    ``with_pk_indexes=True`` matches the paper's default setting ("databases
    have indices on the primary key attributes of each relation"); the
    Figure 5(b) experiment passes ``False`` and lets Greedy choose indexes.
    """
    catalog = Catalog()
    for name, table in tpcd_tables().items():
        catalog.register_table(
            table, stats=table_stats(name, scale_factor), create_pk_index=with_pk_indexes
        )
    return catalog


def total_database_bytes(scale_factor: float) -> float:
    """Approximate total database size in bytes at a scale factor."""
    return sum(
        cardinality(name, scale_factor) * TUPLE_WIDTHS[name] for name in BASE_CARDINALITIES
    )
