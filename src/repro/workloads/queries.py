"""View definitions for the performance study.

These mirror the workloads of the paper's §7.2:

* ``standalone_join_view``    — one view joining 4 TPC-D relations (Figure 3a);
* ``standalone_agg_view``     — aggregation over the same join (Figure 3b);
* ``view_set_plain``          — five related join views sharing
  sub-expressions (Figure 4a);
* ``view_set_aggregate``      — five aggregate views over shared joins
  (Figure 4b);
* ``large_view_set``          — ten views, each a join of 3–4 TPC-D
  relations (Figure 5);
* ``example_3_1_queries`` / ``example_3_2_view`` — the sharing examples of
  §3.3, used by tests and by the sharing-illustration bench.

All views are expressed over the TPC-D schema of
:mod:`repro.workloads.tpcd` using natural foreign-key equi-joins.
"""

from __future__ import annotations

from typing import Dict, List

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Select,
)
from repro.algebra.predicates import lt

# Foreign-key join conditions between TPC-D relations, keyed by an
# (alphabetically ordered) relation pair.
_JOIN_CONDITIONS = {
    ("lineitem", "orders"): ("l_orderkey", "o_orderkey"),
    ("customer", "orders"): ("c_custkey", "o_custkey"),
    ("customer", "nation"): ("c_nationkey", "n_nationkey"),
    ("nation", "supplier"): ("s_nationkey", "n_nationkey"),
    ("lineitem", "supplier"): ("l_suppkey", "s_suppkey"),
    ("lineitem", "part"): ("l_partkey", "p_partkey"),
    ("lineitem", "partsupp"): ("l_partkey", "ps_partkey"),
    ("part", "partsupp"): ("p_partkey", "ps_partkey"),
    ("partsupp", "supplier"): ("ps_suppkey", "s_suppkey"),
    ("nation", "region"): ("n_regionkey", "r_regionkey"),
}


def join_condition(left: str, right: str):
    """The foreign-key join condition between two TPC-D relations."""
    key = tuple(sorted((left, right)))
    if key not in _JOIN_CONDITIONS:
        raise KeyError(f"no natural join between {left} and {right}")
    return _JOIN_CONDITIONS[key]


def chain_join(relations: List[str]) -> Expression:
    """Left-deep join over ``relations``, linking each new relation to the
    first already-joined relation it has a natural join with."""
    expression: Expression = BaseRelation(relations[0])
    joined = [relations[0]]
    for name in relations[1:]:
        condition = None
        for prev in joined:
            key = tuple(sorted((prev, name)))
            if key in _JOIN_CONDITIONS:
                condition = _JOIN_CONDITIONS[key]
                break
        if condition is None:
            raise KeyError(f"cannot connect {name} to {joined}")
        expression = Join(expression, BaseRelation(name), [condition])
        joined.append(name)
    return expression


# --------------------------------------------------------------------- fig. 3

def standalone_join_view() -> Dict[str, Expression]:
    """One view: the join of four relations (Figure 3a)."""
    return {"v_order_details": chain_join(["lineitem", "orders", "customer", "nation"])}


def standalone_agg_view() -> Dict[str, Expression]:
    """One view: aggregation over the same four-relation join (Figure 3b)."""
    join = chain_join(["lineitem", "orders", "customer", "nation"])
    view = Aggregate(
        join,
        ["n_name"],
        [
            AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "revenue"),
            AggregateSpec(AggregateFunc.COUNT, None, "order_lines"),
        ],
    )
    return {"v_revenue_by_nation": view}


# --------------------------------------------------------------------- fig. 4

def view_set_plain() -> Dict[str, Expression]:
    """Five related join views sharing sub-expressions (Figure 4a)."""
    return {
        "v_cust_orders": chain_join(["orders", "customer"]),
        "v_cust_order_lines": chain_join(["lineitem", "orders", "customer"]),
        "v_cust_order_nations": chain_join(["lineitem", "orders", "customer", "nation"]),
        "v_order_nations": chain_join(["orders", "customer", "nation"]),
        "v_supplier_lines": chain_join(["lineitem", "supplier", "nation"]),
    }


def view_set_aggregate() -> Dict[str, Expression]:
    """Five aggregate views over shared joins (Figure 4b)."""
    loc = chain_join(["lineitem", "orders", "customer"])
    locn = chain_join(["lineitem", "orders", "customer", "nation"])
    lsn = chain_join(["lineitem", "supplier", "nation"])
    ocn = chain_join(["orders", "customer", "nation"])
    return {
        "v_revenue_by_customer": Aggregate(
            loc,
            ["c_custkey"],
            [
                AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "revenue"),
                AggregateSpec(AggregateFunc.COUNT, None, "line_count"),
            ],
        ),
        "v_revenue_by_nation": Aggregate(
            locn,
            ["n_name"],
            [
                AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "revenue"),
                AggregateSpec(AggregateFunc.COUNT, None, "line_count"),
            ],
        ),
        "v_quantity_by_nation": Aggregate(
            locn,
            ["n_name"],
            [
                AggregateSpec(AggregateFunc.SUM, "l_quantity", "total_quantity"),
                AggregateSpec(AggregateFunc.COUNT, None, "line_count"),
            ],
        ),
        "v_supply_by_nation": Aggregate(
            lsn,
            ["n_name"],
            [
                AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "supplied_value"),
                AggregateSpec(AggregateFunc.COUNT, None, "line_count"),
            ],
        ),
        "v_orders_by_nation": Aggregate(
            ocn,
            ["n_name"],
            [
                AggregateSpec(AggregateFunc.SUM, "o_totalprice", "order_value"),
                AggregateSpec(AggregateFunc.COUNT, None, "order_count"),
            ],
        ),
    }


# --------------------------------------------------------------------- fig. 5

def large_view_set(with_aggregates: bool = False) -> Dict[str, Expression]:
    """Ten views, each a join of 3–4 TPC-D relations (Figure 5).

    ``with_aggregates=True`` adds a group-by/aggregate on top of half of
    them, for use in ablation benches; the paper's Figure 5 set is pure
    joins.
    """
    joins: Dict[str, Expression] = {
        "v01_order_lines": chain_join(["lineitem", "orders", "customer"]),
        "v02_order_nations": chain_join(["lineitem", "orders", "customer", "nation"]),
        "v03_customer_orders": chain_join(["orders", "customer", "nation"]),
        "v04_supplier_lines": chain_join(["lineitem", "supplier", "nation"]),
        "v05_part_supply": chain_join(["partsupp", "part", "supplier"]),
        "v06_part_lines": chain_join(["lineitem", "part", "orders"]),
        "v07_supply_regions": chain_join(["supplier", "nation", "region"]),
        "v08_customer_regions": chain_join(["customer", "nation", "region"]),
        "v09_supply_lines": chain_join(["lineitem", "partsupp", "supplier"]),
        "v10_order_parts": chain_join(["lineitem", "orders", "part"]),
    }
    if not with_aggregates:
        return joins
    aggregated: Dict[str, Expression] = {}
    for index, (name, expression) in enumerate(joins.items()):
        if index % 2 == 0:
            aggregated[name] = expression
        else:
            group = "n_name" if "nation" in _relations_of(expression) else "o_orderpriority"
            if group == "o_orderpriority" and "orders" not in _relations_of(expression):
                group = "s_nationkey"
            aggregated[name] = Aggregate(
                expression,
                [group],
                [
                    AggregateSpec(AggregateFunc.SUM, _sum_column(expression), "total_value"),
                    AggregateSpec(AggregateFunc.COUNT, None, "row_count"),
                ],
            )
    return aggregated


def _relations_of(expression: Expression):
    from repro.algebra.expressions import base_relations

    return base_relations(expression)


def _sum_column(expression: Expression) -> str:
    relations = _relations_of(expression)
    if "lineitem" in relations:
        return "l_extendedprice"
    if "partsupp" in relations:
        return "ps_supplycost"
    if "orders" in relations:
        return "o_totalprice"
    if "customer" in relations:
        return "c_acctbal"
    return "s_acctbal"


# -------------------------------------------------------------- §3.3 examples

def example_3_1_queries() -> Dict[str, Expression]:
    """Example 3.1: Q1 = (R ⋈ S) ⋈ P, Q2 = (R ⋈ T) ⋈ S.

    Mapped onto TPC-D: R=orders, S=customer, P=lineitem, T=nation, so that
    the alternative plan (orders ⋈ customer) ⋈ nation for Q2 shares
    orders ⋈ customer with Q1.
    """
    q1 = Join(
        Join(BaseRelation("orders"), BaseRelation("customer"), [join_condition("orders", "customer")]),
        BaseRelation("lineitem"),
        [join_condition("lineitem", "orders")],
    )
    q2 = Join(
        Join(BaseRelation("customer"), BaseRelation("nation"), [join_condition("customer", "nation")]),
        BaseRelation("orders"),
        [join_condition("customer", "orders")],
    )
    return {"Q1": q1, "Q2": q2}


def example_3_2_view() -> Dict[str, Expression]:
    """Example 3.2: V = A ⋈ B ⋈ C ⋈ D with inserts on all four relations.

    Mapped onto TPC-D as lineitem ⋈ orders ⋈ customer ⋈ nation.
    """
    return {"V": chain_join(["lineitem", "orders", "customer", "nation"])}


def selection_variant_views() -> Dict[str, Expression]:
    """Views with subsuming selections (σ_{A<5} derivable from σ_{A<10})."""
    base = chain_join(["lineitem", "orders"])
    return {
        "v_big_orders": Select(base, lt("o_totalprice", 100000.0)),
        "v_small_orders": Select(base, lt("o_totalprice", 10000.0)),
    }
