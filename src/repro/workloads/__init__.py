"""TPC-D-style workload substrate.

The paper evaluates on TPC-D (the ancestor of TPC-H) at scale factor 0.1.
This package provides:

* :mod:`repro.workloads.tpcd` — the TPC-D schema (tables, keys, column
  statistics) and a catalog factory parameterized by scale factor;
* :mod:`repro.workloads.datagen` — a deterministic synthetic data generator
  that populates an executable :class:`~repro.engine.Database` with
  referentially consistent data at small scale factors (used by tests and
  examples);
* :mod:`repro.workloads.updategen` — generation of insert/delete batches at
  a given update percentage with the paper's 2:1 insert:delete ratio;
* :mod:`repro.workloads.queries` — the view definitions of the performance
  study: a stand-alone 4-relation join view (with and without aggregation),
  sets of five related views, and the large 10-view set.
"""

from repro.workloads import tpcd, datagen, updategen, queries

__all__ = ["tpcd", "datagen", "updategen", "queries"]
