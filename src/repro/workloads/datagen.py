"""Deterministic synthetic TPC-D data generation.

The paper evaluates against optimizer cost estimates over TPC-D statistics;
executable data is only needed by this reproduction's correctness tests and
examples, which run at tiny scale factors.  The generator is deterministic
(seeded), referentially consistent (every foreign key refers to an existing
parent), and value distributions are uniform — matching the assumptions of
the statistics module, so measured and declared statistics agree.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog
from repro.engine.database import Database
from repro.workloads import tpcd

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_STATUSES = ["F", "O", "P"]
_RETURNFLAGS = ["A", "N", "R"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_TYPES = [f"{p} {m} {k}" for p in ("STANDARD", "SMALL", "MEDIUM") for m in ("ANODIZED", "BRUSHED") for k in ("TIN", "NICKEL", "STEEL")]


class TpcdDataGenerator:
    """Generates referentially consistent TPC-D data at a (small) scale factor."""

    def __init__(self, scale_factor: float = 0.001, seed: int = 42) -> None:
        self.scale_factor = scale_factor
        self.seed = seed
        self._rng = random.Random(seed)
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ sizing

    def cardinality(self, table: str) -> int:
        """Cardinality of ``table`` at this generator's scale factor."""
        return tpcd.cardinality(table, self.scale_factor)

    def _next_key(self, table: str) -> int:
        self._counters[table] = self._counters.get(table, 0) + 1
        return self._counters[table]

    # --------------------------------------------------------------- row makers

    def region_row(self, key: int) -> Tuple:
        return (key, f"REGION_{key}")

    def nation_row(self, key: int, n_regions: int) -> Tuple:
        return (key, f"NATION_{key}", key % max(1, n_regions))

    def supplier_row(self, key: int, n_nations: int) -> Tuple:
        return (key, f"Supplier#{key:09d}", self._rng.randrange(n_nations), round(self._rng.uniform(-999.99, 9999.99), 2))

    def customer_row(self, key: int, n_nations: int) -> Tuple:
        return (
            key,
            f"Customer#{key:09d}",
            self._rng.randrange(n_nations),
            round(self._rng.uniform(-999.99, 9999.99), 2),
            self._rng.choice(_SEGMENTS),
        )

    def part_row(self, key: int) -> Tuple:
        return (
            key,
            f"part {key}",
            self._rng.choice(_BRANDS),
            self._rng.choice(_TYPES),
            self._rng.randint(1, 50),
            round(900 + (key % 1000) * 0.1, 2),
        )

    def partsupp_row(self, part_key: int, supp_key: int) -> Tuple:
        return (part_key, supp_key, self._rng.randint(1, 9999), round(self._rng.uniform(1.0, 1000.0), 2))

    def orders_row(self, key: int, n_customers: int) -> Tuple:
        return (
            key,
            self._rng.randint(1, max(1, n_customers)),
            self._rng.choice(_STATUSES),
            round(self._rng.uniform(100.0, 500000.0), 2),
            self._rng.randint(0, 2400),
            self._rng.choice(_PRIORITIES),
        )

    def lineitem_row(self, order_key: int, line_number: int, n_parts: int, n_suppliers: int) -> Tuple:
        quantity = self._rng.randint(1, 50)
        price = round(quantity * self._rng.uniform(900.0, 2000.0), 2)
        return (
            order_key,
            self._rng.randint(1, max(1, n_parts)),
            self._rng.randint(1, max(1, n_suppliers)),
            line_number,
            float(quantity),
            price,
            round(self._rng.choice([i / 100 for i in range(0, 11)]), 2),
            self._rng.choice(_RETURNFLAGS),
            self._rng.randint(0, 2400),
        )

    # -------------------------------------------------------------- generation

    def generate_table(self, table: str, cardinality: Optional[int] = None) -> List[Tuple]:
        """Generate rows for one table (respecting foreign-key ranges)."""
        count = cardinality if cardinality is not None else self.cardinality(table)
        n_nations = self.cardinality("nation")
        n_regions = self.cardinality("region")
        n_customers = self.cardinality("customer")
        n_parts = self.cardinality("part")
        n_suppliers = self.cardinality("supplier")

        if table == "region":
            return [self.region_row(i) for i in range(count)]
        if table == "nation":
            return [self.nation_row(i, n_regions) for i in range(count)]
        if table == "supplier":
            return [self.supplier_row(self._next_key("supplier"), n_nations) for _ in range(count)]
        if table == "customer":
            return [self.customer_row(self._next_key("customer"), n_nations) for _ in range(count)]
        if table == "part":
            return [self.part_row(self._next_key("part")) for _ in range(count)]
        if table == "partsupp":
            rows = []
            for _ in range(count):
                rows.append(
                    self.partsupp_row(
                        self._rng.randint(1, max(1, n_parts)), self._rng.randint(1, max(1, n_suppliers))
                    )
                )
            return rows
        if table == "orders":
            return [self.orders_row(self._next_key("orders"), n_customers) for _ in range(count)]
        if table == "lineitem":
            n_orders = max(1, self._counters.get("orders", self.cardinality("orders")))
            rows = []
            for i in range(count):
                order_key = self._rng.randint(1, n_orders)
                rows.append(self.lineitem_row(order_key, (i % 7) + 1, n_parts, n_suppliers))
            return rows
        raise KeyError(f"unknown TPC-D table {table!r}")

    def populate(self, database: Optional[Database] = None, tables: Optional[Sequence[str]] = None) -> Database:
        """Create and fill a :class:`Database` with generated data.

        ``tables`` restricts generation (views touching only a few relations
        do not need the full schema); parents are generated before children
        so foreign keys stay consistent.
        """
        database = database or Database(Catalog())
        order = ["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"]
        wanted = set(tables) if tables is not None else set(order)
        definitions = tpcd.tpcd_tables()
        for name in order:
            if name not in wanted:
                continue
            rows = self.generate_table(name)
            database.create_table(definitions[name], rows)
            for index in _pk_indexes(name, definitions):
                database.build_index(index)
        return database


def _pk_indexes(name: str, definitions) -> List:
    from repro.catalog.catalog import IndexDef

    table = definitions[name]
    if not table.primary_key:
        return []
    return [IndexDef(name, tuple(table.primary_key), kind="btree", unique=True)]


def small_database(scale_factor: float = 0.001, seed: int = 7, tables: Optional[Sequence[str]] = None) -> Database:
    """Convenience: a populated database suitable for tests and examples."""
    return TpcdDataGenerator(scale_factor=scale_factor, seed=seed).populate(tables=tables)
