"""Thread-synchronization primitives for the serving layer (and the façade).

This module is the *only* place in the repository that imports
:mod:`threading` outside :mod:`repro.parallel` — the REPRO-L009 invariant
(see ``tools/lint_invariants.py``).  Everything that needs a lock, an event
or a worker thread takes it from here, the same way every consumer of numpy
goes through the :mod:`repro.storage.columns` re-export: concurrency stays
auditable in one spot, and layers that must remain deterministic and
single-threaded cannot quietly grow threads.

The names are straight re-exports, not wrappers: a
:class:`~threading.Lock` is already the right primitive, it just is not
allowed to be *imported* anywhere else.
"""

from __future__ import annotations

import threading

#: Mutual exclusion (``with Mutex(): ...``).
Mutex = threading.Lock
#: Reentrant mutual exclusion, for lock-holding methods calling each other.
ReentrantMutex = threading.RLock
#: Condition variable over a mutex (publish/subscribe on state changes).
Condition = threading.Condition
#: One-shot / resettable flag with blocking wait.
Event = threading.Event
#: A worker thread (the refresh daemon).
Thread = threading.Thread


def current_thread_name() -> str:
    """Name of the calling thread (crash reports name the daemon thread)."""
    return threading.current_thread().name


__all__ = [
    "Mutex",
    "ReentrantMutex",
    "Condition",
    "Event",
    "Thread",
    "current_thread_name",
]
