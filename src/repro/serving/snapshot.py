"""Versioned copy-on-write view snapshots.

A *snapshot* is the set of materialized view contents a refresh commit
published, tagged with a monotonically increasing version number and the
update round it is current as of.  Readers :meth:`~SnapshotManager.pin` the
latest snapshot and read from it for as long as they like: refresh commits
publish *new* snapshots, they never touch a published one, so a pinned
reader can never observe torn or mid-refresh state.

The snapshots are copy-on-write for free, by construction: the refresh
machinery in :class:`~repro.engine.database.Database` always *replaces* a
view's :class:`~repro.storage.relation.Relation` object when merging a
differential or rematerializing (``_apply_insert`` / ``_apply_delete`` /
``materialize_view`` all build new relations), and relation row storage is
never mutated outside ``storage/relation.py`` (the REPRO-L003 lint).  A
snapshot therefore just captures object references — publishing costs O(
views), not O(rows) — and the old version's relations stay exactly as they
were for every reader still pinned to them.

Retirement mirrors the pinning: a version that is no longer current is
dropped the moment its last reader unpins (or immediately at publish time
when nobody pinned it), so memory holds at most ``1 + live readers``
versions of each view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.serving.sync import Condition, Mutex
from repro.storage.relation import Relation


class SnapshotError(RuntimeError):
    """Misuse of the snapshot layer (pin before publish, read after close)."""


@dataclass
class _SnapshotVersion:
    """One published version: immutable contents plus a pin count."""

    version: int
    as_of_round: int
    views: Dict[str, Relation]
    pins: int = 0


@dataclass
class SnapshotStats:
    """Counters ``explain_serving()`` renders."""

    published: int = 0
    retired: int = 0
    live_versions: int = 0
    current_version: int = 0
    pinned_readers: int = 0


class SnapshotHandle:
    """A reader's pin on one snapshot version.

    The handle is what query code reads through: :meth:`view` returns the
    pinned version's contents no matter how many refresh commits publish
    newer versions concurrently.  Close it (or use it as a context manager)
    to release the pin so superseded versions can be retired; reading
    through a closed handle raises.
    """

    def __init__(self, manager: "SnapshotManager", state: _SnapshotVersion) -> None:
        self._manager = manager
        self._state = state
        self._closed = False

    @property
    def version(self) -> int:
        """The monotonic snapshot version this handle is pinned to."""
        return self._state.version

    @property
    def as_of_round(self) -> int:
        """Ingested update rounds reflected in this snapshot."""
        return self._state.as_of_round

    @property
    def view_names(self) -> List[str]:
        """Views this snapshot carries."""
        return list(self._state.views)

    def view(self, name: str) -> Relation:
        """The pinned contents of one view (never a later version's)."""
        if self._closed:
            raise SnapshotError(
                f"snapshot handle v{self._state.version} is closed — pin a "
                f"fresh one"
            )
        try:
            return self._state.views[name]
        except KeyError as exc:
            raise SnapshotError(
                f"snapshot v{self._state.version} does not serve view {name!r} "
                f"(serves: {', '.join(sorted(self._state.views)) or 'none'})"
            ) from exc

    def close(self) -> None:
        """Release the pin (idempotent)."""
        if not self._closed:
            self._closed = True
            self._manager._unpin(self._state)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "pinned"
        return f"<SnapshotHandle v{self._state.version} round={self._state.as_of_round} {state}>"


class SnapshotManager:
    """Publishes versioned snapshots and tracks reader pins.

    One writer (the refresh daemon) calls :meth:`publish` at each refresh
    commit; any number of reader threads call :meth:`pin`.  All state
    transitions happen under one mutex and are O(1) in the data size — the
    contents themselves are shared by reference (see the module docstring
    for why that is safe).
    """

    def __init__(self) -> None:
        self._mutex = Mutex()
        #: Signalled at every publish — block-until-fresh readers wait here.
        self.published_event = Condition(self._mutex)
        self._current: Optional[_SnapshotVersion] = None
        self._superseded: List[_SnapshotVersion] = []
        self._next_version = 1
        self._published = 0
        self._retired = 0

    # ----------------------------------------------------------------- write

    def publish(self, views: Mapping[str, Relation], as_of_round: int) -> int:
        """Atomically publish a new current snapshot; returns its version.

        Superseded versions without readers are retired on the spot; pinned
        ones survive until their last reader unpins.
        """
        with self._mutex:
            state = _SnapshotVersion(
                version=self._next_version,
                as_of_round=as_of_round,
                views=dict(views),
            )
            self._next_version += 1
            previous = self._current
            self._current = state
            self._published += 1
            if previous is not None:
                if previous.pins == 0:
                    self._retire(previous)
                else:
                    self._superseded.append(previous)
            self.published_event.notify_all()
            return state.version

    def _retire(self, state: _SnapshotVersion) -> None:
        state.views = {}
        self._retired += 1

    # ------------------------------------------------------------------ read

    def pin(self) -> SnapshotHandle:
        """Pin the current snapshot and return a read handle."""
        with self._mutex:
            if self._current is None:
                raise SnapshotError(
                    "no snapshot published yet — the serving session "
                    "publishes the first one before accepting readers"
                )
            self._current.pins += 1
            return SnapshotHandle(self, self._current)

    def _unpin(self, state: _SnapshotVersion) -> None:
        with self._mutex:
            state.pins -= 1
            if state.pins == 0 and state is not self._current:
                self._superseded.remove(state)
                self._retire(state)

    # ------------------------------------------------------------ inspection

    @property
    def current_version(self) -> int:
        """Version of the current snapshot (0 before the first publish)."""
        with self._mutex:
            return self._current.version if self._current is not None else 0

    @property
    def current_round(self) -> int:
        """As-of round of the current snapshot (0 before the first publish)."""
        with self._mutex:
            return self._current.as_of_round if self._current is not None else 0

    def stats(self) -> SnapshotStats:
        """Point-in-time counters (versions published/retired/live, pins)."""
        with self._mutex:
            live = (1 if self._current is not None else 0) + len(self._superseded)
            pins = (self._current.pins if self._current is not None else 0) + sum(
                state.pins for state in self._superseded
            )
            return SnapshotStats(
                published=self._published,
                retired=self._retired,
                live_versions=live,
                current_version=(
                    self._current.version if self._current is not None else 0
                ),
                pinned_readers=pins,
            )
