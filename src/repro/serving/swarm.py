"""A threaded client swarm over a serving session (the benchmark driver).

:func:`run_client_swarm` hammers one
:class:`~repro.api.serving.ServingSession` with N reader threads issuing
point queries round-robin over the served views while the calling thread
plays the update producer, ingesting a churn stream of update rounds.  It
records what the serving benchmark needs:

* per-read **latency** (monotonic ``perf_counter`` intervals — this module
  lives in the ``repro/serving/`` timing allowlist) with p50/p99
  percentiles and overall throughput;
* the **maximum staleness** any admitted read observed, per the SLO
  accounting (rounds and rows), plus degraded/rejected counts;
* every **distinct (view, version)** relation served, with its as-of
  round — the hook for serial-oracle verification: snapshot contents are
  immutable per version, so checking each distinct version against a
  serial replay of rounds ``1..as_of`` verifies *every* read that was
  served from it, without comparing bags per query.

The driver is deliberately free of policy: admission control, SLOs and
refresh scheduling all live in the session; the swarm only reads, writes
and measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.sync import Event, Mutex, Thread
from repro.storage.relation import Relation


@dataclass
class SwarmResult:
    """Everything one swarm run measured."""

    #: Reads that were admitted (served a snapshot, degraded or not).
    queries: int = 0
    #: Admitted reads served beyond their SLO (``degraded=True``).
    degraded: int = 0
    #: Reads shed by the ``reject`` policy.
    rejected: int = 0
    #: Ingest rounds the producer pushed.
    ingested_rounds: int = 0
    #: Ingests shed because the write queue was full.
    shed_ingests: int = 0
    #: Wall-clock seconds between the first read and the last join.
    elapsed_seconds: float = 0.0
    #: Latency percentiles over admitted reads, milliseconds.
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    throughput_qps: float = 0.0
    #: Worst staleness any admitted read observed (SLO accounting units).
    max_staleness_rounds: int = 0
    max_staleness_rows: int = 0
    #: Worst staleness among *non-degraded* reads only — admission control
    #: guarantees this never exceeds the view's SLO bound.
    max_fresh_staleness_rounds: int = 0
    max_fresh_staleness_rows: int = 0
    #: Every distinct (view, version) relation served, with its as-of round.
    served_versions: Dict[Tuple[str, int], Tuple[Relation, int]] = field(
        default_factory=dict
    )
    #: Unexpected reader-thread errors (empty on a healthy run).
    errors: List[str] = field(default_factory=list)


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def run_client_swarm(
    session,
    views: Sequence[str],
    batches: Sequence[object],
    *,
    readers: int = 4,
    read_policy: Optional[str] = None,
    settle: bool = True,
) -> SwarmResult:
    """Run ``readers`` query threads against ``session`` while ingesting.

    The calling thread ingests ``batches`` (each any shape ``ingest()``
    accepts) and — with ``settle`` — flushes at the end; reader threads
    query the given views round-robin as fast as admission control lets
    them, until the producer is done.  Returns the aggregated
    :class:`SwarmResult`.
    """
    from repro.api.errors import StaleReadError

    if not views:
        raise ValueError("run_client_swarm needs at least one view to query")
    stop = Event()
    mutex = Mutex()
    result = SwarmResult()
    latencies: List[float] = []

    def reader(offset: int) -> None:
        local_latencies: List[float] = []
        local_queries = 0
        local_degraded = 0
        local_rejected = 0
        local_rounds = 0
        local_rows = 0
        local_fresh_rounds = 0
        local_fresh_rows = 0
        local_versions: Dict[Tuple[str, int], Tuple[Relation, int]] = {}
        position = offset
        while not stop.is_set():
            view = views[position % len(views)]
            position += 1
            started = time.perf_counter()
            try:
                served = session.query(view, read_policy=read_policy)
            except StaleReadError:
                local_rejected += 1
                continue
            except Exception as exc:  # surfaced daemon crash etc.
                with mutex:
                    result.errors.append(f"{type(exc).__name__}: {exc}")
                return
            local_latencies.append(time.perf_counter() - started)
            local_queries += 1
            if served.degraded:
                local_degraded += 1
            else:
                local_fresh_rounds = max(local_fresh_rounds, served.staleness.rounds)
                local_fresh_rows = max(local_fresh_rows, served.staleness.rows)
            local_rounds = max(local_rounds, served.staleness.rounds)
            local_rows = max(local_rows, served.staleness.rows)
            local_versions[(view, served.version)] = (
                served.relation,
                served.as_of_round,
            )
        with mutex:
            latencies.extend(local_latencies)
            result.queries += local_queries
            result.degraded += local_degraded
            result.rejected += local_rejected
            result.max_staleness_rounds = max(
                result.max_staleness_rounds, local_rounds
            )
            result.max_staleness_rows = max(result.max_staleness_rows, local_rows)
            result.max_fresh_staleness_rounds = max(
                result.max_fresh_staleness_rounds, local_fresh_rounds
            )
            result.max_fresh_staleness_rows = max(
                result.max_fresh_staleness_rows, local_fresh_rows
            )
            result.served_versions.update(local_versions)

    threads = [
        Thread(target=reader, args=(index,), name=f"swarm-reader-{index}", daemon=True)
        for index in range(readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    try:
        from repro.api.errors import ServingError

        for batch in batches:
            try:
                session.ingest(batch)
                result.ingested_rounds += 1
            except ServingError:
                result.shed_ingests += 1
        if settle:
            session.flush(timeout=120.0)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
    result.elapsed_seconds = time.perf_counter() - started
    latencies.sort()
    result.p50_ms = _percentile(latencies, 0.50) * 1000.0
    result.p99_ms = _percentile(latencies, 0.99) * 1000.0
    if result.elapsed_seconds > 0:
        result.throughput_qps = result.queries / result.elapsed_seconds
    return result
