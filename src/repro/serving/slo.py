"""Per-view freshness SLOs and read-degradation policies.

Litwin's stored-and-inherited framing (PAPERS.md) is the shape of the read
path here: a served view is a *stored* snapshot plus an *inherited*
freshness bound, and the serving layer's job is to keep that bound honest
at minimum maintenance cost.  A :class:`FreshnessSLO` states the bound —
how far a served snapshot may trail the ingested update stream, in
**rounds** (update batches not yet reflected), **rows** (base-table delta
tuples not yet propagated) and/or **seconds** (age of the oldest pending
ingest).  :class:`Staleness` is the measured counterpart; comparing the two
yields either ``None`` (within bound) or the human-readable reason the
bound is violated.

The SLO acts on both sides of the serving layer:

* **Scheduler side (hard bound).**  The refresh daemon lets the PR 5
  cost-based scheduler defer refreshes while deferral pays, but overrides
  any ``defer`` verdict that would leave some view's staleness past its
  SLO — the bound is *layered over* the cost model, never traded against
  it.
* **Read side (admission control).**  When the daemon has fallen behind
  anyway (a slow flush, a paused daemon, a burst of ingests), each read is
  admitted per :data:`ReadPolicy`: ``serve-stale`` serves the pinned
  snapshot immediately and flags the result as degraded;  ``block`` waits —
  up to a timeout — for a fresh-enough snapshot to be published; ``reject``
  sheds the read with :class:`~repro.api.errors.StaleReadError` so the
  client can retry elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Admission-control policies for reads that would violate their view's SLO.
READ_POLICIES: Tuple[str, ...] = ("serve-stale", "block", "reject")


@dataclass(frozen=True)
class Staleness:
    """How far a served snapshot trails the ingested stream, for one view."""

    #: Ingested update rounds touching the view not yet in the snapshot.
    rounds: int = 0
    #: Pending delta rows (insert + delete) over the view's base relations.
    rows: int = 0
    #: Age in seconds of the oldest pending ingest touching the view
    #: (``0.0`` when nothing is pending).
    seconds: float = 0.0

    @property
    def fresh(self) -> bool:
        """Whether nothing at all is pending for the view."""
        return self.rounds == 0 and self.rows == 0

    def render(self) -> str:
        return (
            f"{self.rounds} rounds / {self.rows} rows / "
            f"{self.seconds:.3f}s behind"
        )


@dataclass(frozen=True)
class FreshnessSLO:
    """Maximum staleness a served view tolerates (``None`` = unbounded).

    All three bounds are inclusive: a snapshot trailing by *exactly*
    ``max_rounds`` rounds still satisfies the SLO; one more pending round
    violates it.  An SLO with every bound ``None`` never forces a refresh
    and never degrades a read — cost-based deferral alone decides.
    """

    #: Most ingested-but-unapplied update rounds the view tolerates.
    max_rounds: Optional[int] = None
    #: Most pending delta rows over the view's base relations.
    max_rows: Optional[int] = None
    #: Longest a pending ingest may wait before a refresh is forced.
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError(f"max_rows must be positive, got {self.max_rows}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError(f"max_seconds must be positive, got {self.max_seconds}")

    @property
    def unbounded(self) -> bool:
        """Whether this SLO can never be violated."""
        return self.max_rounds is None and self.max_rows is None and self.max_seconds is None

    def violation(self, staleness: Staleness) -> Optional[str]:
        """Why ``staleness`` violates this SLO, or ``None`` when it does not."""
        if self.max_rounds is not None and staleness.rounds > self.max_rounds:
            return f"{staleness.rounds} rounds pending > max_rounds={self.max_rounds}"
        if self.max_rows is not None and staleness.rows > self.max_rows:
            return f"{staleness.rows} rows pending > max_rows={self.max_rows}"
        if self.max_seconds is not None and staleness.seconds > self.max_seconds:
            return (
                f"oldest pending ingest {staleness.seconds:.3f}s old > "
                f"max_seconds={self.max_seconds}"
            )
        return None

    def satisfied_by(self, staleness: Staleness) -> bool:
        """Whether ``staleness`` is within every configured bound."""
        return self.violation(staleness) is None

    def render(self) -> str:
        if self.unbounded:
            return "unbounded"
        parts = []
        if self.max_rounds is not None:
            parts.append(f"≤{self.max_rounds} rounds")
        if self.max_rows is not None:
            parts.append(f"≤{self.max_rows} rows")
        if self.max_seconds is not None:
            parts.append(f"≤{self.max_seconds:g}s")
        return ", ".join(parts)


def validate_read_policy(policy: str) -> str:
    """Return ``policy`` if known, raise ``ValueError`` otherwise."""
    if policy not in READ_POLICIES:
        raise ValueError(
            f"unknown read policy {policy!r} (choose from "
            f"{', '.join(READ_POLICIES)})"
        )
    return policy
