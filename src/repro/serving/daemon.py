"""The background refresh daemon: one thread owning the scheduler tick loop.

:class:`RefreshDaemon` is the single writer of the serving layer.  Client
threads :meth:`submit` update batches into a bounded FIFO write queue and
return immediately; the daemon thread dequeues them in order, resolves them
into concrete deltas, runs each through the PR 5
:class:`~repro.stream.StreamScheduler` tick, and — when the scheduler (or a
:class:`~repro.serving.slo.FreshnessSLO`) says deferral stopped paying —
flushes the pending rounds through the warehouse refresher and publishes a
new :class:`~repro.serving.snapshot.SnapshotManager` version.

Because *all* resolution, refresh and publication happens on this one
thread, the engine underneath (database, refresher, shard pool, key
high-water marks) stays effectively single-threaded: readers only ever
touch published snapshots, never the live views.  The daemon holds one
mutex for its queue/staleness bookkeeping and never calls into the engine
while holding it.

The SLO is layered *over* the cost model, never traded against it: after
each tick, if any view's staleness exceeds its SLO and the scheduler said
``defer``, the daemon overrides the verdict to ``refresh`` (the decision
trace records the override and its reason).  Time-based bounds
(``max_seconds``) are additionally checked on an idle tick every
``tick_seconds``, so a quiet queue cannot let a pending round age past its
promise.

Failure model mirrors the stream session: the refresh path is
non-transactional, so any exception on the daemon thread **poisons the
daemon** — the crash is captured, the thread exits, and the next client
call observes it through :meth:`check` (the session translates it into a
``ServingError``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Mapping, Optional, Sequence, Tuple

from repro.serving.slo import FreshnessSLO, Staleness
from repro.serving.snapshot import SnapshotManager
from repro.serving.sync import Condition, Mutex, Thread
from repro.storage.delta import DeltaStore
from repro.storage.relation import Relation
from repro.stream import StreamScheduler


class DaemonCrash(RuntimeError):
    """The refresh daemon died; the original exception is the ``__cause__``."""


class IngestOverflow(RuntimeError):
    """The write queue is full — the ingest was shed, nothing was enqueued."""


@dataclass
class _Command:
    """One queued client request (an update round, or an explicit flush)."""

    kind: str  # "ingest" | "flush"
    seq: int
    enqueued_at: float
    batch: object = None
    seed: Optional[int] = None
    #: Known delta rows at enqueue time (0 for specs, resolved at tick time).
    rows_hint: int = 0


@dataclass
class _TickedRound:
    """One round the scheduler absorbed but a flush has not yet applied."""

    enqueued_at: float
    rows: int
    views: Tuple[str, ...]


@dataclass
class DaemonStats:
    """Counters ``explain_serving()`` renders."""

    ticks: int = 0
    flushes: int = 0
    skipped_flushes: int = 0
    slo_overrides: int = 0
    timeout_flushes: int = 0
    queue_peak: int = 0
    as_of_round: int = 0
    alive: bool = False
    crashed: bool = False


class RefreshDaemon:
    """Background thread that owns ingestion, refresh and snapshot publish.

    The daemon is wired with callables instead of a ``Warehouse`` so the
    serving package never imports the façade (the dependency points the
    other way):

    ``resolve(batch, seed)``
        Turn a queued batch into a concrete :class:`DeltaStore`.  Runs on
        the daemon thread — it may read the database (spec-driven delta
        generation does).
    ``flush(rounds)``
        Apply + refresh the taken rounds (non-transactional), returning the
        refresh report.  Runs on the daemon thread.
    ``capture()``
        The current view contents to publish as the next snapshot.
    ``views_of(deltas)``
        Which served views a round's relations feed (staleness accounting).
    ``slo_for(view)``
        The view's :class:`FreshnessSLO`.
    """

    def __init__(
        self,
        *,
        scheduler: StreamScheduler,
        snapshots: SnapshotManager,
        resolve: Callable[[object, Optional[int]], DeltaStore],
        flush: Callable[[Sequence[DeltaStore]], object],
        capture: Callable[[], Mapping[str, Relation]],
        views_of: Callable[[DeltaStore], Sequence[str]],
        slo_for: Callable[[str], FreshnessSLO],
        view_names: Sequence[str],
        queue_capacity: int = 1024,
        tick_seconds: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be positive, got {queue_capacity}")
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be positive, got {tick_seconds}")
        self.scheduler = scheduler
        self.snapshots = snapshots
        self._resolve = resolve
        self._flush_rounds = flush
        self._capture = capture
        self._views_of = views_of
        self._slo_for = slo_for
        self._view_names = list(view_names)
        self._capacity = queue_capacity
        self._tick_seconds = tick_seconds
        self._clock = clock

        self._mutex = Mutex()
        #: Signalled on every state change: enqueue, tick, flush, stop, crash.
        self._progress = Condition(self._mutex)
        self._queue: Deque[_Command] = deque()
        self._ticked: List[_TickedRound] = []
        self._enqueued_seq = 0
        self._processed_seq = 0
        self._as_of = 0
        self._paused = False
        self._stopping = False
        self._final_flush = False
        self._crash: Optional[BaseException] = None
        self._thread: Optional[Thread] = None

        #: Refresh reports of every flush, in order (daemon thread appends).
        self.reports: List[object] = []
        #: Daemon-side decision log (SLO overrides, forced flushes, publishes).
        self.events: List[str] = []
        self._stats = DaemonStats()

    # ----------------------------------------------------------------- control

    def start(self) -> None:
        """Start the refresh thread (call exactly once)."""
        if self._thread is not None:
            raise RuntimeError("refresh daemon already started")
        self._thread = Thread(
            target=self._run, name="repro-serving-refresh", daemon=True
        )
        self._thread.start()

    def stop(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the thread; with ``drain`` the queue is processed and pending
        rounds get a final flush first (mirrors ``StreamSession.close()``)."""
        with self._mutex:
            self._stopping = True
            self._paused = False
            if drain:
                self._final_flush = True
            else:
                self._queue.clear()
            self._progress.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def pause(self) -> None:
        """Freeze the daemon (queue keeps accepting; nothing ticks/flushes).

        Test hook: lets staleness build up deterministically so degradation
        policies can be exercised without timing races.
        """
        with self._mutex:
            self._paused = True
            self._progress.notify_all()

    def resume(self) -> None:
        with self._mutex:
            self._paused = False
            self._progress.notify_all()

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------ client calls

    def check(self) -> None:
        """Surface a daemon crash into the calling thread (else no-op)."""
        with self._mutex:
            crash = self._crash
        if crash is not None:
            raise DaemonCrash(
                f"the refresh daemon crashed: {type(crash).__name__}: {crash}"
            ) from crash

    def submit(
        self, batch: object, seed: Optional[int], rows_hint: int = 0
    ) -> int:
        """Enqueue one update round; returns its sequence number.

        Non-blocking: raises :class:`IngestOverflow` when the queue is at
        capacity instead of waiting (deterministic shedding — the caller
        decides whether to retry, flush, or drop).
        """
        self.check()
        with self._mutex:
            if self._stopping:
                raise DaemonCrash("the refresh daemon is stopped")
            queued = sum(1 for c in self._queue if c.kind == "ingest")
            if queued >= self._capacity:
                raise IngestOverflow(
                    f"serving write queue is full ({self._capacity} rounds "
                    f"pending) — the ingest was shed"
                )
            return self._enqueue("ingest", batch=batch, seed=seed, rows_hint=rows_hint)

    def request_flush(self) -> int:
        """Enqueue an explicit flush barrier; returns its sequence number."""
        self.check()
        with self._mutex:
            if self._stopping:
                raise DaemonCrash("the refresh daemon is stopped")
            return self._enqueue("flush")

    def _enqueue(self, kind: str, **kwargs) -> int:
        self._enqueued_seq += 1
        command = _Command(
            kind=kind,
            seq=self._enqueued_seq,
            enqueued_at=self._clock(),
            **kwargs,
        )
        self._queue.append(command)
        self._stats.queue_peak = max(self._stats.queue_peak, len(self._queue))
        self._progress.notify_all()
        return command.seq

    def wait_processed(self, seq: int, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has processed command ``seq``.

        Returns ``False`` on timeout; raises :class:`DaemonCrash` if the
        daemon died before getting there.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._mutex:
            while self._processed_seq < seq:
                if self._crash is not None:
                    break
                if self._stopping and not self._queue:
                    break
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._progress.wait(timeout=remaining)
        self.check()
        with self._mutex:
            return self._processed_seq >= seq

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until everything enqueued so far has been processed."""
        with self._mutex:
            target = self._enqueued_seq
        return self.wait_processed(target, timeout=timeout)

    def staleness(self, view: str) -> Staleness:
        """The view's current staleness (queued + ticked, unflushed rounds)."""
        self.check()
        with self._mutex:
            return self._staleness_locked(view, self._clock())

    def wait_until_fresh(
        self, view: str, slo: FreshnessSLO, timeout: float
    ) -> bool:
        """Block until the view satisfies ``slo`` (or the timeout lapses).

        The block-until-fresh read policy.  Returns whether the view became
        fresh enough; a daemon crash while waiting raises.
        """
        deadline = self._clock() + timeout
        with self._mutex:
            while True:
                if self._crash is not None:
                    break
                staleness = self._staleness_locked(view, self._clock())
                if slo.satisfied_by(staleness):
                    return True
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._progress.wait(timeout=remaining)
        self.check()
        return False  # pragma: no cover - check() always raises here

    @property
    def as_of_round(self) -> int:
        """Ingested rounds reflected in the published snapshots so far."""
        with self._mutex:
            return self._as_of

    def stats(self) -> DaemonStats:
        """Point-in-time counters for ``explain_serving()``."""
        with self._mutex:
            return DaemonStats(
                ticks=self._stats.ticks,
                flushes=self._stats.flushes,
                skipped_flushes=self._stats.skipped_flushes,
                slo_overrides=self._stats.slo_overrides,
                timeout_flushes=self._stats.timeout_flushes,
                queue_peak=self._stats.queue_peak,
                as_of_round=self._as_of,
                alive=self.alive,
                crashed=self._crash is not None,
            )

    # -------------------------------------------------------------- the thread

    def _run(self) -> None:
        try:
            while True:
                command: Optional[_Command] = None
                with self._mutex:
                    if self._queue and not self._paused:
                        command = self._queue.popleft()
                    elif self._stopping:
                        break
                    else:
                        self._progress.wait(timeout=self._tick_seconds)
                        if self._paused:
                            continue
                        # Idle wake: nothing queued, but pending rounds may
                        # have aged past a max_seconds bound.
                        if self._queue or not self._ticked:
                            continue
                if command is not None:
                    self._execute(command)
                else:
                    self._idle_tick()
            if self._final_flush:
                self._flush("final flush at close")
        except BaseException as exc:
            with self._mutex:
                self._crash = exc
                self._stopping = True
                self.events.append(
                    f"daemon crashed: {type(exc).__name__}: {exc}"
                )
                self._progress.notify_all()

    def _execute(self, command: _Command) -> None:
        if command.kind == "flush":
            self._flush("explicit flush requested")
        else:
            self._tick(command)
        with self._mutex:
            self._processed_seq = max(self._processed_seq, command.seq)
            self._progress.notify_all()

    def _tick(self, command: _Command) -> None:
        deltas = self._resolve(command.batch, command.seed)
        decision = self.scheduler.ingest(deltas)
        views = tuple(self._views_of(deltas))
        with self._mutex:
            self._stats.ticks += 1
            self._ticked.append(
                _TickedRound(
                    enqueued_at=command.enqueued_at,
                    rows=deltas.total_rows(),
                    views=views,
                )
            )
            violation = None
            if not decision.refreshes:
                violation = self._slo_violation_locked(self._clock())
        if violation is not None:
            view, reason = violation
            self.scheduler.override_last(
                "refresh", f"freshness SLO on {view!r}: {reason}"
            )
            with self._mutex:
                self._stats.slo_overrides += 1
                self.events.append(
                    f"tick {self._stats.ticks}: overrode defer — SLO on "
                    f"{view!r}: {reason}"
                )
            decision = self.scheduler.decisions[-1]
        if decision.refreshes:
            self._flush(decision.reason)

    def _idle_tick(self) -> None:
        """Queue was quiet for a full tick: enforce time-based SLOs."""
        with self._mutex:
            violation = self._slo_violation_locked(self._clock())
        if violation is not None:
            view, reason = violation
            with self._mutex:
                self._stats.timeout_flushes += 1
                self.events.append(
                    f"idle tick: forced flush — SLO on {view!r}: {reason}"
                )
            self._flush(f"freshness SLO on {view!r}: {reason}")

    def _flush(self, reason: str) -> None:
        rounds = self.scheduler.take()
        if rounds:
            report = self._flush_rounds(rounds)
            self.reports.append(report)
        with self._mutex:
            if not rounds and not self._ticked:
                return
            if not rounds:
                self._stats.skipped_flushes += 1
            else:
                self._stats.flushes += 1
            self._as_of += len(self._ticked)
            self._ticked = []
            as_of = self._as_of
        version = self.snapshots.publish(self._capture(), as_of)
        with self._mutex:
            self.events.append(
                f"published snapshot v{version} as of round {as_of} [{reason}]"
            )
            self._progress.notify_all()

    # ---------------------------------------------------------- staleness math

    def _staleness_locked(self, view: str, now: float) -> Staleness:
        rounds = 0
        rows = 0
        oldest: Optional[float] = None
        for record in self._ticked:
            if view in record.views:
                rounds += 1
                rows += record.rows
                if oldest is None or record.enqueued_at < oldest:
                    oldest = record.enqueued_at
        for command in self._queue:
            if command.kind != "ingest":
                continue
            # Unresolved rounds conservatively count against every view.
            rounds += 1
            rows += command.rows_hint
            if oldest is None or command.enqueued_at < oldest:
                oldest = command.enqueued_at
        seconds = 0.0 if oldest is None else max(0.0, now - oldest)
        return Staleness(rounds=rounds, rows=rows, seconds=seconds)

    def _slo_violation_locked(self, now: float) -> Optional[Tuple[str, str]]:
        """First (view, reason) whose SLO the current staleness violates."""
        for view in self._view_names:
            slo = self._slo_for(view)
            if slo.unbounded:
                continue
            reason = slo.violation(self._staleness_locked(view, now))
            if reason is not None:
                return view, reason
        return None

    # -------------------------------------------------------------------- text

    def render_events(self) -> str:
        """The daemon-side event log, one line each."""
        with self._mutex:
            events = list(self.events)
        if not events:
            return "(no daemon events)"
        return "\n".join(events)
