"""The concurrent serving layer: snapshot reads, refresh daemon, SLOs.

The ROADMAP's production framing needs more than a single-caller
``Warehouse``: a serving tier where many reader threads query materialized
views while a background daemon keeps them fresh.  This package is that
tier, in three pieces:

* :class:`SnapshotManager` / :class:`SnapshotHandle` — versioned
  copy-on-write view snapshots, published atomically at each refresh
  commit; readers pin a version and can never observe torn state;
* :class:`RefreshDaemon` — the single writer: a background thread owning
  the :class:`~repro.stream.StreamScheduler` tick loop, fed by a bounded
  write queue so ``ingest()`` never blocks on refresh work;
* :class:`FreshnessSLO` / :class:`Staleness` — per-view staleness bounds
  (rounds / rows / seconds) layered as hard limits over PR 5's cost-based
  deferral, plus the read admission policies (``serve-stale`` / ``block``
  / ``reject``) applied when the daemon falls behind anyway.

The public entry point is :meth:`repro.api.Warehouse.serve`; this package
never imports the façade.  It is also — together with ``repro.parallel`` —
the only place allowed to touch :mod:`threading` (the REPRO-L009 lint);
everything else borrows primitives from :mod:`repro.serving.sync`.
"""

from repro.serving.daemon import (
    DaemonCrash,
    DaemonStats,
    IngestOverflow,
    RefreshDaemon,
)
from repro.serving.slo import (
    READ_POLICIES,
    FreshnessSLO,
    Staleness,
    validate_read_policy,
)
from repro.serving.snapshot import (
    SnapshotError,
    SnapshotHandle,
    SnapshotManager,
    SnapshotStats,
)
from repro.serving.swarm import SwarmResult, run_client_swarm

__all__ = [
    "DaemonCrash",
    "DaemonStats",
    "FreshnessSLO",
    "IngestOverflow",
    "READ_POLICIES",
    "RefreshDaemon",
    "SnapshotError",
    "SnapshotHandle",
    "SnapshotManager",
    "SnapshotStats",
    "Staleness",
    "SwarmResult",
    "run_client_swarm",
    "validate_read_policy",
]
