"""Physical plan execution.

This module closes the gap between the optimizer and the engine: the
Volcano-style search (:mod:`repro.optimizer.volcano`) extracts
:class:`~repro.optimizer.plans.PlanNode` trees annotated with per-node join
algorithms and ``[reuse]`` markers, and this module *compiles* those trees
into executable physical operators and runs them.

The compiled pipeline honors every decision the optimizer made:

* **per-node join algorithms** — ``hash``, ``merge``, ``nested_loop`` and
  both index nested-loop orientations each map to their own operator, with
  index nested-loops probing catalog indexes (or an ad-hoc bucket table
  built on the fly when the planned index is not materialized).  Operators
  may refine the costed algorithm's *implementation* without changing its
  shape: equi-conditioned nested loops partition the inner side by key
  (see :func:`repro.engine.operators.nested_loop_join_batch`) instead of
  re-testing every pair;
* **reuse markers** — ``reuse[...]`` leaves resolve through the
  :class:`~repro.engine.executor.MaterializedRegistry` and the database's
  materialized views, so temporarily/permanently materialized shared results
  are read instead of recomputed;
* **batch execution** — selections, hash joins and aggregations run on the
  columnar fast path (:mod:`repro.engine.operators` batch kernels, compiled
  predicate closures) instead of per-tuple interpretation.

``evaluate_physical`` is the end-to-end entry point (expression → DAG →
best plan → compiled pipeline → result); the row-at-a-time interpreter
:func:`repro.engine.executor.evaluate` remains the correctness oracle, and
non-strict callers fall back to it for expression shapes the planner cannot
handle (e.g. relations missing from the catalog).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import BaseRelation, Expression, base_relations
from repro.algebra.predicates import Predicate
from repro.algebra.schema_derivation import derive_schema
from repro.catalog.estimator import CardinalityEstimator
from repro.catalog.schema import Schema, SchemaError
from repro.engine import operators
from repro.engine.database import Database, DatabaseError
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.optimizer.cost_model import CostModel
from repro.optimizer.dag import OperatorKind
from repro.optimizer.dag_builder import DagBuilder
from repro.optimizer.plans import PlanNode
from repro.optimizer.volcano import VolcanoSearch
from repro.storage.relation import Relation

#: Observer signature: called with the originating plan step and the actual
#: output bag every time an instrumented physical operator produces a result.
PlanObserver = Callable[[PlanNode, Relation], None]


class PhysicalPlanError(RuntimeError):
    """Raised when a plan step cannot be compiled into a physical operator."""


# ------------------------------------------------------------------- operators

class PhysicalOperator:
    """Base class: a node of the executable operator pipeline."""

    #: Short name used by ``explain`` output.
    kind: str = "physical"

    def __init__(self, children: Sequence["PhysicalOperator"] = ()) -> None:
        self.children: List[PhysicalOperator] = list(children)
        #: Optional per-operator feedback hook, set by :func:`compile_plan`
        #: when an observer is attached: called with the produced bag so the
        #: estimator can learn actual output cardinalities per plan node.
        self.feedback: Optional[Callable[[Relation], None]] = None

    def execute(self) -> Relation:
        """Produce this operator's output bag (reporting it to any observer)."""
        result = self._produce()
        if self.feedback is not None:
            self.feedback(result)
        return result

    def _produce(self) -> Relation:
        """Operator-specific production of the output bag."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for explain output."""
        return self.kind

    def explain(self, indent: int = 0) -> str:
        """Multi-line, indented rendering of the compiled pipeline."""
        lines = [f"{'  ' * indent}{self.describe()}"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def operator_kinds(self) -> List[str]:
        """All operator kinds in the pipeline (pre-order; used by tests)."""
        kinds = [self.kind]
        for child in self.children:
            kinds.extend(child.operator_kinds())
        return kinds


class TableScan(PhysicalOperator):
    """Scan of a stored base table (or a view registered as a source)."""

    kind = "scan"

    def __init__(self, database: Database, relation: str) -> None:
        super().__init__()
        self.database = database
        self.relation = relation

    def _produce(self) -> Relation:
        return self.database.table(self.relation)

    def describe(self) -> str:
        return f"scan({self.relation})"


class MaterializedScan(PhysicalOperator):
    """Read of a materialized (temporary or permanent) result — a reuse leaf."""

    kind = "reuse"

    def __init__(self, database: Database, view_name: str) -> None:
        super().__init__()
        self.database = database
        self.view_name = view_name

    def _produce(self) -> Relation:
        return self.database.view(self.view_name)

    def describe(self) -> str:
        return f"reuse({self.view_name})"


class LogicalFallback(PhysicalOperator):
    """Evaluate a sub-expression through the logical interpreter.

    Used for plan steps without an executable payload (exotic leaves) so a
    partially compilable plan still runs end to end.
    """

    kind = "logical"

    def __init__(
        self,
        database: Database,
        expression: Expression,
        materialized: Optional[MaterializedRegistry] = None,
    ) -> None:
        super().__init__()
        self.database = database
        self.expression = expression
        self.materialized = materialized

    def _produce(self) -> Relation:
        return evaluate(self.expression, self.database, self.materialized)

    def describe(self) -> str:
        return f"logical({self.expression.canonical()})"


class Filter(PhysicalOperator):
    """Batch selection over the columnar fast path."""

    kind = "filter"

    def __init__(self, child: PhysicalOperator, predicate: Predicate) -> None:
        super().__init__([child])
        self.predicate = predicate

    def _produce(self) -> Relation:
        return operators.select_batch(self.children[0].execute(), self.predicate)

    def describe(self) -> str:
        return f"filter[{self.predicate.canonical()}]"


class Projection(PhysicalOperator):
    """Duplicate-preserving projection."""

    kind = "project"

    def __init__(self, child: PhysicalOperator, columns: Sequence[str]) -> None:
        super().__init__([child])
        self.columns = tuple(columns)

    def _produce(self) -> Relation:
        return self.children[0].execute().project(self.columns)

    def describe(self) -> str:
        return f"project[{','.join(self.columns)}]"


class HashJoin(PhysicalOperator):
    """Vectorized hash join (build on the right input, probe with the left)."""

    kind = "hash_join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        conditions: Sequence[Tuple[str, str]],
        residual: Optional[Predicate] = None,
    ) -> None:
        super().__init__([left, right])
        self.conditions = tuple(conditions)
        self.residual = residual

    def _produce(self) -> Relation:
        return operators.hash_join_batch(
            self.children[0].execute(),
            self.children[1].execute(),
            self.conditions,
            self.residual,
        )

    def describe(self) -> str:
        conds = ",".join(f"{a}={b}" for a, b in self.conditions) or "⨯"
        return f"hash_join[{conds}]"


class MergeJoin(PhysicalOperator):
    """Sort-merge join."""

    kind = "merge_join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        conditions: Sequence[Tuple[str, str]],
        residual: Optional[Predicate] = None,
    ) -> None:
        super().__init__([left, right])
        self.conditions = tuple(conditions)
        self.residual = residual

    def _produce(self) -> Relation:
        return operators.merge_join(
            self.children[0].execute(),
            self.children[1].execute(),
            self.conditions,
            self.residual,
        )

    def describe(self) -> str:
        conds = ",".join(f"{a}={b}" for a, b in self.conditions)
        return f"merge_join[{conds}]"


class NestedLoopJoin(PhysicalOperator):
    """Nested-loop join (also the cross-product operator).

    Executes through the batch kernel, which partitions the inner side by
    join key when equi-conditions exist — the output bag is identical to a
    plain tuple nested loop, without the quadratic pair scan the cost
    model's I/O-oriented estimate never intended to charge for.
    """

    kind = "nested_loop_join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        conditions: Sequence[Tuple[str, str]],
        residual: Optional[Predicate] = None,
    ) -> None:
        super().__init__([left, right])
        self.conditions = tuple(conditions)
        self.residual = residual

    def _produce(self) -> Relation:
        return operators.nested_loop_join_batch(
            self.children[0].execute(),
            self.children[1].execute(),
            self.conditions,
            self.residual,
        )


class IndexNestedLoopJoin(PhysicalOperator):
    """Index nested-loop join probing an index on the stored inner side.

    ``inner_side`` names which child (``"left"`` or ``"right"``) the
    optimizer chose as the indexed stored input; the other side drives the
    probe loop.  Output column order is always left ++ right, matching the
    logical operator, regardless of which side is probed.  When the planned
    index is not materialized in the database (the optimizer may assume an
    index chosen for materialization that the caller never built), an ad-hoc
    hash index is constructed — the plan still runs, just without the
    amortized benefit.
    """

    kind = "index_nested_loop_join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        conditions: Sequence[Tuple[str, str]],
        residual: Optional[Predicate] = None,
        inner_side: str = "right",
        database: Optional[Database] = None,
        inner_name: Optional[str] = None,
    ) -> None:
        super().__init__([left, right])
        self.conditions = tuple(conditions)
        self.residual = residual
        self.inner_side = inner_side
        self.database = database
        self.inner_name = inner_name

    def _catalog_lookup(self, inner: Relation, columns: Sequence[str], probe_count: int):
        """A key→rows lookup over a catalog index, when one is usable.

        A catalog hash index is used when its key matches the probe key
        exactly.  A catalog sorted index is probed (exact or by prefix) only
        while the probe count stays small relative to the inner cardinality
        — beyond that, one O(|inner|) bucket-table build amortizes to
        cheaper constant-time probes than repeated binary searches, so the
        caller falls back to its inline bucket join.
        """
        if self.database is None or self.inner_name is None:
            return None
        index = self.database.index_for(self.inner_name, columns)
        if index is None:
            return None
        wanted = tuple(c.rsplit(".", 1)[-1] for c in columns)
        key = tuple(c.rsplit(".", 1)[-1] for c in index.columns)
        if key == wanted and getattr(index, "kind", "") == "hash":
            return index.lookup
        if hasattr(index, "prefix_lookup") and probe_count <= max(64, len(inner) // 8):
            # Sorted probes cannot order None against other values (and a
            # sorted index over None keys cannot even be built), so a probe
            # key containing None simply has no match.
            prefix_lookup = index.prefix_lookup

            def null_safe_probe(probe_key):
                if any(v is None for v in probe_key):
                    return ()
                return prefix_lookup(probe_key)

            return null_safe_probe
        return None

    def _produce(self) -> Relation:
        left = self.children[0].execute()
        right = self.children[1].execute()
        left_pos, right_pos = operators._join_positions(
            left.schema, right.schema, self.conditions
        )
        schema = left.schema.concat(right.schema)
        if self.inner_side == "right":
            inner, outer = right, left
            inner_pos, outer_pos = right_pos, left_pos
        else:
            inner, outer = left, right
            inner_pos, outer_pos = left_pos, right_pos
        inner_columns = [inner.schema.columns[i].name for i in inner_pos]
        lookup = self._catalog_lookup(inner, inner_columns, len(outer))
        orows = outer.rows
        right_inner = self.inner_side == "right"
        if lookup is not None:
            if right_inner:
                out = [
                    orow + irow
                    for orow in orows
                    for irow in lookup(tuple(orow[i] for i in outer_pos))
                ]
            else:
                out = [
                    irow + orow
                    for orow in orows
                    for irow in lookup(tuple(orow[i] for i in outer_pos))
                ]
        elif operators.vectorizable_join(left, right, left_pos, right_pos):
            # No materialized index worth probing, but the inputs qualify for
            # the whole-column join kernel — same bag, columnar output, and
            # downstream operators keep the store instead of re-deriving it.
            return operators.hash_join_batch(
                left, right, self.conditions, self.residual
            )
        else:
            # No materialized index worth probing: build the bucket table the
            # optimizer assumed, keyed directly on the join columns.
            buckets: Dict[Any, List[Tuple[Any, ...]]] = {}
            setdefault = buckets.setdefault
            get = buckets.get
            empty: Tuple[Tuple[Any, ...], ...] = ()
            if len(inner_pos) == 1:
                ii = inner_pos[0]
                oi = outer_pos[0]
                for irow in inner.rows:
                    setdefault(irow[ii], []).append(irow)
                if right_inner:
                    out = [orow + irow for orow in orows for irow in get(orow[oi], empty)]
                else:
                    out = [irow + orow for orow in orows for irow in get(orow[oi], empty)]
            else:
                for irow in inner.rows:
                    setdefault(tuple(irow[i] for i in inner_pos), []).append(irow)
                if right_inner:
                    out = [
                        orow + irow
                        for orow in orows
                        for irow in get(tuple(orow[i] for i in outer_pos), empty)
                    ]
                else:
                    out = [
                        irow + orow
                        for orow in orows
                        for irow in get(tuple(orow[i] for i in outer_pos), empty)
                    ]
        rows = operators._residual_filter(out, schema, self.residual)
        return Relation.from_trusted_rows(schema, rows)

    def describe(self) -> str:
        conds = ",".join(f"{a}={b}" for a, b in self.conditions)
        return f"index_nested_loop_join[{conds}; inner={self.inner_side}]"


class HashAggregate(PhysicalOperator):
    """Vectorized hash group-by/aggregation."""

    kind = "hash_aggregate"

    def __init__(self, child: PhysicalOperator, group_by, aggregates) -> None:
        super().__init__([child])
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def _produce(self) -> Relation:
        return operators.aggregate_batch(
            self.children[0].execute(), self.group_by, self.aggregates
        )

    def describe(self) -> str:
        aggs = ",".join(a.canonical() for a in self.aggregates)
        return f"hash_aggregate[{','.join(self.group_by)};{aggs}]"


class UnionAllOp(PhysicalOperator):
    """Multiset union (positional, like the logical operator).

    Each input whose logical schema is known is conformed back to it first,
    undoing any column reordering the optimizer's join reassociation caused
    inside that branch; inputs then combine strictly by position, exactly as
    the interpreter does.
    """

    kind = "union_all"

    def __init__(
        self,
        children: Sequence[PhysicalOperator],
        expected: Optional[Sequence[Optional[Schema]]] = None,
    ) -> None:
        super().__init__(children)
        self.expected = list(expected or [])

    def _produce(self) -> Relation:
        results = [
            _align(child.execute(), self._expected_for(i))
            for i, child in enumerate(self.children)
        ]
        return operators.union_all(*results)

    def _expected_for(self, index: int) -> Optional[Schema]:
        return self.expected[index] if index < len(self.expected) else None


class DifferenceOp(PhysicalOperator):
    """Multiset difference (positional); inputs conform to their own schemas."""

    kind = "difference"

    def __init__(
        self,
        children: Sequence[PhysicalOperator],
        expected: Optional[Sequence[Optional[Schema]]] = None,
    ) -> None:
        super().__init__(children)
        self.expected = list(expected or [])

    def _produce(self) -> Relation:
        left = self.children[0].execute()
        right = self.children[1].execute()
        if len(self.expected) == 2:
            left = _align(left, self.expected[0])
            right = _align(right, self.expected[1])
        return operators.difference(left, right)


class DistinctOp(PhysicalOperator):
    """Duplicate elimination."""

    kind = "distinct"

    def _produce(self) -> Relation:
        return operators.distinct(self.children[0].execute())


# ----------------------------------------------------------- schema conformance

def _align(relation: Relation, expected: Optional[Schema]) -> Relation:
    """Conform a set-operation input to its own logical schema, if known.

    Union/difference are positional in the multiset algebra, so inputs are
    never reordered against *each other* — only back to the column order
    their own logical sub-expression defines, undoing join reassociation
    inside the branch.  Inputs with unknown logical schemas (or with column
    names that no longer match it) pass through untouched.
    """
    if expected is None:
        return relation
    if sorted(c.name for c in relation.schema.columns) == sorted(
        c.name for c in expected.columns
    ):
        return _conform(relation, expected)
    return relation


def _conform(relation: Relation, expected: Schema) -> Relation:
    """Reorder ``relation``'s columns (by name) to match ``expected``.

    The optimizer freely reassociates joins, so a physical pipeline may
    produce the same bag with permuted columns relative to the logical
    expression; conforming by name restores the logical column order.  A
    no-op when the orders already agree.
    """
    names = tuple(c.name for c in relation.schema.columns)
    expected_names = tuple(c.name for c in expected.columns)
    if names == expected_names:
        return relation
    if len(set(names)) == len(names):
        positions = [relation.schema.index_of(name) for name in expected_names]
    else:
        # Duplicate column names (e.g. a self-join): index_of would map every
        # duplicate to its first occurrence, silently collapsing distinct
        # columns.  Map the k-th occurrence of a name in the expected order
        # to the k-th occurrence in the produced order instead.
        occurrences: Dict[str, List[int]] = {}
        for i, column in enumerate(relation.schema.columns):
            occurrences.setdefault(column.name, []).append(i)
        taken: Dict[str, int] = {}
        positions = []
        for name in expected_names:
            slots = occurrences.get(name)
            k = taken.get(name, 0)
            if not slots or k >= len(slots):
                raise SchemaError(
                    f"cannot conform schema {names} to {expected_names}: "
                    f"occurrence {k} of column {name!r} is missing"
                )
            positions.append(slots[k])
            taken[name] = k + 1
    store = relation.cached_store()
    if store is not None:
        # Column stores reorder by reference — no per-row gather at all.
        return Relation.from_store(expected, store.take(positions), relation.name)
    if len(positions) == 1:
        i = positions[0]
        rows = [(row[i],) for row in relation.rows]
    else:
        getter = itemgetter(*positions)
        rows = [getter(row) for row in relation.rows]
    return Relation.from_trusted_rows(expected, rows, relation.name)


# ------------------------------------------------------------------ compilation

def compile_plan(
    plan: PlanNode,
    database: Database,
    materialized: Optional[MaterializedRegistry] = None,
    strict: bool = False,
    observer: Optional[PlanObserver] = None,
) -> PhysicalOperator:
    """Compile an optimizer-extracted plan tree into a physical pipeline.

    ``materialized`` resolves reuse steps whose equivalence node has no view
    name of its own (temporary materializations registered by expression).
    With ``strict`` set, steps that cannot be compiled raise
    :class:`PhysicalPlanError`; otherwise they degrade to a
    :class:`LogicalFallback` over the step's logical expression.

    ``observer`` instruments every compiled operator that carries a logical
    expression payload: it is called with the originating plan step and the
    actual output bag, which is how the physical layer feeds observed
    cardinalities back into the :class:`CardinalityEstimator`.
    """

    def fail(message: str, node: PlanNode) -> PhysicalOperator:
        if strict or node.expression is None:
            raise PhysicalPlanError(f"{message} (plan step: {node.description})")
        return LogicalFallback(database, node.expression, materialized)

    def instrument(node: PlanNode, compiled: PhysicalOperator) -> PhysicalOperator:
        if observer is not None and node.expression is not None:
            compiled.feedback = lambda result, _node=node: observer(_node, result)
        return compiled

    def compile_node(node: PlanNode) -> PhysicalOperator:
        return instrument(node, compile_step(node))

    def compile_step(node: PlanNode) -> PhysicalOperator:
        if node.reused:
            return compile_reuse(node)
        op = node.operator
        if op is None:
            if isinstance(node.expression, BaseRelation):
                return TableScan(database, node.expression.name)
            return fail("plan step has no executable operator", node)
        if op.kind is OperatorKind.SCAN:
            return TableScan(database, op.relation)
        children = [compile_node(child) for child in node.children]
        if op.kind is OperatorKind.SELECT:
            return Filter(children[0], op.predicate)
        if op.kind is OperatorKind.PROJECT:
            return Projection(children[0], op.columns)
        if op.kind is OperatorKind.JOIN:
            return compile_join(node, children)
        if op.kind is OperatorKind.AGGREGATE:
            return HashAggregate(children[0], op.group_by, op.aggregates)
        if op.kind is OperatorKind.UNION:
            return UnionAllOp(children, _input_schemas(node))
        if op.kind is OperatorKind.DIFFERENCE:
            return DifferenceOp(children, _input_schemas(node))
        if op.kind is OperatorKind.DISTINCT:
            return DistinctOp(children)
        return fail(f"unsupported operator kind {op.kind}", node)

    def _input_schemas(node: PlanNode) -> List[Optional[Schema]]:
        """Logical schemas of a set operation's inputs, where derivable."""
        schemas: List[Optional[Schema]] = []
        for child in node.children:
            schema: Optional[Schema] = None
            if child.expression is not None:
                try:
                    schema = derive_schema(child.expression, database.catalog)
                except Exception:
                    schema = None
            schemas.append(schema)
        return schemas

    def compile_reuse(node: PlanNode) -> PhysicalOperator:
        # Registry bindings are keyed by the expression's canonical form and
        # are therefore a *semantic* identity; the plan's view_name label may
        # be a DAG-scoped name like "e14" that another DAG assigned to a
        # different expression.  Prefer the registry.
        candidates = []
        if materialized is not None and node.expression is not None:
            registered = materialized.lookup(node.expression)
            if registered:
                candidates.append(registered)
        if node.view_name:
            candidates.append(node.view_name)
        for name in candidates:
            if database.has_view(name):
                return MaterializedScan(database, name)
            if database.has_relation(name):
                # The reused result is stored as a base relation (e.g. a
                # permanently materialized result loaded as a table).
                return TableScan(database, name)
        return fail(
            f"reused result {candidates or [node.description]} is not materialized", node
        )

    def compile_join(node: PlanNode, children: List[PhysicalOperator]) -> PhysicalOperator:
        op = node.operator
        left, right = children
        algorithm = node.algorithm or "hash"
        if algorithm == "merge":
            return MergeJoin(left, right, op.conditions, op.residual)
        if algorithm == "nested_loop":
            return NestedLoopJoin(left, right, op.conditions, op.residual)
        if algorithm.startswith("index_nested_loop"):
            inner_side = "left" if algorithm.endswith("_left") else "right"
            inner = left if inner_side == "left" else right
            inner_name = _stored_name(inner)
            return IndexNestedLoopJoin(
                left,
                right,
                op.conditions,
                op.residual,
                inner_side=inner_side,
                database=database,
                inner_name=inner_name,
            )
        return HashJoin(left, right, op.conditions, op.residual)

    def _stored_name(operator: PhysicalOperator) -> Optional[str]:
        if isinstance(operator, TableScan):
            return operator.relation
        if isinstance(operator, MaterializedScan):
            return operator.view_name
        return None

    return compile_node(plan)


def execute_plan(
    plan: PlanNode,
    database: Database,
    materialized: Optional[MaterializedRegistry] = None,
    strict: bool = False,
    output_schema: Optional[Schema] = None,
    observer: Optional[PlanObserver] = None,
) -> Relation:
    """Compile and run one optimizer plan; optionally conform the output."""
    pipeline = compile_plan(plan, database, materialized, strict=strict, observer=observer)
    result = pipeline.execute()
    if output_schema is not None:
        result = _conform(result, output_schema)
    return result


# ------------------------------------------------------------------ entry point

class PhysicalExecutor:
    """Plans and executes logical expressions through the physical layer.

    Wraps the full pipeline (DAG construction → Volcano search → plan
    extraction → compilation → execution) behind an ``evaluate``-shaped
    interface, with a per-expression plan cache.  Materialized views
    registered in a :class:`MaterializedRegistry` participate both as reuse
    opportunities during planning and as resolution targets at compile time.

    Every plan's estimates come from one shared
    :class:`~repro.catalog.estimator.CardinalityEstimator`.  With
    ``feedback`` enabled (the default) executed operators report their
    actual output cardinalities back to that estimator, keyed by the plan
    step's canonical expression; a cached plan whose recorded estimates
    drift from observed truth beyond the estimator's threshold is dropped
    and re-optimized against the corrected cardinalities on its next use.
    """

    def __init__(
        self,
        database: Database,
        cost_model: Optional[CostModel] = None,
        strict: bool = False,
        estimator: Optional[CardinalityEstimator] = None,
        feedback: bool = True,
        verify_plans: str = "cache-insert",
    ) -> None:
        if verify_plans not in ("always", "cache-insert", "off"):
            raise ValueError(
                f"verify_plans must be 'always', 'cache-insert' or 'off', "
                f"got {verify_plans!r}"
            )
        self.database = database
        self.cost_model = cost_model or CostModel()
        self.strict = strict
        self.estimator = estimator or CardinalityEstimator(database.catalog)
        self.feedback = feedback
        #: When the static plan verifier runs: on every planning call
        #: (``"always"``), only when a freshly optimized plan enters the
        #: cache (``"cache-insert"`` — replayed plans were already checked),
        #: or never (``"off"``).  Verifier errors raise
        #: :class:`PhysicalPlanError` *before* anything executes.
        self.verify_plans = verify_plans
        #: Cached plans: key -> (plan, output schema, estimate snapshot).
        #: The snapshot records the cardinality each plan step was costed
        #: with, so runtime observations can invalidate mis-costed plans.
        self._plans: Dict[str, Tuple[PlanNode, Schema, Dict[str, float]]] = {}

    # ------------------------------------------------------------------ caching

    def _cache_key(self, expression: Expression, materialized: Optional[MaterializedRegistry]) -> str:
        reusable = ""
        if materialized is not None:
            # A cached plan is only replayable while the same reusable
            # results are available: key on the registry's live bindings
            # (expression → view) restricted to views that actually exist,
            # so re-registrations and re-materializations force a replan.
            reusable = ";".join(
                f"{canonical}->{view}"
                for canonical, view in materialized.snapshot()
                if self.database.has_view(view)
            )
        return f"{expression.canonical()}|{reusable}"

    # ---------------------------------------------------------------- planning

    @staticmethod
    def _estimate_snapshot(plan: PlanNode) -> Dict[str, float]:
        """Canonical expression → estimated cardinality, per plan step."""
        snapshot: Dict[str, float] = {}

        def walk(node: PlanNode) -> None:
            if node.expression is not None:
                snapshot.setdefault(node.expression.canonical(), node.cardinality)
            for child in node.children:
                walk(child)

        walk(plan)
        return snapshot

    def plan(
        self,
        expression: Expression,
        materialized: Optional[MaterializedRegistry] = None,
    ) -> Tuple[PlanNode, Schema]:
        """The best physical plan and the logical output schema."""
        key = self._cache_key(expression, materialized)
        cached = self._plans.get(key)
        if cached is not None:
            if not (self.feedback and self.estimator.plan_drifted(cached[2])):
                if self.verify_plans == "always":
                    self._verify(cached[0], materialized)
                return cached[0], cached[1]
            # Observed cardinalities disagree with what this plan was costed
            # with: drop it and re-optimize against the corrected estimates.
            del self._plans[key]
        catalog = self.database.catalog
        builder = DagBuilder(catalog, estimator=self.estimator)
        builder.add_query("__physical__", expression)
        dag = builder.finish()
        materialized_ids = set()
        if materialized is not None:
            for node in dag.equivalence_nodes:
                if node.is_base_relation:
                    continue
                view_name = materialized.lookup(node.expression)
                if view_name is not None and self.database.has_view(view_name):
                    materialized_ids.add(node.id)
                    node.view_name = node.view_name or view_name
                    # Reuse costing works off the node's statistics; when the
                    # stored view has *measured* stats (kept current by the
                    # refresher as deltas merge), they replace the derived
                    # estimate, so reuse-vs-recompute decisions track the
                    # view's actual size instead of a stale estimate.
                    measured = catalog.view_stats(view_name)
                    if measured is not None:
                        node.stats = measured
        search = VolcanoSearch(dag, catalog, self.cost_model)
        outcome = search.optimize(materialized=materialized_ids)
        plan = outcome.extract_plan(dag.roots["__physical__"].id)
        schema = derive_schema(expression, catalog)
        if self.verify_plans != "off":
            self._verify(plan, materialized)
        self._plans[key] = (plan, schema, self._estimate_snapshot(plan))
        return plan, schema

    def _verify(self, plan: PlanNode, materialized: Optional[MaterializedRegistry]) -> None:
        """Statically verify a plan; verifier errors abort before execution.

        Deliberately raises :class:`PhysicalPlanError` from ``plan()`` —
        ``evaluate``'s interpreter fallback does not catch it, because a
        plan the verifier rejects signals a planner/compiler defect, not an
        expected planning limitation.
        """
        from repro.analysis.diagnostics import has_errors, render_diagnostics
        from repro.analysis.planlint import verify_plan

        diagnostics = verify_plan(plan, database=self.database, materialized=materialized)
        if has_errors(diagnostics):
            raise PhysicalPlanError(
                "plan failed static verification:\n"
                + render_diagnostics([d for d in diagnostics if d.severity == "error"])
            )

    # --------------------------------------------------------------- execution

    def evaluate(
        self,
        expression: Expression,
        materialized: Optional[MaterializedRegistry] = None,
    ) -> Relation:
        """Evaluate ``expression`` through the physical layer.

        Mirrors :func:`repro.engine.executor.evaluate`: a registry hit on the
        whole expression short-circuits to the stored view.  Expressions the
        planner cannot handle fall back to the logical interpreter unless
        ``strict`` was set.
        """
        if materialized is not None:
            view_name = materialized.lookup(expression)
            if view_name is not None and self.database.has_view(view_name):
                return self.database.view(view_name)
        try:
            plan, schema = self.plan(expression, materialized)
        except (SchemaError, DatabaseError, KeyError, TypeError) as exc:
            # Planning failures (relations missing from the catalog, exotic
            # expression shapes) are expected for some callers; fall back to
            # the interpreter unless strict.
            if self.strict:
                raise PhysicalPlanError(
                    f"cannot plan {expression.canonical()} physically: {exc}"
                ) from exc
            return evaluate(expression, self.database, materialized)
        try:
            return execute_plan(
                plan,
                self.database,
                materialized,
                strict=self.strict,
                output_schema=schema,
                observer=self._record_actual if self.feedback else None,
            )
        except (PhysicalPlanError, SchemaError, DatabaseError) as exc:
            # Execution-time *resolution* failures (a reused view dropped
            # between planning and execution, unresolvable columns) degrade
            # to the interpreter.  Anything else — TypeError, KeyError — is
            # a genuine operator defect and must surface, not be silently
            # absorbed by the fallback.
            if self.strict:
                raise PhysicalPlanError(
                    f"cannot execute {expression.canonical()} physically: {exc}"
                ) from exc
            return evaluate(expression, self.database, materialized)

    # ----------------------------------------------------------------- feedback

    def _record_actual(self, node: PlanNode, result: Relation) -> None:
        """Feed one plan step's observed output cardinality to the estimator.

        The canonical key and base-relation set are memoized on the plan
        node (plans are cached and re-executed many times; re-deriving the
        canonical form per operator execution would dominate small deltas).
        """
        cached = getattr(node, "_feedback_key", None)
        if cached is None:
            cached = (node.expression.canonical(), frozenset(base_relations(node.expression)))
            node._feedback_key = cached
        key, relations = cached
        self.estimator.record_actual(
            key, node.cardinality, float(len(result)), relations=relations
        )


def evaluate_physical(
    expression: Expression,
    database: Database,
    materialized: Optional[MaterializedRegistry] = None,
    cost_model: Optional[CostModel] = None,
    strict: bool = False,
) -> Relation:
    """One-shot convenience wrapper around :class:`PhysicalExecutor`."""
    return PhysicalExecutor(database, cost_model=cost_model, strict=strict).evaluate(
        expression, materialized
    )
