"""Evaluation of logical expressions against a database.

``evaluate`` interprets a logical :class:`~repro.algebra.Expression` directly
over the current contents of a :class:`~repro.engine.Database`, using hash
joins and hash aggregation.  It also understands materialized views: when
``use_materialized`` is set and a sub-expression matches a view registered
via :meth:`MaterializedRegistry.register`, the stored contents are returned
without recomputation — this is how temporarily materialized shared
sub-expressions get reused at execution time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algebra.expressions import (
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.engine import operators
from repro.engine.database import Database
from repro.storage.relation import Relation


class MaterializedRegistry:
    """Maps canonical expression forms to materialized view names."""

    def __init__(self) -> None:
        self._by_canonical: Dict[str, str] = {}

    def register(self, expression: Expression, view_name: str) -> None:
        """Record that ``expression``'s result is stored under ``view_name``."""
        self._by_canonical[expression.canonical()] = view_name

    def lookup(self, expression: Expression) -> Optional[str]:
        """The view name storing ``expression``'s result, if any."""
        return self._by_canonical.get(expression.canonical())

    def unregister(self, expression: Expression) -> None:
        """Forget a registration (when a temporary result is discarded)."""
        self._by_canonical.pop(expression.canonical(), None)

    def snapshot(self) -> Tuple[Tuple[str, str], ...]:
        """The current (canonical, view-name) bindings, in a stable order.

        Used by plan caches to detect that the set of reusable results
        changed even when the set of stored view names did not.
        """
        return tuple(sorted(self._by_canonical.items()))

    def __len__(self) -> int:
        return len(self._by_canonical)


def evaluate(
    expression: Expression,
    database: Database,
    materialized: Optional[MaterializedRegistry] = None,
    join_algorithm: str = "hash",
) -> Relation:
    """Evaluate ``expression`` over ``database`` and return its result bag."""
    join_fn = operators.JOIN_ALGORITHMS[join_algorithm]

    def recurse(node: Expression) -> Relation:
        if materialized is not None:
            view_name = materialized.lookup(node)
            if view_name is not None and database.has_view(view_name):
                return database.view(view_name)
        if isinstance(node, BaseRelation):
            return database.table(node.name)
        if isinstance(node, Select):
            return operators.select(recurse(node.child), node.predicate)
        if isinstance(node, Project):
            return operators.project(recurse(node.child), node.columns)
        if isinstance(node, Join):
            return join_fn(recurse(node.left), recurse(node.right), node.conditions, node.residual)
        if isinstance(node, Aggregate):
            return operators.aggregate(recurse(node.child), node.group_by, node.aggregates)
        if isinstance(node, UnionAll):
            return operators.union_all(*[recurse(i) for i in node.inputs])
        if isinstance(node, Difference):
            return operators.difference(recurse(node.left), recurse(node.right))
        if isinstance(node, Distinct):
            return operators.distinct(recurse(node.child))
        raise TypeError(f"unknown expression type {type(node).__name__}")

    return recurse(expression)
