"""Differential (delta) propagation through expressions.

This is the executable counterpart of the paper's §3: given a single-relation
update (inserts *or* deletes on one base relation — the paper propagates one
relation and one update type at a time), ``differentiate`` computes the pair
of bags (δ+ of the expression result, δ− of the expression result) such that

    new(E)  =  old(E)  −  δ−   ∪   δ+

holds exactly under multiset semantics.  The maintenance layer uses this to
apply incremental refresh; the test suite uses it to prove that incremental
refresh and recomputation agree tuple-for-tuple.

Join differentials follow the paper's expansion: when the updated relation
reaches both join inputs, the update expression for the join becomes a union
of two joins, ``(δE1 ⋈ E2_old) ∪ (E1_new ⋈ δE2)`` (§5.3).  Aggregates are
maintained by recomputing only the *affected groups* — the groups whose keys
appear in the input delta — against the old aggregate rows for those groups
(§3.1.2).  Duplicate elimination and multiset difference fall back to
old-vs-new comparison of their (usually small) inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set, Tuple

from repro.algebra.expressions import (
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
    base_relations,
)
from repro.algebra.schema_derivation import derive_schema
from repro.catalog.schema import Schema
from repro.engine import operators
from repro.engine.database import Database
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.storage.delta import DeltaKind
from repro.storage.relation import Relation


@dataclass
class ExpressionDelta:
    """The insert and delete bags of an expression's differential."""

    inserts: Relation
    deletes: Relation

    @property
    def is_empty(self) -> bool:
        """Whether the differential is entirely empty."""
        return not len(self.inserts) and not len(self.deletes)

    @staticmethod
    def empty(schema: Schema) -> "ExpressionDelta":
        """An empty differential with the given result schema."""
        return ExpressionDelta(Relation(schema, []), Relation(schema, []))


OldValueFn = Callable[[Expression], Relation]


def differentiate(
    expression: Expression,
    database: Database,
    relation: str,
    kind: DeltaKind,
    delta_rows: Relation,
    materialized: Optional[MaterializedRegistry] = None,
    old_value: Optional[OldValueFn] = None,
) -> ExpressionDelta:
    """Compute the differential of ``expression`` w.r.t. one base update.

    ``database`` must hold the *pre-update* state of all base relations.
    ``old_value`` can override how old sub-expression results are obtained
    (by default they are evaluated against the database, consulting the
    materialized registry so stored views/temporary results are reused).
    """
    catalog = database.catalog

    def old(expr: Expression) -> Relation:
        if old_value is not None:
            return old_value(expr)
        return evaluate(expr, database, materialized)

    def new(expr: Expression, delta: ExpressionDelta) -> Relation:
        return old(expr).apply_delta(inserts=delta.inserts, deletes=delta.deletes)

    def recurse(node: Expression) -> ExpressionDelta:
        schema = derive_schema(node, catalog)
        if relation not in base_relations(node):
            return ExpressionDelta.empty(schema)

        if isinstance(node, BaseRelation):
            if node.name != relation:
                return ExpressionDelta.empty(schema)
            empty = Relation(schema, [])
            if kind is DeltaKind.INSERT:
                return ExpressionDelta(Relation(schema, list(delta_rows.rows)), empty)
            return ExpressionDelta(empty, Relation(schema, list(delta_rows.rows)))

        if isinstance(node, Select):
            child = recurse(node.child)
            return ExpressionDelta(
                operators.select(child.inserts, node.predicate),
                operators.select(child.deletes, node.predicate),
            )

        if isinstance(node, Project):
            child = recurse(node.child)
            return ExpressionDelta(
                operators.project(child.inserts, node.columns),
                operators.project(child.deletes, node.columns),
            )

        if isinstance(node, Join):
            return _join_delta(node)

        if isinstance(node, Aggregate):
            return _aggregate_delta(node)

        if isinstance(node, UnionAll):
            parts = [recurse(i) for i in node.inputs]
            inserts = Relation(schema, [r for p in parts for r in p.inserts.rows])
            deletes = Relation(schema, [r for p in parts for r in p.deletes.rows])
            return ExpressionDelta(inserts, deletes)

        if isinstance(node, Difference):
            # Bag difference is not distributive over deltas in general;
            # compute old and new results and diff them (inputs are small in
            # maintenance expressions, which is where Difference appears).
            left_delta = recurse(node.left)
            right_delta = recurse(node.right)
            old_result = old(node.left).difference(old(node.right))
            new_result = new(node.left, left_delta).difference(new(node.right, right_delta))
            return ExpressionDelta(
                new_result.difference(old_result), old_result.difference(new_result)
            )

        if isinstance(node, Distinct):
            child_delta = recurse(node.child)
            old_result = old(node.child).distinct()
            new_result = new(node.child, child_delta).distinct()
            return ExpressionDelta(
                new_result.difference(old_result), old_result.difference(new_result)
            )

        raise TypeError(f"unknown expression type {type(node).__name__}")

    def _join_delta(node: Join) -> ExpressionDelta:
        schema = derive_schema(node, catalog)
        left_dep = relation in base_relations(node.left)
        right_dep = relation in base_relations(node.right)
        left_delta = recurse(node.left) if left_dep else None
        right_delta = recurse(node.right) if right_dep else None

        insert_parts = []
        delete_parts = []
        # δ_left joined with the OLD right input ...
        if left_delta is not None and not left_delta.is_empty:
            old_right = old(node.right)
            if len(left_delta.inserts):
                insert_parts.append(
                    operators.hash_join(left_delta.inserts, old_right, node.conditions, node.residual)
                )
            if len(left_delta.deletes):
                delete_parts.append(
                    operators.hash_join(left_delta.deletes, old_right, node.conditions, node.residual)
                )
        # ... plus the NEW left input joined with δ_right (paper §5.3:
        # (δE1 ⋈ E2) ∪ ((E1 ∪ δE1) ⋈ δE2)).
        if right_delta is not None and not right_delta.is_empty:
            new_left = new(node.left, left_delta) if left_delta is not None else old(node.left)
            if len(right_delta.inserts):
                insert_parts.append(
                    operators.hash_join(new_left, right_delta.inserts, node.conditions, node.residual)
                )
            if len(right_delta.deletes):
                delete_parts.append(
                    operators.hash_join(new_left, right_delta.deletes, node.conditions, node.residual)
                )

        inserts = Relation(schema, [r for p in insert_parts for r in p.rows])
        deletes = Relation(schema, [r for p in delete_parts for r in p.rows])
        return ExpressionDelta(inserts, deletes)

    def _aggregate_delta(node: Aggregate) -> ExpressionDelta:
        schema = derive_schema(node, catalog)
        child_delta = recurse(node.child)
        if child_delta.is_empty:
            return ExpressionDelta.empty(schema)

        child_schema = derive_schema(node.child, catalog)
        group_pos = child_schema.positions(node.group_by)

        affected: Set[Tuple] = set()
        for row in child_delta.inserts.rows:
            affected.add(tuple(row[i] for i in group_pos))
        for row in child_delta.deletes.rows:
            affected.add(tuple(row[i] for i in group_pos))

        def restrict(rel: Relation) -> Relation:
            if not node.group_by:
                return rel
            positions = rel.schema.positions(node.group_by)
            return Relation(
                rel.schema,
                [r for r in rel.rows if tuple(r[i] for i in positions) in affected],
                rel.name,
            )

        # Old aggregate rows for the affected groups: taken from the stored
        # view when this exact node is materialized, otherwise recomputed from
        # the old child restricted to the affected groups.
        view_name = materialized.lookup(node) if materialized is not None else None
        if view_name is not None and database.has_view(view_name):
            old_agg_all = database.view(view_name)
            agg_group_pos = old_agg_all.schema.positions(node.group_by) if node.group_by else []
            old_rows = [
                r
                for r in old_agg_all.rows
                if not node.group_by or tuple(r[i] for i in agg_group_pos) in affected
            ]
            old_agg = Relation(old_agg_all.schema, old_rows)
        else:
            old_child_restricted = restrict(old(node.child))
            old_agg = operators.aggregate(old_child_restricted, node.group_by, node.aggregates)
            if not node.group_by and not affected:
                old_agg = Relation(old_agg.schema, [])

        new_child = new(node.child, child_delta)
        new_agg = operators.aggregate(restrict(new_child), node.group_by, node.aggregates)
        if node.group_by:
            # Groups that became empty vanish from new_agg automatically
            # because restrict() leaves them with no input rows; but the
            # hash aggregation only emits groups present in its input, so
            # nothing extra to do here.
            pass

        # Replace the affected old rows by the affected new rows.
        inserts = new_agg.difference(old_agg)
        deletes = old_agg.difference(new_agg)
        return ExpressionDelta(
            Relation(schema, list(inserts.rows)), Relation(schema, list(deletes.rows))
        )

    return recurse(expression)
