"""Differential (delta) propagation through expressions.

This is the executable counterpart of the paper's §3: given a single-relation
update (inserts *or* deletes on one base relation — the paper propagates one
relation and one update type at a time), ``differentiate`` computes the pair
of bags (δ+ of the expression result, δ− of the expression result) such that

    new(E)  =  old(E)  −  δ−   ∪   δ+

holds exactly under multiset semantics.  The maintenance layer uses this to
apply incremental refresh; the test suite uses it to prove that incremental
refresh and recomputation agree tuple-for-tuple.

Join differentials follow the paper's expansion: when the updated relation
reaches both join inputs, the update expression for the join becomes a union
of two joins, ``(δE1 ⋈ E2_old) ∪ (E1_new ⋈ δE2)`` (§5.3).  Aggregates are
maintained by recomputing only the *affected groups* — the groups whose keys
appear in the input delta — against the old aggregate rows for those groups
(§3.1.2).  Duplicate elimination and multiset difference fall back to
old-vs-new comparison of their (usually small) inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.algebra.expressions import (
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
    base_relations,
)
from repro.algebra.schema_derivation import derive_schema
from repro.catalog.schema import Schema
from repro.engine import operators
from repro.engine.database import Database
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.storage.delta import DeltaKind
from repro.storage.relation import Relation, Row


@dataclass
class ExpressionDelta:
    """The insert and delete bags of an expression's differential."""

    inserts: Relation
    deletes: Relation

    @property
    def is_empty(self) -> bool:
        """Whether the differential is entirely empty."""
        return not len(self.inserts) and not len(self.deletes)

    @staticmethod
    def empty(schema: Schema) -> "ExpressionDelta":
        """An empty differential with the given result schema."""
        return ExpressionDelta(Relation(schema, []), Relation(schema, []))


OldValueFn = Callable[[Expression], Relation]


def differentiate(
    expression: Expression,
    database: Database,
    relation: str,
    kind: DeltaKind,
    delta_rows: Relation,
    materialized: Optional[MaterializedRegistry] = None,
    old_value: Optional[OldValueFn] = None,
) -> ExpressionDelta:
    """Compute the differential of ``expression`` w.r.t. one base update.

    ``database`` must hold the *pre-update* state of all base relations.
    ``old_value`` can override how old sub-expression results are obtained
    (by default they are evaluated against the database, consulting the
    materialized registry so stored views/temporary results are reused).
    """
    catalog = database.catalog

    def old(expr: Expression) -> Relation:
        if old_value is not None:
            return old_value(expr)
        return evaluate(expr, database, materialized)

    def new(expr: Expression, delta: ExpressionDelta) -> Relation:
        return old(expr).apply_delta(inserts=delta.inserts, deletes=delta.deletes)

    def recurse(node: Expression) -> ExpressionDelta:
        schema = derive_schema(node, catalog)
        if relation not in base_relations(node):
            return ExpressionDelta.empty(schema)

        if isinstance(node, BaseRelation):
            if node.name != relation:
                return ExpressionDelta.empty(schema)
            empty = Relation(schema, [])
            if kind is DeltaKind.INSERT:
                return ExpressionDelta(Relation(schema, list(delta_rows.rows)), empty)
            return ExpressionDelta(empty, Relation(schema, list(delta_rows.rows)))

        if isinstance(node, Select):
            child = recurse(node.child)
            return ExpressionDelta(
                operators.select(child.inserts, node.predicate),
                operators.select(child.deletes, node.predicate),
            )

        if isinstance(node, Project):
            child = recurse(node.child)
            return ExpressionDelta(
                operators.project(child.inserts, node.columns),
                operators.project(child.deletes, node.columns),
            )

        if isinstance(node, Join):
            return _join_delta(node)

        if isinstance(node, Aggregate):
            return _aggregate_delta(node)

        if isinstance(node, UnionAll):
            parts = [recurse(i) for i in node.inputs]
            inserts = Relation(schema, [r for p in parts for r in p.inserts.rows])
            deletes = Relation(schema, [r for p in parts for r in p.deletes.rows])
            return ExpressionDelta(inserts, deletes)

        if isinstance(node, Difference):
            # Bag difference is not distributive over deltas in general;
            # compute old and new results and diff them (inputs are small in
            # maintenance expressions, which is where Difference appears).
            left_delta = recurse(node.left)
            right_delta = recurse(node.right)
            old_result = old(node.left).difference(old(node.right))
            new_result = new(node.left, left_delta).difference(new(node.right, right_delta))
            return ExpressionDelta(
                new_result.difference(old_result), old_result.difference(new_result)
            )

        if isinstance(node, Distinct):
            child_delta = recurse(node.child)
            old_result = old(node.child).distinct()
            new_result = new(node.child, child_delta).distinct()
            return ExpressionDelta(
                new_result.difference(old_result), old_result.difference(new_result)
            )

        raise TypeError(f"unknown expression type {type(node).__name__}")

    def _join_delta(node: Join) -> ExpressionDelta:
        schema = derive_schema(node, catalog)
        left_dep = relation in base_relations(node.left)
        right_dep = relation in base_relations(node.right)
        left_delta = recurse(node.left) if left_dep else None
        right_delta = recurse(node.right) if right_dep else None

        insert_parts = []
        delete_parts = []
        # δ_left joined with the OLD right input ...
        if left_delta is not None and not left_delta.is_empty:
            old_right = old(node.right)
            if len(left_delta.inserts):
                insert_parts.append(
                    operators.hash_join(left_delta.inserts, old_right, node.conditions, node.residual)
                )
            if len(left_delta.deletes):
                delete_parts.append(
                    operators.hash_join(left_delta.deletes, old_right, node.conditions, node.residual)
                )
        # ... plus the NEW left input joined with δ_right (paper §5.3:
        # (δE1 ⋈ E2) ∪ ((E1 ∪ δE1) ⋈ δE2)).
        if right_delta is not None and not right_delta.is_empty:
            new_left = new(node.left, left_delta) if left_delta is not None else old(node.left)
            if len(right_delta.inserts):
                insert_parts.append(
                    operators.hash_join(new_left, right_delta.inserts, node.conditions, node.residual)
                )
            if len(right_delta.deletes):
                delete_parts.append(
                    operators.hash_join(new_left, right_delta.deletes, node.conditions, node.residual)
                )

        inserts = Relation(schema, [r for p in insert_parts for r in p.rows])
        deletes = Relation(schema, [r for p in delete_parts for r in p.rows])
        return ExpressionDelta(inserts, deletes)

    def _aggregate_delta(node: Aggregate) -> ExpressionDelta:
        schema = derive_schema(node, catalog)
        child_delta = recurse(node.child)
        if child_delta.is_empty:
            return ExpressionDelta.empty(schema)

        child_schema = derive_schema(node.child, catalog)
        group_pos = child_schema.positions(node.group_by)

        affected: Set[Tuple] = set()
        for row in child_delta.inserts.rows:
            affected.add(tuple(row[i] for i in group_pos))
        for row in child_delta.deletes.rows:
            affected.add(tuple(row[i] for i in group_pos))

        def restrict(rel: Relation) -> Relation:
            if not node.group_by:
                return rel
            positions = rel.schema.positions(node.group_by)
            return Relation(
                rel.schema,
                [r for r in rel.rows if tuple(r[i] for i in positions) in affected],
                rel.name,
            )

        # Old aggregate rows for the affected groups: taken from the stored
        # view when this exact node is materialized, otherwise recomputed from
        # the old child restricted to the affected groups.
        view_name = materialized.lookup(node) if materialized is not None else None
        if view_name is not None and database.has_view(view_name):
            old_agg_all = database.view(view_name)
            agg_group_pos = old_agg_all.schema.positions(node.group_by) if node.group_by else []
            old_rows = [
                r
                for r in old_agg_all.rows
                if not node.group_by or tuple(r[i] for i in agg_group_pos) in affected
            ]
            old_agg = Relation(old_agg_all.schema, old_rows)
        else:
            old_child_restricted = restrict(old(node.child))
            old_agg = operators.aggregate(old_child_restricted, node.group_by, node.aggregates)
            if not node.group_by and not affected:
                old_agg = Relation(old_agg.schema, [])

        new_child = new(node.child, child_delta)
        new_agg = operators.aggregate(restrict(new_child), node.group_by, node.aggregates)
        if node.group_by:
            # Groups that became empty vanish from new_agg automatically
            # because restrict() leaves them with no input rows; but the
            # hash aggregation only emits groups present in its input, so
            # nothing extra to do here.
            pass

        # Replace the affected old rows by the affected new rows.
        inserts = new_agg.difference(old_agg)
        deletes = old_agg.difference(new_agg)
        return ExpressionDelta(
            Relation(schema, list(inserts.rows)), Relation(schema, list(deletes.rows))
        )

    return recurse(expression)


# --------------------------------------------------------------- refresh engine

@dataclass
class OldValueCache:
    """Shared evaluation state for one single-relation update round.

    The paper's maintenance plans share temporary results across the views of
    a refresh (§3.1/§5.3); this cache is the execution-time counterpart for
    the differential engine.  Within one round — one base relation, one
    update kind, one fixed pre-update database state — the following are
    functions of the expression alone, so they are memoized by canonical
    form and shared across every view the round refreshes:

    * ``old`` — old (pre-update) results of sub-expressions,
    * ``new`` — old results with the sub-expression's own differential
      applied,
    * ``deltas`` — the differentials of sub-expressions themselves (the
      double ``old(node.left)`` of the Difference/Distinct rules and the
      repeated sub-join deltas of shared view sets hit this),
    * ``builds`` — hash-join bucket tables over old/new inputs, keyed by
      (role, canonical form, join positions), so δ+ and δ− probes of every
      view share one build.

    A cache instance is only valid while the database holds the round's
    pre-update state.  The refresher carries one cache across the rounds of
    a refresh, calling :meth:`advance_round` after each base update: old
    values (and their builds) whose expressions do not depend on the
    just-updated relation are still exact and survive into later rounds;
    everything else is invalidated.
    """

    old: Dict[str, Relation] = field(default_factory=dict)
    new: Dict[str, Relation] = field(default_factory=dict)
    deltas: Dict[str, ExpressionDelta] = field(default_factory=dict)
    builds: Dict[Tuple[str, str, Tuple[int, ...]], Dict[Any, List[Row]]] = field(
        default_factory=dict
    )
    #: Base relations each cached canonical form depends on — the
    #: invalidation key for cross-round survival.
    dependencies: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def advance_round(self, updated_relation: str) -> None:
        """Invalidate what a just-applied update to ``updated_relation`` staled.

        Differentials and new values are functions of the round's specific
        update, so they are always cleared.  Old values and old-input hash
        builds survive unless their expression depends on the updated
        relation — the cross-round analogue of the paper's shared temporary
        results (a sub-expression untouched by update ``i`` need not be
        re-derived for update ``i+1``).
        """
        self.deltas.clear()
        self.new.clear()
        stale = {
            canonical
            for canonical, relations in self.dependencies.items()
            if updated_relation in relations
        }
        for canonical in stale:
            self.old.pop(canonical, None)
            del self.dependencies[canonical]
        self.builds = {
            key: build
            for key, build in self.builds.items()
            if key[0] == "old" and key[1] not in stale
        }


class DifferentialEngine:
    """Vectorized differential computation over the physical layer.

    Produces the exact insert/delete bags of :func:`differentiate` (which
    remains the correctness oracle) but executes them at batch speed:

    * old/new sub-expression results are evaluated through
      :class:`~repro.engine.physical.PhysicalExecutor` — optimizer-chosen
      plans over the columnar batch kernels — instead of the row-at-a-time
      interpreter;
    * δ-select/δ-project/δ-join run through the delta kernels of
      :mod:`repro.engine.operators`, which share one predicate compilation /
      projection resolution / hash build between the δ+ and δ− bags;
    * everything is memoized in a per-round :class:`OldValueCache`, shared
      across all views of a single-relation update round.
    """

    def __init__(self, database: Database, physical=None) -> None:
        self.database = database
        if physical is None:
            from repro.engine.physical import PhysicalExecutor

            physical = PhysicalExecutor(database)
        self.physical = physical
        #: Engine-lifetime memos for immutable per-expression facts.  Keyed by
        #: object identity with the node kept alive alongside, so ids cannot
        #: be recycled while a memo entry exists.
        self._canonicals: Dict[int, Tuple[Expression, str]] = {}
        self._schemas: Dict[str, Schema] = {}
        self._relations: Dict[str, FrozenSet[str]] = {}

    # ------------------------------------------------------------------ memos

    def _canonical(self, node: Expression) -> str:
        entry = self._canonicals.get(id(node))
        if entry is None or entry[0] is not node:
            entry = (node, node.canonical())
            self._canonicals[id(node)] = entry
        return entry[1]

    def _schema(self, node: Expression) -> Schema:
        key = self._canonical(node)
        schema = self._schemas.get(key)
        if schema is None:
            schema = derive_schema(node, self.database.catalog)
            self._schemas[key] = schema
        return schema

    def _base_relations(self, node: Expression) -> FrozenSet[str]:
        key = self._canonical(node)
        relations = self._relations.get(key)
        if relations is None:
            relations = base_relations(node)
            self._relations[key] = relations
        return relations

    # -------------------------------------------------------------- entry point

    def differentiate(
        self,
        expression: Expression,
        relation: str,
        kind: DeltaKind,
        delta_rows: Relation,
        materialized: Optional[MaterializedRegistry] = None,
        cache: Optional[OldValueCache] = None,
    ) -> ExpressionDelta:
        """Compute ``expression``'s differential w.r.t. one base update.

        Mirrors :func:`differentiate` (the database must hold the pre-update
        state); ``cache`` carries shared old values across the views of one
        update round and must not outlive the round.
        """
        cache = cache if cache is not None else OldValueCache()

        def old(expr: Expression) -> Relation:
            key = self._canonical(expr)
            result = cache.old.get(key)
            if result is None:
                cache.misses += 1
                result = self.physical.evaluate(expr, materialized)
                cache.old[key] = result
                cache.dependencies[key] = self._base_relations(expr)
            else:
                cache.hits += 1
            return result

        def new(expr: Expression, delta: Optional[ExpressionDelta]) -> Relation:
            if delta is None or delta.is_empty:
                return old(expr)
            key = self._canonical(expr)
            result = cache.new.get(key)
            if result is None:
                result = old(expr).apply_delta(inserts=delta.inserts, deletes=delta.deletes)
                cache.new[key] = result
            return result

        def build_for(role: str, expr: Expression, source: Relation, positions):
            key = (role, self._canonical(expr), tuple(positions))
            build = cache.builds.get(key)
            if build is None:
                # Store-backed sources get the sorted-key probe table (no
                # row materialization); everything else the dict build.
                build = operators.vector_probe_build(source, positions)
                if build is None:
                    build = operators.hash_build(source, positions)
                cache.builds[key] = build
            return build

        def recurse(node: Expression) -> ExpressionDelta:
            schema = self._schema(node)
            if relation not in self._base_relations(node):
                return ExpressionDelta.empty(schema)
            key = self._canonical(node)
            cached = cache.deltas.get(key)
            if cached is not None:
                cache.hits += 1
                return cached
            result = compute(node, schema)
            cache.deltas[key] = result
            return result

        def compute(node: Expression, schema: Schema) -> ExpressionDelta:
            if isinstance(node, BaseRelation):
                if node.name != relation:
                    return ExpressionDelta.empty(schema)
                empty = Relation(schema, [])
                bag = Relation.from_trusted_rows(schema, list(delta_rows.rows))
                if kind is DeltaKind.INSERT:
                    return ExpressionDelta(bag, empty)
                return ExpressionDelta(empty, bag)

            if isinstance(node, Select):
                child = recurse(node.child)
                inserts, deletes = operators.delta_select_batch(
                    child.inserts, child.deletes, node.predicate
                )
                return ExpressionDelta(inserts, deletes)

            if isinstance(node, Project):
                child = recurse(node.child)
                inserts, deletes = operators.delta_project_batch(
                    child.inserts, child.deletes, node.columns
                )
                return ExpressionDelta(inserts, deletes)

            if isinstance(node, Join):
                return join_delta(node, schema)

            if isinstance(node, Aggregate):
                return aggregate_delta(node, schema)

            if isinstance(node, UnionAll):
                parts = [recurse(i) for i in node.inputs]
                inserts = [r for p in parts for r in p.inserts.rows]
                deletes = [r for p in parts for r in p.deletes.rows]
                return ExpressionDelta(
                    Relation.from_trusted_rows(schema, inserts),
                    Relation.from_trusted_rows(schema, deletes),
                )

            if isinstance(node, Difference):
                # Same old-vs-new comparison as the oracle; old/new inputs
                # come from the shared cache, so the double evaluation the
                # interpreted rule pays is amortized across the round.
                left_delta = recurse(node.left)
                right_delta = recurse(node.right)
                old_result = old(node.left).difference(old(node.right))
                new_result = new(node.left, left_delta).difference(
                    new(node.right, right_delta)
                )
                return ExpressionDelta(
                    new_result.difference(old_result), old_result.difference(new_result)
                )

            if isinstance(node, Distinct):
                child_delta = recurse(node.child)
                old_result = old(node.child).distinct()
                new_result = new(node.child, child_delta).distinct()
                return ExpressionDelta(
                    new_result.difference(old_result), old_result.difference(new_result)
                )

            raise TypeError(f"unknown expression type {type(node).__name__}")

        def join_delta(node: Join, schema: Schema) -> ExpressionDelta:
            left_dep = relation in self._base_relations(node.left)
            right_dep = relation in self._base_relations(node.right)
            left_delta = recurse(node.left) if left_dep else None
            right_delta = recurse(node.right) if right_dep else None

            insert_rows: List[Row] = []
            delete_rows: List[Row] = []
            # δ_left ⋈ OLD right: one build over the old right input, probed
            # by both delta bags (and by every view sharing this sub-join).
            if left_delta is not None and not left_delta.is_empty:
                old_right = old(node.right)
                delta_schema = left_delta.inserts.schema
                _, right_pos = operators._join_positions(
                    delta_schema, old_right.schema, node.conditions
                )
                build = (
                    build_for("old", node.right, old_right, right_pos)
                    if node.conditions
                    else None
                )
                ins, dels = operators.delta_hash_join_batch(
                    left_delta.inserts,
                    left_delta.deletes,
                    old_right,
                    node.conditions,
                    node.residual,
                    delta_side="left",
                    build=build,
                )
                insert_rows.extend(ins.rows)
                delete_rows.extend(dels.rows)
            # NEW left ⋈ δ_right (paper §5.3: (δE1 ⋈ E2) ∪ ((E1 ∪ δE1) ⋈ δE2)).
            if right_delta is not None and not right_delta.is_empty:
                new_left = new(node.left, left_delta)
                delta_schema = right_delta.inserts.schema
                left_pos, _ = operators._join_positions(
                    new_left.schema, delta_schema, node.conditions
                )
                role = "new" if (left_delta is not None and not left_delta.is_empty) else "old"
                build = (
                    build_for(role, node.left, new_left, left_pos)
                    if node.conditions
                    else None
                )
                ins, dels = operators.delta_hash_join_batch(
                    right_delta.inserts,
                    right_delta.deletes,
                    new_left,
                    node.conditions,
                    node.residual,
                    delta_side="right",
                    build=build,
                )
                insert_rows.extend(ins.rows)
                delete_rows.extend(dels.rows)

            return ExpressionDelta(
                Relation.from_trusted_rows(schema, insert_rows),
                Relation.from_trusted_rows(schema, delete_rows),
            )

        def aggregate_delta(node: Aggregate, schema: Schema) -> ExpressionDelta:
            child_delta = recurse(node.child)
            if child_delta.is_empty:
                return ExpressionDelta.empty(schema)

            child_schema = self._schema(node.child)
            group_pos = child_schema.positions(node.group_by)

            affected: Set[Tuple] = set()
            for row in child_delta.inserts.rows:
                affected.add(tuple(row[i] for i in group_pos))
            for row in child_delta.deletes.rows:
                affected.add(tuple(row[i] for i in group_pos))

            def restrict(rel: Relation) -> Relation:
                if not node.group_by:
                    return rel
                positions = rel.schema.positions(node.group_by)
                # One np.isin pass over the key column when the input is
                # column-store backed; row loop otherwise.
                return operators.semijoin_keys(rel, positions, affected)

            # Old aggregate rows for the affected groups: read from the
            # stored view when this exact node is materialized, else
            # recomputed from the old child restricted to those groups.
            view_name = materialized.lookup(node) if materialized is not None else None
            if view_name is not None and self.database.has_view(view_name):
                old_agg = restrict(self.database.view(view_name))
                if not node.group_by:
                    old_agg = Relation(old_agg.schema, list(old_agg.rows))
            else:
                old_agg = operators.aggregate_batch(
                    restrict(old(node.child)), node.group_by, node.aggregates
                )

            new_agg = operators.aggregate_batch(
                restrict(new(node.child, child_delta)), node.group_by, node.aggregates
            )

            inserts = new_agg.difference(old_agg)
            deletes = old_agg.difference(new_agg)
            return ExpressionDelta(
                Relation.from_trusted_rows(schema, list(inserts.rows)),
                Relation.from_trusted_rows(schema, list(deletes.rows)),
            )

        return recurse(expression)


class DifferentialMismatch(AssertionError):
    """Raised when the vectorized engine disagrees with the interpreted oracle."""


def verify_differential(
    engine_delta: ExpressionDelta, oracle_delta: ExpressionDelta, context: str = ""
) -> None:
    """Assert two differentials carry the same insert and delete bags."""
    if not engine_delta.inserts.same_bag(oracle_delta.inserts):
        raise DifferentialMismatch(
            f"insert bags diverge{f' for {context}' if context else ''}: "
            f"engine={len(engine_delta.inserts)} rows, oracle={len(oracle_delta.inserts)} rows"
        )
    if not engine_delta.deletes.same_bag(oracle_delta.deletes):
        raise DifferentialMismatch(
            f"delete bags diverge{f' for {context}' if context else ''}: "
            f"engine={len(engine_delta.deletes)} rows, oracle={len(oracle_delta.deletes)} rows"
        )
