"""The database: named base relations, materialized views and indexes.

A :class:`Database` is the runtime counterpart of the
:class:`~repro.catalog.Catalog`: it owns the actual tuple bags.  The
maintenance layer mutates it by applying deltas to base tables and refreshed
contents to materialized views; tests compare the incrementally maintained
views against recomputation over the same database.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog, IndexDef
from repro.catalog.schema import Schema, TableDef
from repro.catalog.statistics import TableStats
from repro.storage.delta import Delta, DeltaKind
from repro.storage.index import HashIndex, SortedIndex, build_index
from repro.storage.relation import Relation


class DatabaseError(KeyError):
    """Raised when a relation is not present in the database."""


class Database:
    """Holds base tables, materialized views and their indexes."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog or Catalog()
        self._tables: Dict[str, Relation] = {}
        self._views: Dict[str, Relation] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...], str], object] = {}

    # ------------------------------------------------------------------ tables

    def create_table(self, table: TableDef, rows: Optional[Iterable] = None) -> Relation:
        """Create (and register in the catalog) a base table."""
        relation = Relation(table.schema, rows or [], name=table.name)
        self._tables[table.name] = relation
        if not self.catalog.has_table(table.name):
            self.catalog.register_table(table)
        self.refresh_statistics(table.name)
        return relation

    def load_table(self, name: str, relation: Relation) -> None:
        """Replace the contents of an existing table (indexes are rebuilt)."""
        if name not in self._tables and not self.catalog.has_table(name):
            raise DatabaseError(f"unknown table {name!r}")
        relation.name = name
        self._tables[name] = relation
        self.rebuild_indexes(name)
        self.refresh_statistics(name)

    def table(self, name: str) -> Relation:
        """Fetch a base table (or a materialized view registered as a source)."""
        if name in self._tables:
            return self._tables[name]
        if name in self._views:
            return self._views[name]
        raise DatabaseError(f"relation {name!r} not loaded")

    def has_relation(self, name: str) -> bool:
        """Whether a table or view with this name is loaded."""
        return name in self._tables or name in self._views

    def table_names(self) -> List[str]:
        """Names of the loaded base tables."""
        return list(self._tables)

    # ------------------------------------------------------------------- views

    def materialize_view(self, name: str, relation: Relation) -> None:
        """Store (or replace) a materialized view's contents.

        Indexes built over a previous materialization of the same view are
        rebuilt, so index probes never serve rows of replaced contents.
        """
        relation.name = name
        self._views[name] = relation
        self.rebuild_indexes(name)

    def view(self, name: str) -> Relation:
        """Fetch a materialized view's contents."""
        try:
            return self._views[name]
        except KeyError as exc:
            raise DatabaseError(f"view {name!r} not materialized") from exc

    def has_view(self, name: str) -> bool:
        """Whether a view with this name is materialized."""
        return name in self._views

    def drop_view(self, name: str) -> None:
        """Discard a materialized view (used for temporary materializations)."""
        self._views.pop(name, None)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def view_names(self) -> List[str]:
        """Names of all materialized views."""
        return list(self._views)

    # ----------------------------------------------------------------- indexes

    def build_index(self, index: IndexDef) -> object:
        """Build an index over a loaded relation and register it in the catalog."""
        relation = self.table(index.table)
        built = build_index(relation, index.columns, kind="hash" if index.kind == "hash" else "btree")
        self._indexes[(index.table, index.columns, index.kind)] = built
        self.catalog.register_index(index)
        return built

    def index_for(self, table: str, columns: Sequence[str]) -> Optional[object]:
        """Find a usable index on ``table`` with leading key ``columns``."""
        wanted = tuple(c.rsplit(".", 1)[-1] for c in columns)
        for (tbl, cols, _kind), built in self._indexes.items():
            if tbl != table:
                continue
            key = tuple(c.rsplit(".", 1)[-1] for c in cols)
            if key[: len(wanted)] == wanted:
                return built
        return None

    def rebuild_indexes(self, table: str) -> None:
        """Rebuild every index on ``table`` (after its contents changed)."""
        for (tbl, cols, kind) in list(self._indexes):
            if tbl == table:
                relation = self.table(table)
                self._indexes[(tbl, cols, kind)] = build_index(
                    relation, cols, kind="hash" if kind == "hash" else "btree"
                )

    # ------------------------------------------------------------------ deltas

    def apply_update(self, relation: str, kind: DeltaKind, delta_rows: Relation) -> None:
        """Apply one single-relation update (insert or delete bag) to a base table."""
        current = self.table(relation)
        if kind is DeltaKind.INSERT:
            updated = current.union_all(delta_rows)
        else:
            updated = current.difference(delta_rows)
        updated.name = relation
        if relation in self._tables:
            self._tables[relation] = updated
        else:
            self._views[relation] = updated
        self.rebuild_indexes(relation)
        self.refresh_statistics(relation)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a full delta (inserts then deletes) to a base table."""
        if len(delta.inserts):
            self.apply_update(delta.relation, DeltaKind.INSERT, delta.inserts)
        if len(delta.deletes):
            self.apply_update(delta.relation, DeltaKind.DELETE, delta.deletes)

    def update_view(
        self,
        name: str,
        inserts: Optional[Relation] = None,
        deletes: Optional[Relation] = None,
    ) -> None:
        """Merge a computed view differential into the stored view (V ← V − δ− ∪ δ+)."""
        current = self.view(name)
        self._views[name] = current.apply_delta(inserts=inserts, deletes=deletes)
        self.rebuild_indexes(name)

    # ------------------------------------------------------------- statistics

    def refresh_statistics(self, name: str) -> None:
        """Re-measure catalog statistics for a loaded base table."""
        if name in self._tables and self.catalog.has_table(name):
            relation = self._tables[name]
            self.catalog.register_table_stats(name, TableStats.from_relation(relation))

    def copy(self) -> "Database":
        """Deep-enough copy: tuple bags are copied, catalog is shared copy."""
        clone = Database(self.catalog.copy())
        clone._tables = {k: v.copy() for k, v in self._tables.items()}
        clone._views = {k: v.copy() for k, v in self._views.items()}
        for (table, columns, kind) in self._indexes:
            if clone.has_relation(table):
                clone._indexes[(table, columns, kind)] = build_index(
                    clone.table(table), columns, kind="hash" if kind == "hash" else "btree"
                )
        return clone
