"""The database: named base relations, materialized views and indexes.

A :class:`Database` is the runtime counterpart of the
:class:`~repro.catalog.Catalog`: it owns the actual tuple bags.  The
maintenance layer mutates it by applying deltas to base tables and refreshed
contents to materialized views; tests compare the incrementally maintained
views against recomputation over the same database.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.catalog import Catalog, IndexDef
from repro.catalog.schema import TableDef
from repro.catalog.statistics import TableStats
from repro.storage.columns import NumpyColumnStore, numpy as _np
from repro.storage.delta import Delta, DeltaKind
from repro.storage.index import build_index
from repro.storage.relation import Relation, Row, multiset_subtract

#: Delta fraction beyond which a full index rebuild beats incremental
#: maintenance (sorted-index splicing degrades towards re-sort cost).
INCREMENTAL_INDEX_FRACTION = 0.25

#: Row count from which an update builds a column store for a relation that
#: does not have one yet.  The build is a one-off dtype-inference pass; it
#: pays for itself because the store is carried across every later merge,
#: which then runs columnar instead of re-walking Python row tuples.
_STORE_CARRY_MIN_ROWS = 4096


class DatabaseError(KeyError):
    """Raised when a relation is not present in the database."""


class Database:
    """Holds base tables, materialized views and their indexes."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog or Catalog()
        self._tables: Dict[str, Relation] = {}
        self._views: Dict[str, Relation] = {}
        self._indexes: Dict[Tuple[str, Tuple[str, ...], str], object] = {}

    # ------------------------------------------------------------------ tables

    def create_table(self, table: TableDef, rows: Optional[Iterable] = None) -> Relation:
        """Create (and register in the catalog) a base table."""
        relation = Relation(table.schema, rows or [], name=table.name)
        self._tables[table.name] = relation
        if not self.catalog.has_table(table.name):
            self.catalog.register_table(table)
        self.refresh_statistics(table.name)
        return relation

    def load_table(self, name: str, relation: Relation) -> None:
        """Replace the contents of an existing table (indexes are rebuilt)."""
        if name not in self._tables and not self.catalog.has_table(name):
            raise DatabaseError(f"unknown table {name!r}")
        relation.name = name
        self._tables[name] = relation
        self.rebuild_indexes(name)
        self.refresh_statistics(name)

    def table(self, name: str) -> Relation:
        """Fetch a base table (or a materialized view registered as a source)."""
        if name in self._tables:
            return self._tables[name]
        if name in self._views:
            return self._views[name]
        raise DatabaseError(f"relation {name!r} not loaded")

    def has_relation(self, name: str) -> bool:
        """Whether a table or view with this name is loaded."""
        return name in self._tables or name in self._views

    def table_names(self) -> List[str]:
        """Names of the loaded base tables."""
        return list(self._tables)

    # ------------------------------------------------------------------- views

    def materialize_view(self, name: str, relation: Relation) -> None:
        """Store (or replace) a materialized view's contents.

        Indexes built over a previous materialization of the same view are
        rebuilt, so index probes never serve rows of replaced contents.
        """
        relation.name = name
        self._views[name] = relation
        self.rebuild_indexes(name)
        # A full replacement invalidates the old distributions wholesale
        # (delta merges maintain them incrementally instead), so re-measure.
        # Measurement is reservoir-sampled, so this costs O(sample) per
        # column, not O(|view|) — cheap enough for temporaries that only
        # re-materialize when actually stale.
        self.refresh_statistics(name, full=True)

    def view(self, name: str) -> Relation:
        """Fetch a materialized view's contents."""
        try:
            return self._views[name]
        except KeyError as exc:
            raise DatabaseError(f"view {name!r} not materialized") from exc

    def has_view(self, name: str) -> bool:
        """Whether a view with this name is materialized."""
        return name in self._views

    def drop_view(self, name: str) -> None:
        """Discard a materialized view (used for temporary materializations)."""
        self._views.pop(name, None)
        self.catalog.drop_view_stats(name)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def view_names(self) -> List[str]:
        """Names of all materialized views."""
        return list(self._views)

    # ----------------------------------------------------------------- indexes

    def build_index(self, index: IndexDef) -> object:
        """Build an index over a loaded relation and register it in the catalog."""
        relation = self.table(index.table)
        built = build_index(relation, index.columns, kind="hash" if index.kind == "hash" else "btree")
        self._indexes[(index.table, index.columns, index.kind)] = built
        self.catalog.register_index(index)
        return built

    def index_for(self, table: str, columns: Sequence[str]) -> Optional[object]:
        """Find a usable index on ``table`` with leading key ``columns``."""
        wanted = tuple(c.rsplit(".", 1)[-1] for c in columns)
        for (tbl, cols, _kind), built in self._indexes.items():
            if tbl != table:
                continue
            key = tuple(c.rsplit(".", 1)[-1] for c in cols)
            if key[: len(wanted)] == wanted:
                return built
        return None

    def rebuild_indexes(self, table: str) -> None:
        """Rebuild every index on ``table`` (after its contents changed)."""
        for (tbl, cols, kind) in list(self._indexes):
            if tbl == table:
                relation = self.table(table)
                self._indexes[(tbl, cols, kind)] = build_index(
                    relation, cols, kind="hash" if kind == "hash" else "btree"
                )

    # ------------------------------------------------------------------ deltas

    def apply_update(self, relation: str, kind: DeltaKind, delta_rows: Relation) -> None:
        """Apply one single-relation update (insert or delete bag) to a base table.

        Indexes on the relation are maintained from the delta bag instead of
        being rebuilt from scratch: insert positions are appended, delete
        positions remapped.  A full rebuild only happens as fallback when the
        delta is large relative to the relation (splice cost approaches
        rebuild cost) or an index cannot be maintained incrementally.
        """
        current = self.table(relation)
        if kind is DeltaKind.INSERT:
            self._apply_insert(relation, current, delta_rows)
        else:
            self._apply_delete(relation, current, delta_rows)
        sign = 1 if kind is DeltaKind.INSERT else -1
        self.refresh_statistics(relation, full=False, deltas=((delta_rows, sign),))

    def apply_delta(self, delta: Delta) -> None:
        """Apply a full delta (inserts then deletes) to a base table."""
        if len(delta.inserts):
            self.apply_update(delta.relation, DeltaKind.INSERT, delta.inserts)
        if len(delta.deletes):
            self.apply_update(delta.relation, DeltaKind.DELETE, delta.deletes)

    def update_view(
        self,
        name: str,
        inserts: Optional[Relation] = None,
        deletes: Optional[Relation] = None,
    ) -> None:
        """Merge a computed view differential into the stored view (V ← V − δ− ∪ δ+).

        Like :meth:`apply_update`, view indexes are maintained from the delta
        bags rather than rebuilt, and the view's catalog statistics are
        refreshed so reuse costing never reads a stale cardinality.
        """
        current = self.view(name)
        deltas: List[Tuple[Relation, int]] = []
        if deletes is not None and len(deletes):
            current = self._apply_delete(name, current, deletes)
            deltas.append((deletes, -1))
        if inserts is not None and len(inserts):
            current = self._apply_insert(name, current, inserts)
            deltas.append((inserts, 1))
        self.refresh_statistics(name, full=False, deltas=tuple(deltas))

    # ------------------------------------------------- incremental update steps

    def _store(self, name: str, relation: Relation) -> None:
        if name in self._tables:
            self._tables[name] = relation
        else:
            self._views[name] = relation

    def _indexes_on(self, name: str) -> List[Tuple[Tuple[str, Tuple[str, ...], str], object]]:
        return [(key, built) for key, built in self._indexes.items() if key[0] == name]

    def _carry_store(self, name: str, current: Relation):
        """The column store to maintain across an update, or ``None``.

        Base tables carry their stores forward because every differential's
        ``old()`` evaluation re-reads them; keeping the columns current saves
        a full dtype-inference rebuild per update.  Views carry theirs so the
        merge itself can run columnar (:meth:`_vector_delete_mask`) instead
        of re-materializing the whole view as row tuples each round.

        A relation that arrives row-backed gets a store built once it is
        large enough for the build to amortize over the carried rounds —
        after that every merge stays columnar.
        """
        store = current.cached_store()
        if store is None:
            store = current.vector_store(_STORE_CARRY_MIN_ROWS)
        return store

    @staticmethod
    def _delta_tail(carried, delta_rows: Relation, current: Relation):
        """The insert bag as a store of ``carried``'s kind, reusing its own."""
        tail = delta_rows.cached_store()
        if tail is not None and type(tail) is type(carried):
            return tail
        return type(carried).from_rows(delta_rows.rows, len(current.schema))

    def _apply_insert(self, name: str, current: Relation, delta_rows: Relation) -> Relation:
        """Append an insert bag; index the appended tail incrementally."""
        if len(current.schema) != len(delta_rows.schema):
            raise ValueError(
                f"incompatible schemas: {current.schema.names} vs {delta_rows.schema.names}"
            )
        carried = self._carry_store(name, current)
        entries = self._indexes_on(name)
        if carried is not None and not entries:
            # Pure columnar append: the old rows never have to exist as
            # tuples.  (Index maintenance below needs the row list, so
            # indexed relations stay on the row path and just adopt.)
            tail = self._delta_tail(carried, delta_rows, current)
            if delta_rows.cached_store() is None:
                # The tail store holds exactly the delta's rows — hand it to
                # the delta too, so the statistics maintenance that follows
                # runs its vectorized route even for tiny bags.
                delta_rows.adopt_store(tail)
            updated = Relation.from_store(current.schema, carried.concat(tail), name)
            self._store(name, updated)
            return updated
        updated = Relation.from_trusted_rows(
            current.schema, current.rows + delta_rows.rows, name
        )
        if carried is not None and len(delta_rows):
            # Carry the previous version's columns across the insert: a
            # concat with the (small) delta's columns costs O(δ + n) array
            # copying instead of re-inferring dtypes over the whole new row
            # list next time a vectorized kernel touches this table.
            tail = self._delta_tail(carried, delta_rows, current)
            if delta_rows.cached_store() is None:
                delta_rows.adopt_store(tail)
            updated.adopt_store(carried.concat(tail))
        self._store(name, updated)
        if entries:
            if len(delta_rows) > INCREMENTAL_INDEX_FRACTION * max(1, len(current)):
                self.rebuild_indexes(name)
            else:
                try:
                    for _, built in entries:
                        built.apply_insert(updated, len(current.rows))
                except Exception:
                    # e.g. un-orderable keys a sorted index cannot splice.
                    self.rebuild_indexes(name)
        return updated

    @staticmethod
    def _vector_delete_mask(store, delta_rows: Relation):
        """Keep-mask for ``store − delta``, columnar end to end.

        Two vectorized routes, exact first-match multiset semantics either
        way (mirroring :func:`multiset_subtract`):

        1. **Candidate narrowing** — numeric columns cheaply narrow the rows
           that could possibly match a delete (``isin`` membership per
           column); when few candidates survive, only those are gathered as
           tuples for the Counter-based subtraction.
        2. **Codes subtraction** (:meth:`_vector_codes_mask`) — when no
           numeric column exists (string-keyed views) or narrowing leaves a
           large candidate set, every column is factorized into integer
           codes and the whole subtraction runs as array arithmetic: no
           per-row Python loop at all.

        Returns ``True`` when no row matched, a boolean keep array
        otherwise, or ``None`` when neither route applies (caller falls
        back to the row path).
        """
        if _np is None or not isinstance(store, NumpyColumnStore):
            return None
        target = len(delta_rows)
        candidates = None
        narrowed = False
        for position in range(store.arity):
            column = store.column(position)
            if column.dtype.kind not in "if":
                continue
            probe = _np.asarray(delta_rows.column_at(position))
            if probe.dtype.kind not in "if":
                continue
            hit = _np.isin(column, probe)
            candidates = hit if candidates is None else candidates & hit
            if int(candidates.sum()) <= 4 * target:
                narrowed = True
                break
        if candidates is not None:
            positions = _np.flatnonzero(candidates)
            if not len(positions):
                return True
            if narrowed:
                return Database._candidate_delete_mask(store, positions, delta_rows)
        keep = Database._vector_codes_mask(store, delta_rows)
        if keep is not None:
            return keep
        if candidates is not None:
            return Database._candidate_delete_mask(
                store, _np.flatnonzero(candidates), delta_rows
            )
        return None

    @staticmethod
    def _candidate_delete_mask(store, positions, delta_rows: Relation):
        """Exact subtraction over a narrowed candidate set (gathered rows)."""
        target = len(delta_rows)
        remaining = Counter(delta_rows.rows)
        get = remaining.get
        deleted: List[int] = []
        matched = 0
        rows = store.gather(positions).to_rows()
        for position, row in zip(positions.tolist(), rows):
            if get(row, 0) > 0:
                remaining[row] -= 1
                deleted.append(position)
                matched += 1
                if matched == target:
                    break
        if not deleted:
            return True
        keep = _np.ones(len(store), dtype=bool)
        keep[_np.asarray(deleted, dtype=_np.int64)] = False
        return keep

    @staticmethod
    def _vector_codes_mask(store, delta_rows: Relation):
        """Fully vectorized first-match multiset delete via column codes.

        Each column of ``store ⧺ delta`` is factorized into dense integer
        codes (``np.unique`` with ``return_inverse``), the per-column codes
        are folded into one row-group id, and the delete quota per group is
        the delta's group histogram.  A store row is deleted iff its rank
        among equal rows *in store order* is below the quota — exactly the
        first-match order of :func:`multiset_subtract`, with no Python loop
        over rows.

        Returns ``None`` (caller falls back) when the columns cannot be
        factorized faithfully: un-orderable mixed values (``None`` beside
        strings) make ``np.unique`` raise, and NaN keys in the delta would
        collapse under ``np.unique`` even though ``Counter`` equality never
        matches them.
        """
        n = len(store)
        target = len(delta_rows)
        if n == 0 or target == 0:
            return True
        group = None
        for position in range(store.arity):
            column = store.column(position)
            probe = _np.asarray(delta_rows.column_at(position))
            if probe.dtype.kind == "f" and bool(_np.isnan(probe).any()):
                return None
            if probe.dtype.kind == "O" and any(
                isinstance(value, float) and value != value for value in probe.tolist()
            ):
                return None
            try:
                merged = _np.concatenate([column, probe])
                _, codes = _np.unique(merged, return_inverse=True)
            except (TypeError, ValueError):
                return None
            codes = codes.astype(_np.int64, copy=False)
            if group is None:
                group = codes
            else:
                paired = group * _np.int64(int(codes.max()) + 1) + codes
                _, group = _np.unique(paired, return_inverse=True)
                group = group.astype(_np.int64, copy=False)
        if group is None:
            return None
        store_groups = group[:n]
        delta_groups = group[n:]
        quota = _np.bincount(delta_groups, minlength=int(group.max()) + 1)
        if not bool((quota[store_groups] > 0).any()):
            return True
        # Rank of each store row among equal rows, in store order: stable
        # argsort groups equal rows together preserving arrival order, so
        # rank = position-in-run of the sorted sequence scattered back.
        order = _np.argsort(store_groups, kind="stable")
        sorted_groups = store_groups[order]
        run_flags = _np.concatenate(
            ([False], sorted_groups[1:] != sorted_groups[:-1])
        )
        run_ids = _np.cumsum(run_flags)
        starts = _np.concatenate(([0], _np.flatnonzero(run_flags)))
        ranks_sorted = _np.arange(n, dtype=_np.int64) - starts[run_ids]
        ranks = _np.empty(n, dtype=_np.int64)
        ranks[order] = ranks_sorted
        delete = ranks < quota[store_groups]
        if not bool(delete.any()):
            return True
        return ~delete

    def _apply_delete(self, name: str, current: Relation, delta_rows: Relation) -> Relation:
        """Remove a delete bag (one copy per match) and remap index positions."""
        if len(current.schema) != len(delta_rows.schema):
            raise ValueError(
                f"incompatible schemas: {current.schema.names} vs {delta_rows.schema.names}"
            )
        entries = self._indexes_on(name)
        carried = self._carry_store(name, current)
        if not entries:
            if carried is not None:
                keep = self._vector_delete_mask(carried, delta_rows)
                if keep is not None:
                    survived = carried if keep is True else carried.mask(keep)
                    updated = Relation.from_store(current.schema, survived, name)
                    self._store(name, updated)
                    return updated
            # No indexes to remap and no columnar path: plain bag
            # difference, no position tracking.
            kept = multiset_subtract(current.rows, delta_rows.rows)
            updated = Relation.from_trusted_rows(current.schema, kept, name)
            if carried is not None:
                if len(kept) == len(current):
                    updated.adopt_store(carried)
            self._store(name, updated)
            return updated
        remaining = Counter(delta_rows.rows)
        get = remaining.get
        kept: List[Row] = []
        append = kept.append
        old_to_new: List[Optional[int]] = []
        for row in current.rows:
            if get(row, 0) > 0:
                remaining[row] -= 1
                old_to_new.append(None)
            else:
                old_to_new.append(len(kept))
                append(row)
        updated = Relation.from_trusted_rows(current.schema, kept, name)
        if carried is not None and len(kept) != len(current.rows):
            # Same survivors, column form: mask the previous version's store
            # with the positions the subtraction kept.
            updated.adopt_store(carried.mask([p is not None for p in old_to_new]))
        elif carried is not None:
            updated.adopt_store(carried)
        self._store(name, updated)
        removed = len(current.rows) - len(kept)
        try:
            if removed == 0:
                for _, built in entries:
                    built.retarget(updated)
            else:
                for _, built in entries:
                    built.apply_delete(updated, old_to_new)
        except Exception:
            self.rebuild_indexes(name)
        return updated

    # ------------------------------------------------------------- statistics

    def refresh_statistics(
        self,
        name: str,
        full: bool = True,
        deltas: Sequence[Tuple[Relation, int]] = (),
    ) -> None:
        """Refresh catalog statistics for a loaded base table or view.

        With ``full`` set (table loads, first sighting of a relation) the
        statistics are measured from scratch — via reservoir sampling for
        large relations.  The delta paths pass ``full=False`` plus the
        applied ``(bag, sign)`` pairs: the cardinality — which drives the
        cost model's scan/reuse/materialize formulas — is updated exactly,
        and the delta bags are folded into the column statistics (histogram
        bucket counts shift, inserted values widen min/max), so view and
        table distributions stay fresh the same incremental way the
        cardinalities already do, at O(|delta|) instead of O(|relation|).
        """
        if name in self._tables and self.catalog.has_table(name):
            relation = self._tables[name]
            existing = (
                self.catalog.stats(name)
                if not full and self.catalog.has_table_stats(name)
                else None
            )
            if existing is None:
                stats = TableStats.from_relation(relation)
            else:
                stats = self._maintained(existing, relation, deltas)
            self.catalog.register_table_stats(name, stats)
        elif name in self._views:
            relation = self._views[name]
            existing = None if full else self.catalog.view_stats(name)
            if existing is None:
                stats = TableStats.from_relation(relation)
            else:
                stats = self._maintained(existing, relation, deltas)
            self.catalog.register_view_stats(name, stats)

    @staticmethod
    def _maintained(
        existing: TableStats, relation: Relation, deltas: Sequence[Tuple[Relation, int]]
    ) -> TableStats:
        """Incrementally maintained statistics after applying ``deltas``."""
        stats = existing
        for bag, sign in deltas:
            stats = stats.updated_by_delta(bag, sign)
        # The relation is the ground truth for cardinality, always exact.
        return stats.with_cardinality(float(len(relation)))

    def copy(self) -> "Database":
        """Deep-enough copy: tuple bags are copied, catalog is shared copy."""
        clone = Database(self.catalog.copy())
        clone._tables = {k: v.copy() for k, v in self._tables.items()}
        clone._views = {k: v.copy() for k, v in self._views.items()}
        for (table, columns, kind) in self._indexes:
            if clone.has_relation(table):
                clone._indexes[(table, columns, kind)] = build_index(
                    clone.table(table), columns, kind="hash" if kind == "hash" else "btree"
                )
        return clone
