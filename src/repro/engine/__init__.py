"""Bag-algebra execution engine.

The engine evaluates logical expressions (and optimizer plans) against a
:class:`Database` of named relations, and — crucially for this paper —
propagates *differentials* of expressions with respect to single-relation
updates, which is the executable ground truth the maintenance tests use to
check that incremental refresh produces exactly the same view contents as
full recomputation.
"""

from repro.engine.database import Database
from repro.engine.executor import evaluate
from repro.engine.differential import ExpressionDelta, differentiate
from repro.engine import operators

__all__ = ["Database", "evaluate", "ExpressionDelta", "differentiate", "operators"]
