"""Bag-algebra execution engine.

The engine evaluates logical expressions against a :class:`Database` of
named relations through two paths: the row-at-a-time interpreter
(:func:`evaluate`, the correctness oracle) and the physical layer
(:func:`evaluate_physical`), which compiles the plans the optimizer actually
picks — per-node join algorithms, reuse of materialized results — into a
vectorized operator pipeline.  It also — crucially for this paper —
propagates *differentials* of expressions with respect to single-relation
updates, which is the executable ground truth the maintenance tests use to
check that incremental refresh produces exactly the same view contents as
full recomputation.
"""

from repro.engine.database import Database
from repro.engine.executor import evaluate
from repro.engine.differential import (
    DifferentialEngine,
    ExpressionDelta,
    OldValueCache,
    differentiate,
)
from repro.engine.physical import PhysicalExecutor, evaluate_physical
from repro.engine import operators

__all__ = [
    "Database",
    "evaluate",
    "evaluate_physical",
    "PhysicalExecutor",
    "DifferentialEngine",
    "OldValueCache",
    "ExpressionDelta",
    "differentiate",
    "operators",
]
