"""Physical bag operators.

Each function consumes and produces :class:`~repro.storage.Relation` objects
with multiset semantics.  Several join algorithms are provided (nested-loop,
hash, sort-merge, index nested-loop) so that the plans the optimizer costs
can actually be executed; the executor picks the algorithm named in the
physical plan, defaulting to hash join.
"""

from __future__ import annotations

import math
from collections import defaultdict
from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import AggregateFunc, AggregateSpec
from repro.algebra.predicates import (
    _OPS as _COMPARISON_OPS,
    Comparison,
    ColumnRef,
    Literal,
    Predicate,
    TruePredicate,
    compile_mask,
    compile_predicate,
)
from repro.catalog.schema import Column, ColumnType, Schema, SchemaError
from repro.storage import columns as _backend_columns
from repro.storage.columns import numpy as _np
from repro.storage.relation import Relation, Row

#: Minimum bag size before a vector kernel will *build* a column store for a
#: row-backed input.  Below this, array conversion costs more than the row
#: loop saves; inputs that already carry a numpy store vectorize regardless
#: (store-to-store pipelines stay columnar end to end).
VECTOR_MIN_ROWS = 64

#: Minimum bag size before a *single-use* kernel (semijoin, aggregation,
#: join) converts a row-backed input to typed arrays.  Scans amortize a
#: build across every later kernel touching the same relation — the store
#: is cached and the database update path carries it across deltas — but a
#: one-shot group-by or key probe only recoups the per-cell inference cost
#: on bags this large.
VECTOR_BUILD_MIN_ROWS = 4096


# ---------------------------------------------------------------- select / project

def select(relation: Relation, predicate: Predicate) -> Relation:
    """σ_predicate — keep rows satisfying the predicate."""
    schema = relation.schema
    return Relation(schema, [r for r in relation if predicate.evaluate(r, schema)], relation.name)


def select_batch(relation: Relation, predicate: Predicate) -> Relation:
    """Batch σ_predicate over the columnar fast path.

    With the numpy backend the predicate compiles to a whole-column mask
    (:func:`~repro.algebra.predicates.compile_mask`) and selection is one
    boolean gather over the store.  On the fallback path, single
    column-vs-literal comparisons — the dominant selection shape in the
    workloads — are evaluated directly against the column array; every
    other predicate runs as one compiled closure over the row batch.
    Output bags are identical to :func:`select`.
    """
    schema = relation.schema
    store = relation.vector_store(VECTOR_MIN_ROWS)
    if store is not None:
        keep = compile_mask(predicate, schema)(store)
        return Relation.from_store(schema, store.mask(keep), relation.name)
    rows = relation.rows
    if (
        isinstance(predicate, Comparison)
        and isinstance(predicate.left, ColumnRef)
        and isinstance(predicate.right, Literal)
        and predicate.right.value is not None
    ):
        # Inlined column-vs-literal comparison; must mirror the semantics of
        # compile_predicate's ColumnRef/Literal branch (None never matches),
        # which the physical-vs-logical property suite pins down.
        op_fn = _COMPARISON_OPS[predicate.op]
        value = predicate.right.value
        column = relation.column_values(predicate.left.name)
        kept = [
            row
            for v, row in zip(column, rows)
            if v is not None and op_fn(v, value)
        ]
        return Relation.from_trusted_rows(schema, kept, relation.name)
    fn = compile_predicate(predicate, schema)
    return Relation.from_trusted_rows(schema, [r for r in rows if fn(r)], relation.name)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π_columns — duplicate-preserving projection."""
    return relation.project(columns)


# ---------------------------------------------------------------------- joins

def _join_positions(
    left: Schema, right: Schema, conditions: Sequence[Tuple[str, str]]
) -> Tuple[List[int], List[int]]:
    """Resolve equi-join columns to positions.

    Each condition is tried in its written orientation first (first column on
    the left input, second on the right); only if that fails is the swapped
    orientation accepted (joins are commutative, so conditions may be written
    relative to either operand order).  A condition that resolves in neither
    orientation raises a :class:`SchemaError` naming both schemas, instead of
    silently mis-binding columns that happen to exist on both sides.
    """
    left_pos: List[int] = []
    right_pos: List[int] = []
    for a, b in conditions:
        as_written = (_position_of(left, a), _position_of(right, b))
        if as_written[0] is not None and as_written[1] is not None:
            left_pos.append(as_written[0])
            right_pos.append(as_written[1])
            continue
        swapped = (_position_of(left, b), _position_of(right, a))
        if swapped[0] is not None and swapped[1] is not None:
            left_pos.append(swapped[0])
            right_pos.append(swapped[1])
            continue
        raise SchemaError(
            f"join condition {a!r}={b!r} cannot be resolved: neither orientation "
            f"binds to left schema {left.names} and right schema {right.names}"
        )
    return left_pos, right_pos


def _position_of(schema: Schema, name: str) -> Optional[int]:
    """Resolve ``name`` in ``schema``, returning None when missing/ambiguous."""
    try:
        return schema.index_of(name)
    except SchemaError:
        return None


def _output(left: Relation, right: Relation) -> Schema:
    return left.schema.concat(right.schema)


def _residual_filter(
    rows: List[Row], schema: Schema, residual: Optional[Predicate]
) -> List[Row]:
    if residual is None or isinstance(residual, TruePredicate):
        return rows
    fn = compile_predicate(residual, schema)
    return [r for r in rows if fn(r)]


def nested_loop_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Tuple nested-loop join (also serves as the cross-product operator)."""
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    out: List[Row] = []
    for lrow in left:
        lkey = tuple(lrow[i] for i in left_pos)
        for rrow in right:
            if conditions and tuple(rrow[i] for i in right_pos) != lkey:
                continue
            out.append(lrow + rrow)
    return Relation(schema, _residual_filter(out, schema, residual))


def hash_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Hash join on the equi-join columns (build on the smaller input)."""
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    # Build on the right input, probe with the left (output order: left ++ right).
    buckets: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)
    for rrow in right:
        buckets[tuple(rrow[i] for i in right_pos)].append(rrow)
    out: List[Row] = []
    for lrow in left:
        key = tuple(lrow[i] for i in left_pos)
        for rrow in buckets.get(key, ()):
            out.append(lrow + rrow)
    return Relation(schema, _residual_filter(out, schema, residual))


def nested_loop_join_batch(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Batch nested-loop join, bag-identical to :func:`nested_loop_join`.

    With equi-join conditions the inner side is partitioned by key once, so
    each outer tuple only visits inner tuples that can match — the classic
    refinement of tuple nested-loops that avoids re-testing every pair.  For
    pure cross products the pairing runs as one flat list comprehension.
    """
    if conditions:
        return hash_join_batch(left, right, conditions, residual)
    schema = _output(left, right)
    out = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation.from_trusted_rows(schema, _residual_filter(out, schema, residual))


def _residual_mask_store(store, schema: Schema, residual: Optional[Predicate]):
    """Apply a residual predicate to a numpy store (no-op for True/None)."""
    if residual is None or isinstance(residual, TruePredicate):
        return store
    return store.mask(compile_mask(residual, schema)(store))


def _vector_join_keys(left_store, left_pos, right_store, right_pos):
    """Per-side key arrays for the vectorized equi-join, or ``None``.

    Only typed numeric columns of the same kind on both sides qualify —
    object columns can hold ``None`` (whose bucket semantics the dict path
    preserves) and mixed int/float pairs would go through lossy float
    conversion for 2^53+ ints.  Multi-column keys are fused into one int64
    code per row by successive factorization.
    """
    left_keys = [left_store.column(i) for i in left_pos]
    right_keys = [right_store.column(i) for i in right_pos]
    for a, b in zip(left_keys, right_keys):
        if a.dtype.kind not in "if" or b.dtype.kind not in "if" or a.dtype.kind != b.dtype.kind:
            return None
    if len(left_keys) == 1:
        return left_keys[0], right_keys[0]
    n_left = len(left_store)
    lkey = _np.zeros(n_left, dtype=_np.int64)
    rkey = _np.zeros(len(right_store), dtype=_np.int64)
    capacity = 1
    for a, b in zip(left_keys, right_keys):
        uniques, codes = _np.unique(_np.concatenate((a, b)), return_inverse=True)
        capacity *= max(len(uniques), 1)
        if capacity > 2**62:
            return None
        lkey = lkey * len(uniques) + codes[:n_left]
        rkey = rkey * len(uniques) + codes[n_left:]
    return lkey, rkey


def vectorizable_join(
    left: Relation,
    right: Relation,
    left_pos: Sequence[int],
    right_pos: Sequence[int],
) -> bool:
    """Cheap test that :func:`hash_join_batch` would try the column kernel.

    Mirrors :func:`_vector_equi_join`'s coarse size/store gates without
    building anything, so physical operators with their own row fallbacks
    can decide whether delegating to the batch kernel is worthwhile.
    """
    if _np is None or not left_pos or not right_pos:
        return False
    if left.has_vector_store or right.has_vector_store:
        return True
    return min(len(left), len(right)) >= VECTOR_BUILD_MIN_ROWS


def _vector_equi_join(
    left: Relation,
    right: Relation,
    left_pos: Sequence[int],
    right_pos: Sequence[int],
    schema: Schema,
    residual: Optional[Predicate],
) -> Optional[Relation]:
    """Whole-column equi-join, or ``None`` when the inputs do not qualify.

    Sort-based matching over the key arrays: the right side is stably
    sorted once, each left key finds its matching run by binary search, and
    the output indices expand with ``repeat``/cumulative offsets.  Because
    the sort is stable and left rows emit in order, the output ordering is
    *exactly* that of :func:`hash_join` (left order outer, original right
    order within a key) — not just the same bag.
    """
    if _np is None:
        return None
    if (
        max(len(left), len(right)) < VECTOR_MIN_ROWS
        and not left.has_vector_store
        and not right.has_vector_store
    ):
        return None
    # A side with a cached store vectorizes for free; once one side is
    # columnar the other converts even when small (delta bags probing a
    # stored table).  Two row-backed sides must both be large enough to
    # amortize a single-use conversion, else the dict join wins.
    if left.has_vector_store or right.has_vector_store:
        build_min = 0
    else:
        build_min = VECTOR_BUILD_MIN_ROWS
    left_store = left.vector_store(build_min)
    right_store = right.vector_store(build_min)
    if left_store is None or right_store is None:
        return None
    keys = _vector_join_keys(left_store, left_pos, right_store, right_pos)
    if keys is None:
        return None
    lkey, rkey = keys
    order = _np.argsort(rkey, kind="stable")
    sorted_rkey = rkey[order]
    starts = _np.searchsorted(sorted_rkey, lkey, side="left")
    ends = _np.searchsorted(sorted_rkey, lkey, side="right")
    counts = ends - starts
    total = int(counts.sum())
    left_idx = _np.repeat(_np.arange(len(lkey)), counts)
    if total:
        offsets = _np.cumsum(counts) - counts
        positions = _np.arange(total) - _np.repeat(offsets, counts) + _np.repeat(starts, counts)
        right_idx = order[positions]
    else:
        right_idx = _np.zeros(0, dtype=_np.int64)
    out = left_store.gather(left_idx).hstack(right_store.gather(right_idx))
    out = _residual_mask_store(out, schema, residual)
    return Relation.from_store(schema, out)


def hash_join_batch(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Vectorized hash join producing the same bag as :func:`hash_join`.

    With the numpy backend, qualifying joins (typed numeric keys) run as
    one whole-column sort/search/gather pass — see :func:`_vector_equi_join`.
    Otherwise build and probe run over column arrays: single-condition
    joins (the common case for foreign-key joins) key the hash table on the
    raw column value — no per-row key-tuple construction — and the probe
    emits matches through one flat list comprehension.
    """
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    joined = _vector_equi_join(left, right, left_pos, right_pos, schema, residual)
    if joined is not None:
        return joined
    lrows = left.rows
    rrows = right.rows
    buckets: Dict[Any, List[Row]] = {}
    setdefault = buckets.setdefault
    get = buckets.get
    empty: Tuple[Row, ...] = ()
    if len(left_pos) == 1:
        li = left_pos[0]
        ri = right_pos[0]
        for rrow in rrows:
            setdefault(rrow[ri], []).append(rrow)
        out = [lrow + rrow for lrow in lrows for rrow in get(lrow[li], empty)]
    else:
        for rrow in rrows:
            setdefault(tuple(rrow[i] for i in right_pos), []).append(rrow)
        out = [
            lrow + rrow
            for lrow in lrows
            for rrow in get(tuple(lrow[i] for i in left_pos), empty)
        ]
    return Relation.from_trusted_rows(schema, _residual_filter(out, schema, residual))


# ------------------------------------------------------------- delta kernels
#
# Differential maintenance evaluates the *same* operator over the insert and
# delete bags of a differential (δ+ and δ−).  These kernels run both bags
# through one shared setup — one compiled predicate, one resolved projection,
# one hash build over the non-delta join input — so the per-round cost is
# paid once instead of once per bag (and, via the caller-supplied ``build``,
# once per refresh round instead of once per view).

def hash_build(relation: Relation, positions: Sequence[int]) -> Dict[Any, List[Row]]:
    """Key → rows bucket table over ``positions`` (scalar key when single).

    The delta join kernels probe this table; callers that join several delta
    bags against the same input (or share one input across views, as the
    refresh engine's old-value cache does) build it once and pass it in.
    """
    buckets: Dict[Any, List[Row]] = {}
    setdefault = buckets.setdefault
    if len(positions) == 1 and relation.cached_store() is not None:
        # Key off the flat column array: for store-backed inputs the key
        # column decodes in one C-level pass instead of indexing into every
        # materialized row tuple.
        for key, row in zip(relation.column_at(positions[0]), relation.rows):
            setdefault(key, []).append(row)
    elif len(positions) == 1:
        i = positions[0]
        for row in relation.rows:
            setdefault(row[i], []).append(row)
    else:
        for row in relation.rows:
            setdefault(tuple(row[i] for i in positions), []).append(row)
    return buckets


class VectorProbeBuild:
    """Sorted-key probe table over a store-backed join input.

    The columnar analogue of :func:`hash_build`: the non-delta input's key
    column is stably argsorted once, and each delta bag finds its matching
    runs by binary search — no row materialization of the (large) stored
    side at all.  Shareable across both delta bags, across views, and
    across a whole refresh round exactly like the dict build.
    """

    __slots__ = ("store", "key", "order", "sorted_key", "positions")

    def __init__(self, store, key, positions) -> None:
        self.store = store
        self.key = key
        self.positions = tuple(positions)
        self.order = _np.argsort(key, kind="stable")
        self.sorted_key = key[self.order]


def vector_probe_build(
    relation: Relation, positions: Sequence[int]
) -> Optional[VectorProbeBuild]:
    """A :class:`VectorProbeBuild` over ``relation``, or ``None``.

    Requires an already-cached numpy store (the whole point is skipping row
    materialization), a single join column, and a typed numeric key —
    object keys carry ``None`` whose bucket semantics belong to the dict
    path.
    """
    if _np is None or len(positions) != 1 or not relation.has_vector_store:
        return None
    store = relation.vector_store()
    key = store.column(positions[0])
    if key.dtype.kind not in "if":
        return None
    return VectorProbeBuild(store, key, positions)


def _vector_delta_probe(
    bag: Relation,
    delta_pos: Sequence[int],
    vbuild: VectorProbeBuild,
    schema: Schema,
    residual: Optional[Predicate],
    delta_side: str,
) -> Optional[Relation]:
    """Join one delta bag against a :class:`VectorProbeBuild`, or ``None``.

    Output rows are delta-major (the bag's order outer, the stored input's
    original order within a key) with columns in left ++ right order per
    ``delta_side`` — exactly the dict probe's emission.
    """
    if len(bag) == 0:
        return Relation(schema, [])
    bag_store = bag.vector_store(0)
    if bag_store is None:
        return None
    dkey = bag_store.column(delta_pos[0])
    if dkey.dtype.kind != vbuild.key.dtype.kind:
        return None
    starts = _np.searchsorted(vbuild.sorted_key, dkey, side="left")
    ends = _np.searchsorted(vbuild.sorted_key, dkey, side="right")
    counts = ends - starts
    total = int(counts.sum())
    delta_idx = _np.repeat(_np.arange(len(dkey)), counts)
    if total:
        offsets = _np.cumsum(counts) - counts
        positions = _np.arange(total) - _np.repeat(offsets, counts) + _np.repeat(starts, counts)
        other_idx = vbuild.order[positions]
    else:
        other_idx = _np.zeros(0, dtype=_np.int64)
    if delta_side == "left":
        out = bag_store.gather(delta_idx).hstack(vbuild.store.gather(other_idx))
    else:
        out = vbuild.store.gather(other_idx).hstack(bag_store.gather(delta_idx))
    out = _residual_mask_store(out, schema, residual)
    return Relation.from_store(schema, out)


def delta_select_batch(
    inserts: Relation, deletes: Relation, predicate: Predicate
) -> Tuple[Relation, Relation]:
    """δ-σ: filter both bags of a differential with one compiled predicate."""
    schema = inserts.schema
    fn = compile_predicate(predicate, schema)
    return (
        Relation.from_trusted_rows(schema, [r for r in inserts.rows if fn(r)]),
        Relation.from_trusted_rows(schema, [r for r in deletes.rows if fn(r)]),
    )


def delta_project_batch(
    inserts: Relation, deletes: Relation, columns: Sequence[str]
) -> Tuple[Relation, Relation]:
    """δ-π: project both bags of a differential (positions resolved once)."""
    idxs = inserts.schema.positions(columns)
    schema = inserts.schema.project(columns)
    if len(idxs) == 1:
        i = idxs[0]
        ins = [(row[i],) for row in inserts.rows]
        dels = [(row[i],) for row in deletes.rows]
    else:
        getter = itemgetter(*idxs)
        ins = [getter(row) for row in inserts.rows]
        dels = [getter(row) for row in deletes.rows]
    return (
        Relation.from_trusted_rows(schema, ins),
        Relation.from_trusted_rows(schema, dels),
    )


def delta_hash_join_batch(
    inserts: Relation,
    deletes: Relation,
    other: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
    delta_side: str = "left",
    build: Optional[object] = None,
) -> Tuple[Relation, Relation]:
    """δ-⋈: join both bags of a differential against one shared input.

    ``delta_side`` names which logical join operand the delta bags stand in
    for (``"left"`` or ``"right"``); output column order is always
    left ++ right, matching :func:`hash_join`.  The hash build always goes
    over ``other`` — the non-delta input — so it is constructed once per
    call regardless of which side the delta is on (plain ``hash_join`` would
    build over ``other`` twice for a left-side delta, and probe it twice
    for a right-side one).  A caller that already holds a build for
    ``other`` keyed on the join columns — a :func:`hash_build` dict or a
    :class:`VectorProbeBuild` — can pass it as ``build``.
    """
    delta_schema = inserts.schema
    if delta_side == "left":
        schema = delta_schema.concat(other.schema)
        delta_pos, other_pos = _join_positions(delta_schema, other.schema, conditions)
    else:
        schema = other.schema.concat(delta_schema)
        other_pos, delta_pos = _join_positions(other.schema, delta_schema, conditions)

    if not conditions:
        orows = other.rows

        def cross(bag: Relation) -> Relation:
            if delta_side == "left":
                rows = [drow + orow for drow in bag.rows for orow in orows]
            else:
                rows = [orow + drow for drow in bag.rows for orow in orows]
            return Relation.from_trusted_rows(schema, _residual_filter(rows, schema, residual))

        return cross(inserts), cross(deletes)

    vbuild: Optional[VectorProbeBuild] = None
    if isinstance(build, VectorProbeBuild):
        vbuild, build = build, None
    elif build is None and len(delta_pos) == 1:
        vbuild = vector_probe_build(other, other_pos)
    if vbuild is not None:
        vector_ins = _vector_delta_probe(
            inserts, delta_pos, vbuild, schema, residual, delta_side
        )
        vector_dels = _vector_delta_probe(
            deletes, delta_pos, vbuild, schema, residual, delta_side
        )
        if vector_ins is not None and vector_dels is not None:
            return vector_ins, vector_dels

    if build is None:
        build = hash_build(other, other_pos)
    get = build.get
    empty: Tuple[Row, ...] = ()
    single = len(delta_pos) == 1

    def probe(bag: Relation) -> Relation:
        brows = bag.rows
        if single:
            di = delta_pos[0]
            if delta_side == "left":
                rows = [drow + orow for drow in brows for orow in get(drow[di], empty)]
            else:
                rows = [orow + drow for drow in brows for orow in get(drow[di], empty)]
        else:
            if delta_side == "left":
                rows = [
                    drow + orow
                    for drow in brows
                    for orow in get(tuple(drow[i] for i in delta_pos), empty)
                ]
            else:
                rows = [
                    orow + drow
                    for drow in brows
                    for orow in get(tuple(drow[i] for i in delta_pos), empty)
                ]
        return Relation.from_trusted_rows(schema, _residual_filter(rows, schema, residual))

    return probe(inserts), probe(deletes)


def _null_safe_key(values: Tuple[Any, ...]) -> Tuple[Tuple[bool, Any], ...]:
    """An ordering key in which ``None`` sorts last and equals itself.

    Keeps merge-join semantics aligned with hash join, where ``None`` keys
    fall into the same bucket and therefore match each other; plain tuple
    sorting would raise TypeError on ``None`` vs non-``None`` comparisons.
    """
    return tuple((True, 0) if v is None else (False, v) for v in values)


def _decorated_sorted(relation: Relation, positions: Sequence[int]) -> List[Tuple[Any, Row]]:
    """``(null_safe_key, row)`` pairs sorted by key, built column-at-a-time.

    Builds each ordering key in a single tuple construction from the
    pre-extracted key columns — the old path built an intermediate value
    tuple per row (``tuple(r[i] for i in positions)``) only to rebuild it
    decorated, which showed up in refresh profiles.
    """
    key_columns = [relation.column_at(i) for i in positions]
    decorated = [
        (tuple((v is None, 0 if v is None else v) for v in values), row)
        for values, row in zip(zip(*key_columns), relation.rows)
    ]
    decorated.sort(key=itemgetter(0))
    return decorated


def merge_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Sort-merge join: sorts both inputs on the join key, then merges."""
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    # Decorate once: each side's ordering keys are computed a single time,
    # then the merge works over the precomputed key arrays.
    ldec = _decorated_sorted(left, left_pos)
    rdec = _decorated_sorted(right, right_pos)
    out: List[Row] = []
    i = j = 0
    while i < len(ldec) and j < len(rdec):
        lkey = ldec[i][0]
        rkey = rdec[j][0]
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Gather the full run of equal keys on both sides.
            i_end = i
            while i_end < len(ldec) and ldec[i_end][0] == lkey:
                i_end += 1
            j_end = j
            while j_end < len(rdec) and rdec[j_end][0] == rkey:
                j_end += 1
            for li in range(i, i_end):
                lrow = ldec[li][1]
                for rj in range(j, j_end):
                    out.append(lrow + rdec[rj][1])
            i, j = i_end, j_end
    return Relation(schema, _residual_filter(out, schema, residual))


def index_nested_loop_join(
    outer: Relation,
    inner: Relation,
    index,
    conditions: Sequence[Tuple[str, str]],
    residual: Optional[Predicate] = None,
) -> Relation:
    """Index nested-loop join probing ``index`` built on the inner relation.

    ``index`` must be a :class:`HashIndex` or :class:`SortedIndex` whose key
    columns match the inner side of ``conditions`` in order.
    """
    schema = _output(outer, inner)
    outer_pos, _ = _join_positions(outer.schema, inner.schema, conditions)
    out: List[Row] = []
    for orow in outer:
        key = tuple(orow[i] for i in outer_pos)
        for irow in index.lookup(key):
            out.append(orow + irow)
    return Relation(schema, _residual_filter(out, schema, residual))


# ------------------------------------------------------------------ set/bag ops

def union_all(*relations: Relation) -> Relation:
    """Multiset union of any number of inputs."""
    if not relations:
        raise ValueError("union_all needs at least one input")
    result = relations[0]
    for other in relations[1:]:
        result = result.union_all(other)
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """Multiset difference (one copy removed per match)."""
    return left.difference(right)


def distinct(relation: Relation) -> Relation:
    """Duplicate elimination."""
    return relation.distinct()


def semijoin_keys(
    relation: Relation, positions: Sequence[int], keys: "set"
) -> Relation:
    """Rows whose key tuple over ``positions`` is in ``keys`` (a set of tuples).

    The restrict kernel of differential aggregate maintenance: a big stored
    input is filtered down to the affected group keys.  Single typed key
    columns run as one ``np.isin`` pass over the column array; everything
    else (multi-column keys, ``None`` keys, type-mixed probes) keeps the
    row loop, whose set-membership semantics are the reference.

    The vector path engages only on an already-cached store: a semijoin is
    one pass, so building typed arrays just for it costs more than the row
    loop it would replace.
    """
    if _np is not None and len(positions) == 1 and relation.has_vector_store:
        store = relation.vector_store()
        if store is not None:
            array = store.column(positions[0])
            if array.dtype != object and keys:
                probe = _np.asarray([k[0] for k in keys])
                if probe.dtype.kind == array.dtype.kind:
                    keep = _np.isin(array, probe)
                    return Relation.from_store(
                        relation.schema, store.mask(keep), relation.name
                    )
    if len(positions) == 1:
        i = positions[0]
        scalar_keys = {k[0] for k in keys}
        kept = [r for r in relation.rows if r[i] in scalar_keys]
    else:
        kept = [r for r in relation.rows if tuple(r[i] for i in positions) in keys]
    return Relation.from_trusted_rows(relation.schema, kept, relation.name)


# ----------------------------------------------------------------- aggregation

def _aggregate_schema(
    input_schema: Schema, group_by: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Schema:
    columns: List[Column] = [input_schema.column(g) for g in group_by]
    for agg in aggregates:
        ctype = ColumnType.INTEGER if agg.func is AggregateFunc.COUNT else ColumnType.FLOAT
        columns.append(Column(agg.alias, ctype))
    return Schema(tuple(columns))


def _compute_aggregate(func: AggregateFunc, values: List[Any], count: int) -> Any:
    if func is AggregateFunc.COUNT:
        return count
    if not values:
        return None
    if func is AggregateFunc.SUM:
        return _stable_sum(values)
    if func is AggregateFunc.MIN:
        return min(values)
    if func is AggregateFunc.MAX:
        return max(values)
    if func is AggregateFunc.AVG:
        return _stable_sum(values) / len(values)
    raise ValueError(f"unknown aggregate {func}")


def _stable_sum(values: List[Any]):
    """Sum that is independent of input order.

    Incremental maintenance recomputes affected groups from rows it sees in a
    different order than full recomputation does; ``math.fsum`` returns the
    correctly rounded float sum regardless of order, so the two strategies
    produce bit-identical aggregate values (integer inputs keep integer sums).
    """
    # Single pass, no per-value isinstance pair: ``type(v) is int`` is both
    # the exact-int test (bools fail it) and cheaper than two isinstance
    # calls — this helper runs once per group per aggregate on the refresh
    # hot path.
    for v in values:
        if type(v) is not int:
            return math.fsum(values)
    return sum(values)


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Hash group-by with the requested aggregate columns.

    With an empty ``group_by`` the result has exactly one row (even over an
    empty input, matching SQL semantics for scalar aggregates — except COUNT
    which is 0 and SUM/MIN/MAX/AVG which are None).
    """
    schema = relation.schema
    group_pos = schema.positions(group_by)
    agg_pos = [schema.index_of(a.column) if a.column else None for a in aggregates]
    out_schema = _aggregate_schema(schema, group_by, aggregates)

    groups: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)
    for row in relation:
        groups[tuple(row[i] for i in group_pos)].append(row)
    if not group_by and not groups:
        groups[()] = []

    out: List[Row] = []
    for key, rows in groups.items():
        values: List[Any] = list(key)
        for spec, pos in zip(aggregates, agg_pos):
            column_values = [r[pos] for r in rows if pos is not None and r[pos] is not None]
            values.append(_compute_aggregate(spec.func, column_values, len(rows)))
        out.append(tuple(values))
    return Relation(out_schema, out)


def _vector_aggregate(
    relation: Relation,
    group_pos: Sequence[int],
    agg_pos: Sequence[Optional[int]],
    aggregates: Sequence[AggregateSpec],
    out_schema: Schema,
) -> Optional[Relation]:
    """Whole-column group-by/reduce, or ``None`` when inputs do not qualify.

    Group keys factorize to dense int64 codes (multi-column keys fuse by
    successive code combination); one stable sort of the codes turns every
    group into a contiguous segment, and each aggregate reduces segment-at-
    a-time: ``bincount``-style counts, ``reduceat`` for int SUM / MIN / MAX,
    and per-segment ``math.fsum`` for float SUM/AVG so results stay
    bit-identical to the row oracle's order-independent sums.  Output groups
    are reordered to first-occurrence order, matching the oracle's
    insertion-order group emission exactly.

    Falls back (returns ``None``) for empty inputs (scalar-aggregate
    semantics live on the row path), object-dtype aggregate columns (the
    ``None``-skipping rule needs per-value checks), and group columns numpy
    cannot factorize (e.g. ``None`` mixed with values).
    """
    if _np is None or len(relation) == 0:
        return None
    store = relation.vector_store()
    if store is not None:
        column = store.column
    elif len(relation) >= VECTOR_BUILD_MIN_ROWS and _backend_columns.numpy_enabled():
        # Row-backed but large: convert only the group/aggregate columns
        # this node touches instead of building the whole store.
        converted: Dict[int, Any] = {}

        def column(pos):
            array = converted.get(pos)
            if array is None:
                array = _backend_columns._typed_array(relation.column_at(pos))
                converted[pos] = array
            return array
    else:
        return None
    value_arrays: List[Any] = []
    for pos in agg_pos:
        if pos is None:
            value_arrays.append(None)
            continue
        array = column(pos)
        if array.dtype == object:
            return None
        value_arrays.append(array)

    n = len(relation)
    codes = _np.zeros(n, dtype=_np.int64)
    group_arrays = []
    capacity = 1
    for pos in group_pos:
        array = column(pos)
        try:
            uniques, inverse = _np.unique(array, return_inverse=True)
        except TypeError:
            return None
        capacity *= max(len(uniques), 1)
        if capacity > 2**62:
            return None
        codes = codes * len(uniques) + inverse
        group_arrays.append(array)

    order = _np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundary = _np.empty(n, dtype=bool)
    boundary[0] = True
    _np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=boundary[1:])
    segment_starts = _np.flatnonzero(boundary)
    counts = _np.diff(_np.append(segment_starts, n))
    # First-occurrence row of each group: the stable sort keeps original
    # order within a segment, and argsort over those rows recovers the
    # oracle's insertion-order group emission.
    first_rows = order[segment_starts]
    emit = _np.argsort(first_rows, kind="stable")

    out_arrays = [array[first_rows[emit]] for array in group_arrays]
    counts_list = None
    for spec, values in zip(aggregates, value_arrays):
        if spec.func is AggregateFunc.COUNT:
            out_arrays.append(counts[emit])
            continue
        sorted_values = values[order]
        if spec.func is AggregateFunc.MIN:
            out_arrays.append(_np.minimum.reduceat(sorted_values, segment_starts)[emit])
            continue
        if spec.func is AggregateFunc.MAX:
            out_arrays.append(_np.maximum.reduceat(sorted_values, segment_starts)[emit])
            continue
        # SUM / AVG.  Ints reduce exactly in int64 (the workloads stay far
        # from 2^63); floats go through per-segment fsum to match the
        # oracle's correctly rounded order-independent sums bit for bit.
        if sorted_values.dtype.kind == "i":
            sums: Any = _np.add.reduceat(sorted_values, segment_starts)
            if spec.func is AggregateFunc.SUM:
                out_arrays.append(sums[emit])
                continue
            if counts_list is None:
                counts_list = counts.tolist()
            averages = [s / c for s, c in zip(sums.tolist(), counts_list)]
            out_arrays.append(_np.asarray(averages, dtype=_np.float64)[emit])
        else:
            flat = sorted_values.tolist()
            bounds = segment_starts.tolist() + [n]
            sums = [math.fsum(flat[lo:hi]) for lo, hi in zip(bounds, bounds[1:])]
            if spec.func is AggregateFunc.AVG:
                if counts_list is None:
                    counts_list = counts.tolist()
                sums = [s / c for s, c in zip(sums, counts_list)]
            out_arrays.append(_np.asarray(sums, dtype=_np.float64)[emit])

    from repro.storage.columns import NumpyColumnStore

    out_store = NumpyColumnStore(tuple(out_arrays), len(segment_starts))
    return Relation.from_store(out_schema, out_store)


def aggregate_batch(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Vectorized hash aggregation, bag-identical to :func:`aggregate`.

    With the numpy backend, qualifying inputs group-reduce over factorized
    key codes (:func:`_vector_aggregate`).  Otherwise grouping runs over the
    group-by column array (scalar dictionary keys for single-column
    group-bys), and each aggregate is then computed column-at-a-time from
    the grouped row indices.  The same accumulation helpers as the
    row-at-a-time path (:func:`_compute_aggregate`, order-independent sums)
    guarantee bit-identical aggregate values.
    """
    schema = relation.schema
    group_pos = schema.positions(group_by)
    agg_pos = [schema.index_of(a.column) if a.column else None for a in aggregates]
    out_schema = _aggregate_schema(schema, group_by, aggregates)
    result = _vector_aggregate(relation, group_pos, agg_pos, aggregates, out_schema)
    if result is not None:
        return result
    rows = relation.rows

    # Group row indices by key, column-at-a-time.
    single = len(group_pos) == 1
    if single:
        keys: Sequence[Any] = relation.column_at(group_pos[0])
    elif group_pos:
        keys = list(zip(*(relation.column_at(i) for i in group_pos)))
    else:
        keys = [()] * len(rows)
    index_groups: Dict[Any, List[int]] = {}
    setdefault = index_groups.setdefault
    for i, key in enumerate(keys):
        setdefault(key, []).append(i)
    if not group_by and not index_groups:
        index_groups[()] = []

    agg_columns = [
        relation.column_at(pos) if pos is not None else None for pos in agg_pos
    ]
    out: List[Row] = []
    for key, indices in index_groups.items():
        values: List[Any] = [key] if single else list(key)
        for spec, column in zip(aggregates, agg_columns):
            if column is None:
                column_values: List[Any] = []
            else:
                column_values = [column[i] for i in indices if column[i] is not None]
            values.append(_compute_aggregate(spec.func, column_values, len(indices)))
        out.append(tuple(values))
    return Relation.from_trusted_rows(out_schema, out)


def sort(relation: Relation, columns: Sequence[str]) -> Relation:
    """Sort a relation on ``columns`` ascending."""
    return relation.sorted_by(columns)


#: Dispatch table used by the executor when a physical plan names an algorithm.
JOIN_ALGORITHMS: Dict[str, Callable[..., Relation]] = {
    "nested_loop": nested_loop_join,
    "hash": hash_join,
    "merge": merge_join,
}
