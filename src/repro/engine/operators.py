"""Physical bag operators.

Each function consumes and produces :class:`~repro.storage.Relation` objects
with multiset semantics.  Several join algorithms are provided (nested-loop,
hash, sort-merge, index nested-loop) so that the plans the optimizer costs
can actually be executed; the executor picks the algorithm named in the
physical plan, defaulting to hash join.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import AggregateFunc, AggregateSpec
from repro.algebra.predicates import Predicate, TruePredicate
from repro.catalog.schema import Column, ColumnType, Schema
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.relation import Relation, Row


# ---------------------------------------------------------------- select / project

def select(relation: Relation, predicate: Predicate) -> Relation:
    """σ_predicate — keep rows satisfying the predicate."""
    schema = relation.schema
    return Relation(schema, [r for r in relation if predicate.evaluate(r, schema)], relation.name)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π_columns — duplicate-preserving projection."""
    return relation.project(columns)


# ---------------------------------------------------------------------- joins

def _join_positions(
    left: Schema, right: Schema, conditions: Sequence[Tuple[str, str]]
) -> Tuple[List[int], List[int]]:
    """Resolve equi-join columns to positions, fixing swapped sides if needed."""
    left_pos: List[int] = []
    right_pos: List[int] = []
    for a, b in conditions:
        try:
            left_pos.append(left.index_of(a))
            right_pos.append(right.index_of(b))
        except Exception:
            # The condition may have been written with sides swapped relative
            # to this operand order (joins are commutative).
            left_pos.append(left.index_of(b))
            right_pos.append(right.index_of(a))
    return left_pos, right_pos


def _output(left: Relation, right: Relation) -> Schema:
    return left.schema.concat(right.schema)


def _residual_filter(
    rows: List[Row], schema: Schema, residual: Optional[Predicate]
) -> List[Row]:
    if residual is None or isinstance(residual, TruePredicate):
        return rows
    return [r for r in rows if residual.evaluate(r, schema)]


def nested_loop_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Tuple nested-loop join (also serves as the cross-product operator)."""
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    out: List[Row] = []
    for lrow in left:
        lkey = tuple(lrow[i] for i in left_pos)
        for rrow in right:
            if conditions and tuple(rrow[i] for i in right_pos) != lkey:
                continue
            out.append(lrow + rrow)
    return Relation(schema, _residual_filter(out, schema, residual))


def hash_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Hash join on the equi-join columns (build on the smaller input)."""
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    # Build on the right input, probe with the left (output order: left ++ right).
    buckets: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)
    for rrow in right:
        buckets[tuple(rrow[i] for i in right_pos)].append(rrow)
    out: List[Row] = []
    for lrow in left:
        key = tuple(lrow[i] for i in left_pos)
        for rrow in buckets.get(key, ()):
            out.append(lrow + rrow)
    return Relation(schema, _residual_filter(out, schema, residual))


def merge_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Sort-merge join: sorts both inputs on the join key, then merges."""
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    lrows = sorted(left.rows, key=lambda r: tuple(r[i] for i in left_pos))
    rrows = sorted(right.rows, key=lambda r: tuple(r[i] for i in right_pos))
    out: List[Row] = []
    i = j = 0
    while i < len(lrows) and j < len(rrows):
        lkey = tuple(lrows[i][p] for p in left_pos)
        rkey = tuple(rrows[j][p] for p in right_pos)
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Gather the full run of equal keys on both sides.
            i_end = i
            while i_end < len(lrows) and tuple(lrows[i_end][p] for p in left_pos) == lkey:
                i_end += 1
            j_end = j
            while j_end < len(rrows) and tuple(rrows[j_end][p] for p in right_pos) == rkey:
                j_end += 1
            for li in range(i, i_end):
                for rj in range(j, j_end):
                    out.append(lrows[li] + rrows[rj])
            i, j = i_end, j_end
    return Relation(schema, _residual_filter(out, schema, residual))


def index_nested_loop_join(
    outer: Relation,
    inner: Relation,
    index,
    conditions: Sequence[Tuple[str, str]],
    residual: Optional[Predicate] = None,
) -> Relation:
    """Index nested-loop join probing ``index`` built on the inner relation.

    ``index`` must be a :class:`HashIndex` or :class:`SortedIndex` whose key
    columns match the inner side of ``conditions`` in order.
    """
    schema = _output(outer, inner)
    outer_pos, _ = _join_positions(outer.schema, inner.schema, conditions)
    out: List[Row] = []
    for orow in outer:
        key = tuple(orow[i] for i in outer_pos)
        for irow in index.lookup(key):
            out.append(orow + irow)
    return Relation(schema, _residual_filter(out, schema, residual))


# ------------------------------------------------------------------ set/bag ops

def union_all(*relations: Relation) -> Relation:
    """Multiset union of any number of inputs."""
    if not relations:
        raise ValueError("union_all needs at least one input")
    result = relations[0]
    for other in relations[1:]:
        result = result.union_all(other)
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """Multiset difference (one copy removed per match)."""
    return left.difference(right)


def distinct(relation: Relation) -> Relation:
    """Duplicate elimination."""
    return relation.distinct()


# ----------------------------------------------------------------- aggregation

def _aggregate_schema(
    input_schema: Schema, group_by: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Schema:
    columns: List[Column] = [input_schema.column(g) for g in group_by]
    for agg in aggregates:
        ctype = ColumnType.INTEGER if agg.func is AggregateFunc.COUNT else ColumnType.FLOAT
        columns.append(Column(agg.alias, ctype))
    return Schema(tuple(columns))


def _compute_aggregate(func: AggregateFunc, values: List[Any], count: int) -> Any:
    if func is AggregateFunc.COUNT:
        return count
    if not values:
        return None
    if func is AggregateFunc.SUM:
        return _stable_sum(values)
    if func is AggregateFunc.MIN:
        return min(values)
    if func is AggregateFunc.MAX:
        return max(values)
    if func is AggregateFunc.AVG:
        return _stable_sum(values) / len(values)
    raise ValueError(f"unknown aggregate {func}")


def _stable_sum(values: List[Any]):
    """Sum that is independent of input order.

    Incremental maintenance recomputes affected groups from rows it sees in a
    different order than full recomputation does; ``math.fsum`` returns the
    correctly rounded float sum regardless of order, so the two strategies
    produce bit-identical aggregate values (integer inputs keep integer sums).
    """
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return sum(values)
    return math.fsum(values)


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Hash group-by with the requested aggregate columns.

    With an empty ``group_by`` the result has exactly one row (even over an
    empty input, matching SQL semantics for scalar aggregates — except COUNT
    which is 0 and SUM/MIN/MAX/AVG which are None).
    """
    schema = relation.schema
    group_pos = schema.positions(group_by)
    agg_pos = [schema.index_of(a.column) if a.column else None for a in aggregates]
    out_schema = _aggregate_schema(schema, group_by, aggregates)

    groups: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)
    for row in relation:
        groups[tuple(row[i] for i in group_pos)].append(row)
    if not group_by and not groups:
        groups[()] = []

    out: List[Row] = []
    for key, rows in groups.items():
        values: List[Any] = list(key)
        for spec, pos in zip(aggregates, agg_pos):
            column_values = [r[pos] for r in rows if pos is not None and r[pos] is not None]
            values.append(_compute_aggregate(spec.func, column_values, len(rows)))
        out.append(tuple(values))
    return Relation(out_schema, out)


def sort(relation: Relation, columns: Sequence[str]) -> Relation:
    """Sort a relation on ``columns`` ascending."""
    return relation.sorted_by(columns)


#: Dispatch table used by the executor when a physical plan names an algorithm.
JOIN_ALGORITHMS: Dict[str, Callable[..., Relation]] = {
    "nested_loop": nested_loop_join,
    "hash": hash_join,
    "merge": merge_join,
}
