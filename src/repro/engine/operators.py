"""Physical bag operators.

Each function consumes and produces :class:`~repro.storage.Relation` objects
with multiset semantics.  Several join algorithms are provided (nested-loop,
hash, sort-merge, index nested-loop) so that the plans the optimizer costs
can actually be executed; the executor picks the algorithm named in the
physical plan, defaulting to hash join.
"""

from __future__ import annotations

import math
from collections import defaultdict
from operator import itemgetter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import AggregateFunc, AggregateSpec
from repro.algebra.predicates import (
    _OPS as _COMPARISON_OPS,
    Comparison,
    ColumnRef,
    Literal,
    Predicate,
    TruePredicate,
    compile_predicate,
)
from repro.catalog.schema import Column, ColumnType, Schema, SchemaError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.relation import Relation, Row


# ---------------------------------------------------------------- select / project

def select(relation: Relation, predicate: Predicate) -> Relation:
    """σ_predicate — keep rows satisfying the predicate."""
    schema = relation.schema
    return Relation(schema, [r for r in relation if predicate.evaluate(r, schema)], relation.name)


def select_batch(relation: Relation, predicate: Predicate) -> Relation:
    """Batch σ_predicate over the columnar fast path.

    Single column-vs-literal comparisons — the dominant selection shape in
    the workloads — are evaluated directly against the column array; every
    other predicate runs as one compiled closure over the row batch.  Output
    bags are identical to :func:`select`.
    """
    schema = relation.schema
    rows = relation.rows
    if (
        isinstance(predicate, Comparison)
        and isinstance(predicate.left, ColumnRef)
        and isinstance(predicate.right, Literal)
        and predicate.right.value is not None
    ):
        # Inlined column-vs-literal comparison; must mirror the semantics of
        # compile_predicate's ColumnRef/Literal branch (None never matches),
        # which the physical-vs-logical property suite pins down.
        op_fn = _COMPARISON_OPS[predicate.op]
        value = predicate.right.value
        column = relation.column_values(predicate.left.name)
        kept = [
            row
            for v, row in zip(column, rows)
            if v is not None and op_fn(v, value)
        ]
        return Relation.from_trusted_rows(schema, kept, relation.name)
    fn = compile_predicate(predicate, schema)
    return Relation.from_trusted_rows(schema, [r for r in rows if fn(r)], relation.name)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π_columns — duplicate-preserving projection."""
    return relation.project(columns)


# ---------------------------------------------------------------------- joins

def _join_positions(
    left: Schema, right: Schema, conditions: Sequence[Tuple[str, str]]
) -> Tuple[List[int], List[int]]:
    """Resolve equi-join columns to positions.

    Each condition is tried in its written orientation first (first column on
    the left input, second on the right); only if that fails is the swapped
    orientation accepted (joins are commutative, so conditions may be written
    relative to either operand order).  A condition that resolves in neither
    orientation raises a :class:`SchemaError` naming both schemas, instead of
    silently mis-binding columns that happen to exist on both sides.
    """
    left_pos: List[int] = []
    right_pos: List[int] = []
    for a, b in conditions:
        as_written = (_position_of(left, a), _position_of(right, b))
        if as_written[0] is not None and as_written[1] is not None:
            left_pos.append(as_written[0])
            right_pos.append(as_written[1])
            continue
        swapped = (_position_of(left, b), _position_of(right, a))
        if swapped[0] is not None and swapped[1] is not None:
            left_pos.append(swapped[0])
            right_pos.append(swapped[1])
            continue
        raise SchemaError(
            f"join condition {a!r}={b!r} cannot be resolved: neither orientation "
            f"binds to left schema {left.names} and right schema {right.names}"
        )
    return left_pos, right_pos


def _position_of(schema: Schema, name: str) -> Optional[int]:
    """Resolve ``name`` in ``schema``, returning None when missing/ambiguous."""
    try:
        return schema.index_of(name)
    except SchemaError:
        return None


def _output(left: Relation, right: Relation) -> Schema:
    return left.schema.concat(right.schema)


def _residual_filter(
    rows: List[Row], schema: Schema, residual: Optional[Predicate]
) -> List[Row]:
    if residual is None or isinstance(residual, TruePredicate):
        return rows
    fn = compile_predicate(residual, schema)
    return [r for r in rows if fn(r)]


def nested_loop_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Tuple nested-loop join (also serves as the cross-product operator)."""
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    out: List[Row] = []
    for lrow in left:
        lkey = tuple(lrow[i] for i in left_pos)
        for rrow in right:
            if conditions and tuple(rrow[i] for i in right_pos) != lkey:
                continue
            out.append(lrow + rrow)
    return Relation(schema, _residual_filter(out, schema, residual))


def hash_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Hash join on the equi-join columns (build on the smaller input)."""
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    # Build on the right input, probe with the left (output order: left ++ right).
    buckets: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)
    for rrow in right:
        buckets[tuple(rrow[i] for i in right_pos)].append(rrow)
    out: List[Row] = []
    for lrow in left:
        key = tuple(lrow[i] for i in left_pos)
        for rrow in buckets.get(key, ()):
            out.append(lrow + rrow)
    return Relation(schema, _residual_filter(out, schema, residual))


def nested_loop_join_batch(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Batch nested-loop join, bag-identical to :func:`nested_loop_join`.

    With equi-join conditions the inner side is partitioned by key once, so
    each outer tuple only visits inner tuples that can match — the classic
    refinement of tuple nested-loops that avoids re-testing every pair.  For
    pure cross products the pairing runs as one flat list comprehension.
    """
    if conditions:
        return hash_join_batch(left, right, conditions, residual)
    schema = _output(left, right)
    out = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation.from_trusted_rows(schema, _residual_filter(out, schema, residual))


def hash_join_batch(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Vectorized hash join producing the same bag as :func:`hash_join`.

    Build and probe run over column arrays: single-condition joins (the
    common case for foreign-key joins) key the hash table on the raw column
    value — no per-row key-tuple construction — and the probe emits matches
    through one flat list comprehension.
    """
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    lrows = left.rows
    rrows = right.rows
    buckets: Dict[Any, List[Row]] = {}
    setdefault = buckets.setdefault
    get = buckets.get
    empty: Tuple[Row, ...] = ()
    if len(left_pos) == 1:
        li = left_pos[0]
        ri = right_pos[0]
        for rrow in rrows:
            setdefault(rrow[ri], []).append(rrow)
        out = [lrow + rrow for lrow in lrows for rrow in get(lrow[li], empty)]
    else:
        for rrow in rrows:
            setdefault(tuple(rrow[i] for i in right_pos), []).append(rrow)
        out = [
            lrow + rrow
            for lrow in lrows
            for rrow in get(tuple(lrow[i] for i in left_pos), empty)
        ]
    return Relation.from_trusted_rows(schema, _residual_filter(out, schema, residual))


# ------------------------------------------------------------- delta kernels
#
# Differential maintenance evaluates the *same* operator over the insert and
# delete bags of a differential (δ+ and δ−).  These kernels run both bags
# through one shared setup — one compiled predicate, one resolved projection,
# one hash build over the non-delta join input — so the per-round cost is
# paid once instead of once per bag (and, via the caller-supplied ``build``,
# once per refresh round instead of once per view).

def hash_build(relation: Relation, positions: Sequence[int]) -> Dict[Any, List[Row]]:
    """Key → rows bucket table over ``positions`` (scalar key when single).

    The delta join kernels probe this table; callers that join several delta
    bags against the same input (or share one input across views, as the
    refresh engine's old-value cache does) build it once and pass it in.
    """
    buckets: Dict[Any, List[Row]] = {}
    setdefault = buckets.setdefault
    if len(positions) == 1:
        i = positions[0]
        for row in relation.rows:
            setdefault(row[i], []).append(row)
    else:
        for row in relation.rows:
            setdefault(tuple(row[i] for i in positions), []).append(row)
    return buckets


def delta_select_batch(
    inserts: Relation, deletes: Relation, predicate: Predicate
) -> Tuple[Relation, Relation]:
    """δ-σ: filter both bags of a differential with one compiled predicate."""
    schema = inserts.schema
    fn = compile_predicate(predicate, schema)
    return (
        Relation.from_trusted_rows(schema, [r for r in inserts.rows if fn(r)]),
        Relation.from_trusted_rows(schema, [r for r in deletes.rows if fn(r)]),
    )


def delta_project_batch(
    inserts: Relation, deletes: Relation, columns: Sequence[str]
) -> Tuple[Relation, Relation]:
    """δ-π: project both bags of a differential (positions resolved once)."""
    idxs = inserts.schema.positions(columns)
    schema = inserts.schema.project(columns)
    if len(idxs) == 1:
        i = idxs[0]
        ins = [(row[i],) for row in inserts.rows]
        dels = [(row[i],) for row in deletes.rows]
    else:
        getter = itemgetter(*idxs)
        ins = [getter(row) for row in inserts.rows]
        dels = [getter(row) for row in deletes.rows]
    return (
        Relation.from_trusted_rows(schema, ins),
        Relation.from_trusted_rows(schema, dels),
    )


def delta_hash_join_batch(
    inserts: Relation,
    deletes: Relation,
    other: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
    delta_side: str = "left",
    build: Optional[Dict[Any, List[Row]]] = None,
) -> Tuple[Relation, Relation]:
    """δ-⋈: join both bags of a differential against one shared input.

    ``delta_side`` names which logical join operand the delta bags stand in
    for (``"left"`` or ``"right"``); output column order is always
    left ++ right, matching :func:`hash_join`.  The hash build always goes
    over ``other`` — the non-delta input — so it is constructed once per
    call regardless of which side the delta is on (plain ``hash_join`` would
    build over ``other`` twice for a left-side delta, and probe it twice
    for a right-side one).  A caller that already holds a bucket table for
    ``other`` keyed on the join columns can pass it as ``build``.
    """
    delta_schema = inserts.schema
    if delta_side == "left":
        schema = delta_schema.concat(other.schema)
        delta_pos, other_pos = _join_positions(delta_schema, other.schema, conditions)
    else:
        schema = other.schema.concat(delta_schema)
        other_pos, delta_pos = _join_positions(other.schema, delta_schema, conditions)

    if not conditions:
        orows = other.rows

        def cross(bag: Relation) -> Relation:
            if delta_side == "left":
                rows = [drow + orow for drow in bag.rows for orow in orows]
            else:
                rows = [orow + drow for drow in bag.rows for orow in orows]
            return Relation.from_trusted_rows(schema, _residual_filter(rows, schema, residual))

        return cross(inserts), cross(deletes)

    if build is None:
        build = hash_build(other, other_pos)
    get = build.get
    empty: Tuple[Row, ...] = ()
    single = len(delta_pos) == 1

    def probe(bag: Relation) -> Relation:
        brows = bag.rows
        if single:
            di = delta_pos[0]
            if delta_side == "left":
                rows = [drow + orow for drow in brows for orow in get(drow[di], empty)]
            else:
                rows = [orow + drow for drow in brows for orow in get(drow[di], empty)]
        else:
            if delta_side == "left":
                rows = [
                    drow + orow
                    for drow in brows
                    for orow in get(tuple(drow[i] for i in delta_pos), empty)
                ]
            else:
                rows = [
                    orow + drow
                    for drow in brows
                    for orow in get(tuple(drow[i] for i in delta_pos), empty)
                ]
        return Relation.from_trusted_rows(schema, _residual_filter(rows, schema, residual))

    return probe(inserts), probe(deletes)


def _null_safe_key(values: Tuple[Any, ...]) -> Tuple[Tuple[bool, Any], ...]:
    """An ordering key in which ``None`` sorts last and equals itself.

    Keeps merge-join semantics aligned with hash join, where ``None`` keys
    fall into the same bucket and therefore match each other; plain tuple
    sorting would raise TypeError on ``None`` vs non-``None`` comparisons.
    """
    return tuple((True, 0) if v is None else (False, v) for v in values)


def merge_join(
    left: Relation,
    right: Relation,
    conditions: Sequence[Tuple[str, str]] = (),
    residual: Optional[Predicate] = None,
) -> Relation:
    """Sort-merge join: sorts both inputs on the join key, then merges."""
    if not conditions:
        return nested_loop_join(left, right, conditions, residual)
    schema = _output(left, right)
    left_pos, right_pos = _join_positions(left.schema, right.schema, conditions)
    # Decorate once: each side's ordering keys are computed a single time,
    # then the merge works over the precomputed key arrays.
    ldec = sorted(
        ((_null_safe_key(tuple(r[i] for i in left_pos)), r) for r in left.rows),
        key=lambda kr: kr[0],
    )
    rdec = sorted(
        ((_null_safe_key(tuple(r[i] for i in right_pos)), r) for r in right.rows),
        key=lambda kr: kr[0],
    )
    out: List[Row] = []
    i = j = 0
    while i < len(ldec) and j < len(rdec):
        lkey = ldec[i][0]
        rkey = rdec[j][0]
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Gather the full run of equal keys on both sides.
            i_end = i
            while i_end < len(ldec) and ldec[i_end][0] == lkey:
                i_end += 1
            j_end = j
            while j_end < len(rdec) and rdec[j_end][0] == rkey:
                j_end += 1
            for li in range(i, i_end):
                lrow = ldec[li][1]
                for rj in range(j, j_end):
                    out.append(lrow + rdec[rj][1])
            i, j = i_end, j_end
    return Relation(schema, _residual_filter(out, schema, residual))


def index_nested_loop_join(
    outer: Relation,
    inner: Relation,
    index,
    conditions: Sequence[Tuple[str, str]],
    residual: Optional[Predicate] = None,
) -> Relation:
    """Index nested-loop join probing ``index`` built on the inner relation.

    ``index`` must be a :class:`HashIndex` or :class:`SortedIndex` whose key
    columns match the inner side of ``conditions`` in order.
    """
    schema = _output(outer, inner)
    outer_pos, _ = _join_positions(outer.schema, inner.schema, conditions)
    out: List[Row] = []
    for orow in outer:
        key = tuple(orow[i] for i in outer_pos)
        for irow in index.lookup(key):
            out.append(orow + irow)
    return Relation(schema, _residual_filter(out, schema, residual))


# ------------------------------------------------------------------ set/bag ops

def union_all(*relations: Relation) -> Relation:
    """Multiset union of any number of inputs."""
    if not relations:
        raise ValueError("union_all needs at least one input")
    result = relations[0]
    for other in relations[1:]:
        result = result.union_all(other)
    return result


def difference(left: Relation, right: Relation) -> Relation:
    """Multiset difference (one copy removed per match)."""
    return left.difference(right)


def distinct(relation: Relation) -> Relation:
    """Duplicate elimination."""
    return relation.distinct()


# ----------------------------------------------------------------- aggregation

def _aggregate_schema(
    input_schema: Schema, group_by: Sequence[str], aggregates: Sequence[AggregateSpec]
) -> Schema:
    columns: List[Column] = [input_schema.column(g) for g in group_by]
    for agg in aggregates:
        ctype = ColumnType.INTEGER if agg.func is AggregateFunc.COUNT else ColumnType.FLOAT
        columns.append(Column(agg.alias, ctype))
    return Schema(tuple(columns))


def _compute_aggregate(func: AggregateFunc, values: List[Any], count: int) -> Any:
    if func is AggregateFunc.COUNT:
        return count
    if not values:
        return None
    if func is AggregateFunc.SUM:
        return _stable_sum(values)
    if func is AggregateFunc.MIN:
        return min(values)
    if func is AggregateFunc.MAX:
        return max(values)
    if func is AggregateFunc.AVG:
        return _stable_sum(values) / len(values)
    raise ValueError(f"unknown aggregate {func}")


def _stable_sum(values: List[Any]):
    """Sum that is independent of input order.

    Incremental maintenance recomputes affected groups from rows it sees in a
    different order than full recomputation does; ``math.fsum`` returns the
    correctly rounded float sum regardless of order, so the two strategies
    produce bit-identical aggregate values (integer inputs keep integer sums).
    """
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return sum(values)
    return math.fsum(values)


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Hash group-by with the requested aggregate columns.

    With an empty ``group_by`` the result has exactly one row (even over an
    empty input, matching SQL semantics for scalar aggregates — except COUNT
    which is 0 and SUM/MIN/MAX/AVG which are None).
    """
    schema = relation.schema
    group_pos = schema.positions(group_by)
    agg_pos = [schema.index_of(a.column) if a.column else None for a in aggregates]
    out_schema = _aggregate_schema(schema, group_by, aggregates)

    groups: Dict[Tuple[Any, ...], List[Row]] = defaultdict(list)
    for row in relation:
        groups[tuple(row[i] for i in group_pos)].append(row)
    if not group_by and not groups:
        groups[()] = []

    out: List[Row] = []
    for key, rows in groups.items():
        values: List[Any] = list(key)
        for spec, pos in zip(aggregates, agg_pos):
            column_values = [r[pos] for r in rows if pos is not None and r[pos] is not None]
            values.append(_compute_aggregate(spec.func, column_values, len(rows)))
        out.append(tuple(values))
    return Relation(out_schema, out)


def aggregate_batch(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Vectorized hash aggregation, bag-identical to :func:`aggregate`.

    Grouping runs over the group-by column array (scalar dictionary keys for
    single-column group-bys), and each aggregate is then computed column-at-
    a-time from the grouped row indices.  The same accumulation helpers as
    the row-at-a-time path (:func:`_compute_aggregate`, order-independent
    sums) guarantee bit-identical aggregate values.
    """
    schema = relation.schema
    group_pos = schema.positions(group_by)
    agg_pos = [schema.index_of(a.column) if a.column else None for a in aggregates]
    out_schema = _aggregate_schema(schema, group_by, aggregates)
    rows = relation.rows

    # Group row indices by key, column-at-a-time.
    single = len(group_pos) == 1
    if single:
        keys: Sequence[Any] = relation.column_at(group_pos[0])
    elif group_pos:
        keys = list(zip(*(relation.column_at(i) for i in group_pos)))
    else:
        keys = [()] * len(rows)
    index_groups: Dict[Any, List[int]] = {}
    setdefault = index_groups.setdefault
    for i, key in enumerate(keys):
        setdefault(key, []).append(i)
    if not group_by and not index_groups:
        index_groups[()] = []

    agg_columns = [
        relation.column_at(pos) if pos is not None else None for pos in agg_pos
    ]
    out: List[Row] = []
    for key, indices in index_groups.items():
        values: List[Any] = [key] if single else list(key)
        for spec, column in zip(aggregates, agg_columns):
            if column is None:
                column_values: List[Any] = []
            else:
                column_values = [column[i] for i in indices if column[i] is not None]
            values.append(_compute_aggregate(spec.func, column_values, len(indices)))
        out.append(tuple(values))
    return Relation.from_trusted_rows(out_schema, out)


def sort(relation: Relation, columns: Sequence[str]) -> Relation:
    """Sort a relation on ``columns`` ascending."""
    return relation.sorted_by(columns)


#: Dispatch table used by the executor when a physical plan names an algorithm.
JOIN_ALGORITHMS: Dict[str, Callable[..., Relation]] = {
    "nested_loop": nested_loop_join,
    "hash": hash_join,
    "merge": merge_join,
}
