"""Refresh scheduling for continuous update streams.

The paper prices *what* to materialize; under a continuous stream the system
must also choose *when* to pay the maintenance work.  :class:`StreamScheduler`
sits between update producers and the
:class:`~repro.maintenance.maintainer.ViewRefresher`: every ingested round
lands in a :class:`~repro.stream.pending.PendingDeltas` buffer, and a
:class:`StreamPolicy` decides on each tick whether deferral still pays.

The cost comparison uses the delta-size-aware refresh costing of
:meth:`~repro.catalog.estimator.CardinalityEstimator.refresh_round_cost`:

* **eager cost** — the estimated cost of having refreshed after every
  ingested round (one fixed overhead per single-relation update per round,
  every delta row propagated through every dependent view);
* **deferred cost** — one refresh round over the coalesced pending deltas
  (fewer rows after annihilation, one overhead per relation instead of N),
  plus the large-delta penalty once a coalesced insert bag would push
  ``Database.apply_update`` past its incremental-index-maintenance
  threshold into a full rebuild.

Deferral keeps paying while ``deferred < eager``; staleness bounds
(``max_rows``, ``max_batches``) cap how far it may run ahead of view
freshness regardless of cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Tuple

from repro.storage.delta import DeltaStore, merge_delta_sizes
from repro.stream.pending import PendingDeltas

#: Signature of the per-round cost model the scheduler consults: estimated
#: cost (delta-row-equivalents) of one refresh round over the given
#: per-relation ``(inserts, deletes)`` sizes.
RoundCost = Callable[[Mapping[str, Tuple[int, int]]], float]


@dataclass(frozen=True)
class StreamPolicy:
    """When (and how) a stream session refreshes.

    ``always()`` refreshes on every ingest (the eager baseline);
    ``coalescing()`` defers and coalesces until the cost model or a
    staleness bound triggers a flush.
    """

    #: Display name ("eager" / "coalesce"), also the config-knob spelling.
    name: str = "coalesce"
    #: Refresh on every ingest, never defer.
    eager: bool = False
    #: Compose buffered rounds into one delta (insert/delete annihilation).
    coalesce: bool = True
    #: Consult the cost model each tick; with ``False`` only the staleness
    #: bounds trigger flushes.
    cost_based: bool = True
    #: Flush once the pending (coalesced) row count reaches this bound.
    max_rows: Optional[int] = None
    #: Flush once this many rounds have been deferred.
    max_batches: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError(f"max_rows must be positive, got {self.max_rows}")
        if self.max_batches is not None and self.max_batches < 1:
            raise ValueError(f"max_batches must be positive, got {self.max_batches}")

    @staticmethod
    def always() -> "StreamPolicy":
        """Refresh after every ingested round (the paper's implicit policy)."""
        return StreamPolicy(name="eager", eager=True, coalesce=False, cost_based=False)

    @staticmethod
    def coalescing(
        max_rows: Optional[int] = None,
        max_batches: Optional[int] = None,
        cost_based: bool = True,
    ) -> "StreamPolicy":
        """Defer and coalesce; flush on cost crossover or a staleness bound."""
        return StreamPolicy(
            name="coalesce",
            eager=False,
            coalesce=True,
            cost_based=cost_based,
            max_rows=max_rows,
            max_batches=max_batches,
        )


@dataclass
class TickDecision:
    """One policy tick: what arrived, what is pending, and the verdict."""

    tick: int
    arrived_rows: int
    pending_rows: int
    pending_batches: int
    annihilated_rows: int
    #: Estimated cost of having refreshed eagerly after each pending round.
    eager_cost: float
    #: Estimated cost of one deferred refresh over the coalesced pending bags.
    deferred_cost: float
    #: ``"refresh"`` or ``"defer"``.
    action: str
    reason: str

    @property
    def refreshes(self) -> bool:
        """Whether this tick triggers a flush."""
        return self.action == "refresh"

    def render(self) -> str:
        """One trace line, the building block of ``explain_schedule()``."""
        return (
            f"tick {self.tick}: +{self.arrived_rows} rows "
            f"(pending {self.pending_rows} rows / {self.pending_batches} "
            f"{'batch' if self.pending_batches == 1 else 'batches'}, "
            f"{self.annihilated_rows} annihilated) "
            f"eager≈{self.eager_cost:.1f} deferred≈{self.deferred_cost:.1f} "
            f"-> {self.action} [{self.reason}]"
        )


class StreamScheduler:
    """Decides, per ingested round, whether to refresh now or keep deferring."""

    def __init__(
        self,
        policy: StreamPolicy,
        round_cost: Optional[RoundCost] = None,
        workers: int = 1,
    ) -> None:
        self.policy = policy
        #: Cost model consulted by cost-based policies; ``None`` disables the
        #: cost comparison (staleness bounds still apply).
        self.round_cost = round_cost
        #: Shard workers the flushes will refresh with (informational: the
        #: trace records it so schedules from parallel sessions are
        #: distinguishable from serial ones when comparing decision logs).
        self.workers = workers
        if (
            not policy.eager
            and policy.max_rows is None
            and policy.max_batches is None
            and (not policy.cost_based or round_cost is None)
        ):
            raise ValueError(
                "this policy can never trigger a refresh: a deferring "
                "scheduler without a cost model needs max_rows or "
                "max_batches (pending deltas would otherwise grow until "
                "the session closes)"
            )
        self.pending = PendingDeltas(coalesce=policy.coalesce)
        #: Every decision since the scheduler was created (the explain trace).
        self.decisions: List[TickDecision] = []
        #: Accumulated estimated cost of the eager alternative for the
        #: currently pending rounds (one round-cost term per ingest).
        self._eager_cost = 0.0
        #: Per-relation sizes of the most recent round — the "typical next
        #: round" used to project whether one more deferral would still pay —
        #: and its already-computed cost (reused by the projection).
        self._last_sizes: Mapping[str, Tuple[int, int]] = {}
        self._last_round_cost = 0.0
        self._tick = 0

    # ---------------------------------------------------------------- ingest

    def ingest(self, deltas: DeltaStore) -> TickDecision:
        """Absorb one update round and decide whether to flush now."""
        self._tick += 1
        arrived = deltas.total_rows()
        self._last_sizes = deltas.delta_sizes()
        if self._costing:
            self._last_round_cost = self.round_cost(self._last_sizes)
            self._eager_cost += self._last_round_cost
        self.pending.ingest(deltas)
        decision = self._decide(arrived)
        self.decisions.append(decision)
        return decision

    @property
    def _costing(self) -> bool:
        # Eager / bound-only policies never read the estimates — skip the
        # per-tick estimator work entirely.
        return self.policy.cost_based and self.round_cost is not None

    def _decide(self, arrived: int) -> TickDecision:
        deferred_cost = (
            self.round_cost(self.pending.delta_sizes()) if self._costing else 0.0
        )
        action, reason = self._verdict(deferred_cost)
        return TickDecision(
            tick=self._tick,
            arrived_rows=arrived,
            pending_rows=self.pending.pending_rows(),
            pending_batches=self.pending.batches,
            annihilated_rows=self.pending.annihilated_rows,
            eager_cost=self._eager_cost,
            deferred_cost=deferred_cost,
            action=action,
            reason=reason,
        )

    def _verdict(self, deferred_cost: float) -> Tuple[str, str]:
        policy = self.policy
        if policy.eager:
            return "refresh", "policy always refreshes"
        if self.pending.pending_rows() == 0:
            # Everything annihilated: there is nothing a refresh could do.
            return "defer", "pending deltas annihilated to empty"
        if policy.max_batches is not None and self.pending.batches >= policy.max_batches:
            return "refresh", f"staleness bound: {self.pending.batches} batches pending"
        if policy.max_rows is not None and self.pending.pending_rows() >= policy.max_rows:
            return "refresh", f"staleness bound: {self.pending.pending_rows()} rows pending"
        if self._costing:
            if deferred_cost > self._eager_cost:
                # The large-delta index-rebuild penalty outgrew the savings:
                # the coalesced flush already costs more than eager replay.
                return "refresh", "deferral stopped paying (deferred > eager replay)"
            # Project one more typical round: flush *before* the coalesced
            # delta crosses the index-rebuild threshold, not after.
            projected_deferred = self.round_cost(
                merge_delta_sizes(self.pending.delta_sizes(), dict(self._last_sizes))
            )
            projected_eager = self._eager_cost + self._last_round_cost
            if projected_deferred > projected_eager:
                return (
                    "refresh",
                    "deferral about to stop paying (next round crosses the "
                    "index-rebuild threshold)",
                )
            saving = self._eager_cost - deferred_cost
            return "defer", f"deferral saves ≈{saving:.1f}"
        return "defer", "within staleness bounds"

    # --------------------------------------------------------------- override

    def override_last(self, action: str, reason: str) -> TickDecision:
        """Rewrite the latest verdict (a bound layered over the cost model).

        The serving daemon uses this to turn a cost-based ``defer`` into a
        ``refresh`` when a view's freshness SLO is violated: the SLO is a
        hard bound *on top of* deferral economics, so the decision trace
        must show the overridden verdict and the SLO reason — not pretend
        the cost model chose to flush.
        """
        if action not in ("refresh", "defer"):
            raise ValueError(f"unknown override action {action!r}")
        if not self.decisions:
            raise ValueError("no decision to override — nothing ingested yet")
        decision = self.decisions[-1]
        if decision.action != action:
            reason = f"{reason} [overrides {decision.action}: {decision.reason}]"
        decision.action = action
        decision.reason = reason
        return decision

    # ----------------------------------------------------------------- flush

    def take(self) -> List[DeltaStore]:
        """Hand over the pending rounds for refreshing and reset the tally."""
        rounds = self.pending.take()
        self._eager_cost = 0.0
        return rounds

    # ----------------------------------------------------------------- trace

    def render_trace(self) -> str:
        """The full decision trace, one line per tick."""
        header = (
            f"stream policy: {self.policy.name}"
            + (f", max_rows={self.policy.max_rows}" if self.policy.max_rows else "")
            + (f", max_batches={self.policy.max_batches}" if self.policy.max_batches else "")
            + (f", workers={self.workers}" if self.workers > 1 else "")
        )
        if not self.decisions:
            return header + "\n(no updates ingested yet)"
        return "\n".join([header, *[d.render() for d in self.decisions]])
