"""The pending-delta buffer between update producers and the refresher.

:class:`PendingDeltas` absorbs per-relation update rounds as they arrive and
holds them until the scheduler decides to flush.  In coalescing mode (the
default) consecutive rounds of the same relation are composed —
insert-then-delete pairs annihilate, N rounds collapse into one — so a
deferred flush propagates strictly fewer tuples than replaying the rounds
eagerly.  With coalescing off the rounds are retained verbatim, which is
what lets the property tests replay them as an oracle and lets
:meth:`ViewRefresher.refresh_many` share one old-value cache across the
flushed sequence.

Coalescing is incremental and O(arrived rows) per ingest: the buffer keeps
per-relation row lists plus a counted index of still-cancellable pending
inserts, so a tick never re-scans what is already buffered.  The composed
bags are materialized once, at :meth:`take`.  The fold itself is defined by
:func:`repro.storage.delta.coalesce_stores` — the reference implementation
the property tests pin this buffer against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.storage.delta import Delta, DeltaStore, merge_delta_sizes
from repro.storage.relation import Relation, Row, multiset_subtract


@dataclass
class _PendingRelation:
    """One relation's buffered composition state (coalescing mode)."""

    #: Template bags (empty copies keep the schemas and δ+/δ− bag names).
    insert_template: Relation
    delete_template: Relation
    #: Every pending insert row, including ones later cancelled by deletes.
    insert_rows: List[Row] = field(default_factory=list)
    #: Live multiset of pending inserts still available for cancellation.
    available: Counter = field(default_factory=Counter)
    #: Insert copies cancelled by later deletes (removed at materialization).
    cancelled: Counter = field(default_factory=Counter)
    #: Total cancelled copies — kept as a running int so size queries on
    #: every scheduler tick stay O(relations), not O(distinct cancelled rows).
    cancelled_copies: int = 0
    #: Deletes that survived cancellation, in arrival order.
    delete_rows: List[Row] = field(default_factory=list)

    def absorb(self, delta: Delta) -> int:
        """Compose one round's delta in O(round rows); returns annihilated."""
        annihilated = 0
        for row in delta.deletes.rows:
            if self.available.get(row, 0) > 0:
                self.available[row] -= 1
                self.cancelled[row] += 1
                annihilated += 1
            else:
                self.delete_rows.append(row)
        self.cancelled_copies += annihilated
        if len(delta.inserts):
            self.insert_rows.extend(delta.inserts.rows)
            self.available.update(delta.inserts.rows)
        return annihilated

    @property
    def pending_inserts(self) -> int:
        return len(self.insert_rows) - self.cancelled_copies

    def materialize(self, relation: str) -> Delta:
        """The composed delta: pending inserts minus cancelled, plus deletes."""
        inserts = Relation.from_trusted_rows(
            self.insert_template.schema,
            multiset_subtract(self.insert_rows, self.cancelled.elements()),
            self.insert_template.name,
        )
        deletes = Relation.from_trusted_rows(
            self.delete_template.schema,
            list(self.delete_rows),
            self.delete_template.name,
        )
        return Delta(relation, inserts, deletes)


class PendingDeltas:
    """Buffered update rounds awaiting a refresh, optionally coalesced."""

    def __init__(self, coalesce: bool = True) -> None:
        self.coalesce = coalesce
        #: Rounds retained verbatim (coalescing off) — the eager-replay oracle.
        self._rounds: List[DeltaStore] = []
        #: Per-relation composition state, in first-seen propagation order.
        self._state: Dict[str, _PendingRelation] = {}
        #: Rounds absorbed since the last flush.
        self.batches = 0
        #: Tuples handed to :meth:`ingest` since the last flush.
        self.rows_ingested = 0
        #: Tuples that annihilated during coalescing since the last flush.
        self.annihilated_rows = 0

    # ---------------------------------------------------------------- ingest

    def ingest(self, deltas: DeltaStore) -> int:
        """Absorb one update round; returns tuples annihilated by this round."""
        self.batches += 1
        self.rows_ingested += deltas.total_rows()
        if not self.coalesce:
            self._rounds.append(deltas)
            return 0
        annihilated = 0
        for delta in deltas:
            state = self._state.get(delta.relation)
            if state is None:
                state = _PendingRelation(
                    insert_template=Relation.empty_like(delta.inserts),
                    delete_template=Relation.empty_like(delta.deletes),
                )
                self._state[delta.relation] = state
            annihilated += state.absorb(delta)
        self.annihilated_rows += annihilated
        return annihilated

    # ------------------------------------------------------------- inspection

    @property
    def is_empty(self) -> bool:
        """Whether nothing has been ingested since the last flush."""
        return self.batches == 0

    def pending_rows(self) -> int:
        """Tuples a flush would actually propagate (after coalescing)."""
        if self.coalesce:
            return sum(
                state.pending_inserts + len(state.delete_rows)
                for state in self._state.values()
            )
        return sum(store.total_rows() for store in self._rounds)

    def delta_sizes(self) -> Dict[str, Tuple[int, int]]:
        """Per-relation ``(inserts, deletes)`` sizes of the pending work.

        In coalescing mode these are the coalesced bag sizes; otherwise the
        element-wise sums over the buffered rounds.
        """
        if self.coalesce:
            return {
                relation: (state.pending_inserts, len(state.delete_rows))
                for relation, state in self._state.items()
            }
        return merge_delta_sizes(*[store.delta_sizes() for store in self._rounds])

    # ------------------------------------------------------------------ flush

    def take(self) -> List[DeltaStore]:
        """Hand over the pending rounds for a refresh and reset the buffer.

        Coalescing mode yields at most one round (none when everything
        annihilated — the refresh is skipped entirely); otherwise the
        buffered rounds in arrival order.
        """
        if self.coalesce:
            merged: Optional[DeltaStore] = None
            if any(
                state.pending_inserts or state.delete_rows
                for state in self._state.values()
            ):
                merged = DeltaStore(list(self._state))
                for relation, state in self._state.items():
                    merged.set_delta(state.materialize(relation))
            rounds = [merged] if merged is not None else []
        else:
            rounds = self._rounds
        self._rounds = []
        self._state = {}
        self.batches = 0
        self.rows_ingested = 0
        self.annihilated_rows = 0
        return rounds
