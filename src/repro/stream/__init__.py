"""Streaming update ingestion: delta coalescing + cost-based deferred refresh.

The paper's optimizer decides *what* to materialize by pricing maintenance
work; this package adds the time dimension — *when* to pay that work under a
continuous update stream:

* :class:`PendingDeltas` — the buffer between update producers and the
  refresher, coalescing consecutive rounds (insert/delete annihilation,
  N rounds → one bag) so one refresh replaces many;
* :class:`StreamPolicy` / :class:`StreamScheduler` — per-tick refresh-or-defer
  decisions comparing estimated deferred cost (bigger coalesced delta,
  possible index-rebuild fallback) against eager replay, bounded by
  staleness limits (``max_rows``, ``max_batches``);
* :class:`TickDecision` — one trace entry, rendered by
  ``Warehouse.stream().explain_schedule()``.

The public entry point is :meth:`repro.api.Warehouse.stream`.
"""

from repro.stream.pending import PendingDeltas
from repro.stream.scheduler import StreamPolicy, StreamScheduler, TickDecision

__all__ = [
    "PendingDeltas",
    "StreamPolicy",
    "StreamScheduler",
    "TickDecision",
]
