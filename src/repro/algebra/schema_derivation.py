"""Derivation of output schemas and statistics for logical expressions.

``derive_schema`` computes the output schema of any :class:`Expression`
against a :class:`~repro.catalog.Catalog`; ``derive_stats`` computes the
estimated statistics (cardinality, tuple width, column stats) used by the
cost model.  Both walk the logical tree directly, so they are usable before
any DAG has been built — the DAG builder then caches the results per
equivalence node.

Statistics estimation itself lives in the unified
:class:`~repro.catalog.estimator.CardinalityEstimator` (histogram
interpolation, runtime-feedback corrections, per-expression memoization);
``derive_stats`` and ``predicate_selectivity`` are thin compatibility
wrappers that either use a caller-provided estimator or spin up a transient
one.  Callers that estimate repeatedly (the DAG builder, the maintenance
cost engine) should pass a shared estimator so memoization and feedback
corrections span the whole planning session.
"""

from __future__ import annotations

from typing import List

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import Predicate
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Schema
from repro.catalog.statistics import TableStats


def derive_schema(expression: Expression, catalog: Catalog) -> Schema:
    """Compute the output schema of ``expression``."""
    if isinstance(expression, BaseRelation):
        return catalog.schema(expression.name)
    if isinstance(expression, Select):
        return derive_schema(expression.child, catalog)
    if isinstance(expression, Project):
        child = derive_schema(expression.child, catalog)
        return child.project(expression.columns)
    if isinstance(expression, Join):
        left = derive_schema(expression.left, catalog)
        right = derive_schema(expression.right, catalog)
        return left.concat(right)
    if isinstance(expression, Aggregate):
        child = derive_schema(expression.child, catalog)
        columns: List[Column] = [child.column(g) for g in expression.group_by]
        for agg in expression.aggregates:
            ctype = ColumnType.INTEGER if agg.func is AggregateFunc.COUNT else ColumnType.FLOAT
            columns.append(Column(agg.alias, ctype))
        return Schema(tuple(columns))
    if isinstance(expression, UnionAll):
        return derive_schema(expression.inputs[0], catalog)
    if isinstance(expression, Difference):
        return derive_schema(expression.left, catalog)
    if isinstance(expression, Distinct):
        return derive_schema(expression.child, catalog)
    raise TypeError(f"unknown expression type {type(expression).__name__}")


_selectivity_estimator = None


def _default_selectivity_estimator():
    """A shared catalog-less estimator for bare selectivity questions."""
    global _selectivity_estimator
    if _selectivity_estimator is None:
        # Deferred import: the estimator imports derive_schema from here.
        from repro.catalog.estimator import CardinalityEstimator

        _selectivity_estimator = CardinalityEstimator(Catalog())
    return _selectivity_estimator


def predicate_selectivity(
    predicate: Predicate, stats: TableStats, estimator=None
) -> float:
    """Estimated selectivity of an arbitrary predicate against ``stats``."""
    return (estimator or _default_selectivity_estimator()).predicate_selectivity(
        predicate, stats
    )


def derive_stats(
    expression: Expression, catalog: Catalog, estimator=None
) -> TableStats:
    """Compute estimated statistics for the result of ``expression``.

    Delegates to the given :class:`CardinalityEstimator` (or a transient one
    bound to ``catalog``), the single owner of selectivity, join and group
    estimation.
    """
    if estimator is None:
        from repro.catalog.estimator import CardinalityEstimator

        estimator = CardinalityEstimator(catalog)
    return estimator.stats(expression)
