"""Derivation of output schemas and statistics for logical expressions.

``derive_schema`` computes the output schema of any :class:`Expression`
against a :class:`~repro.catalog.Catalog`; ``derive_stats`` computes the
estimated statistics (cardinality, tuple width, column stats) used by the
cost model.  Both walk the logical tree directly, so they are usable before
any DAG has been built — the DAG builder then caches the results per
equivalence node.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import (
    ColumnRef,
    Comparison,
    Literal,
    Predicate,
    conjuncts,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, ColumnType, Schema, SchemaError
from repro.catalog.statistics import (
    ColumnStats,
    TableStats,
    difference_cardinality,
    estimate_group_count,
    estimate_join_cardinality,
    estimate_selectivity,
    merge_column_stats,
    union_cardinality,
)


def derive_schema(expression: Expression, catalog: Catalog) -> Schema:
    """Compute the output schema of ``expression``."""
    if isinstance(expression, BaseRelation):
        return catalog.schema(expression.name)
    if isinstance(expression, Select):
        return derive_schema(expression.child, catalog)
    if isinstance(expression, Project):
        child = derive_schema(expression.child, catalog)
        return child.project(expression.columns)
    if isinstance(expression, Join):
        left = derive_schema(expression.left, catalog)
        right = derive_schema(expression.right, catalog)
        return left.concat(right)
    if isinstance(expression, Aggregate):
        child = derive_schema(expression.child, catalog)
        columns: List[Column] = [child.column(g) for g in expression.group_by]
        for agg in expression.aggregates:
            ctype = ColumnType.INTEGER if agg.func is AggregateFunc.COUNT else ColumnType.FLOAT
            columns.append(Column(agg.alias, ctype))
        return Schema(tuple(columns))
    if isinstance(expression, UnionAll):
        return derive_schema(expression.inputs[0], catalog)
    if isinstance(expression, Difference):
        return derive_schema(expression.left, catalog)
    if isinstance(expression, Distinct):
        return derive_schema(expression.child, catalog)
    raise TypeError(f"unknown expression type {type(expression).__name__}")


def predicate_selectivity(predicate: Predicate, stats: TableStats) -> float:
    """Estimated selectivity of an arbitrary predicate against ``stats``."""
    selectivity = 1.0
    for part in conjuncts(predicate):
        selectivity *= _single_selectivity(part, stats)
    return max(0.0, min(1.0, selectivity))


def _single_selectivity(predicate: Predicate, stats: TableStats) -> float:
    if isinstance(predicate, Comparison):
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return estimate_selectivity(op, stats, left.name, _numeric(right.value))
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return estimate_selectivity(flipped, stats, right.name, _numeric(left.value))
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            # Column-to-column comparison within one input: treat as an
            # equi-restriction using the larger distinct count.
            v = max(stats.distinct(left.name), stats.distinct(right.name))
            return 1.0 / max(1.0, v) if op == "==" else 1.0 / 3.0
    # Unknown predicate shapes get the default restriction factor.
    return 0.25


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None


def derive_stats(expression: Expression, catalog: Catalog) -> TableStats:
    """Compute estimated statistics for the result of ``expression``."""
    if isinstance(expression, BaseRelation):
        return catalog.stats(expression.name)

    if isinstance(expression, Select):
        child = derive_stats(expression.child, catalog)
        selectivity = predicate_selectivity(expression.predicate, child)
        return child.with_cardinality(child.cardinality * selectivity)

    if isinstance(expression, Project):
        child = derive_stats(expression.child, catalog)
        schema = derive_schema(expression, catalog)
        kept = {c.name for c in schema.columns}
        cols = {n: cs for n, cs in child.column_stats.items() if n in kept or n.rsplit(".", 1)[-1] in kept}
        return TableStats(child.cardinality, schema.tuple_width, cols)

    if isinstance(expression, Join):
        left = derive_stats(expression.left, catalog)
        right = derive_stats(expression.right, catalog)
        cardinality = estimate_join_cardinality(left, right, expression.conditions)
        if not isinstance(expression.residual, type(None)):
            combined = TableStats(
                max(cardinality, 1.0),
                left.tuple_width + right.tuple_width,
                merge_column_stats(left.column_stats, right.column_stats),
            )
            cardinality *= predicate_selectivity(expression.residual, combined)
        width = left.tuple_width + right.tuple_width
        cols = merge_column_stats(left.column_stats, right.column_stats)
        # Clamp distinct counts to the join output cardinality.
        return TableStats(cardinality, width, cols).with_cardinality(cardinality)

    if isinstance(expression, Aggregate):
        child = derive_stats(expression.child, catalog)
        groups = estimate_group_count(child, expression.group_by)
        schema = derive_schema(expression, catalog)
        cols: Dict[str, ColumnStats] = {}
        for g in expression.group_by:
            base = child.column(g)
            cols[g] = ColumnStats(distinct=min(base.distinct if base else groups, groups)) if base else ColumnStats(distinct=groups)
        for agg in expression.aggregates:
            cols[agg.alias] = ColumnStats(distinct=groups)
        return TableStats(groups, schema.tuple_width, cols)

    if isinstance(expression, UnionAll):
        parts = [derive_stats(i, catalog) for i in expression.inputs]
        schema = derive_schema(expression, catalog)
        cols = merge_column_stats(*[p.column_stats for p in parts])
        return TableStats(union_cardinality(parts), schema.tuple_width, cols)

    if isinstance(expression, Difference):
        left = derive_stats(expression.left, catalog)
        right = derive_stats(expression.right, catalog)
        return left.with_cardinality(difference_cardinality(left, right))

    if isinstance(expression, Distinct):
        child = derive_stats(expression.child, catalog)
        schema = derive_schema(expression, catalog)
        distinct = estimate_group_count(child, list(schema.names))
        return child.with_cardinality(distinct)

    raise TypeError(f"unknown expression type {type(expression).__name__}")
