"""Logical expression trees.

An :class:`Expression` is the optimizer's logical representation of a view or
query: an immutable operator tree over named base relations.  Expressions are
hashable by a canonical form, which the DAG builder uses to detect repeated
sub-expressions across views ("unification", paper §4.2).

Only the operators the paper's workloads need are provided, but the set is
complete enough for general SPJ+aggregate warehouse views: selection,
projection, (equi)join, group-by/aggregation, multiset union, multiset
difference and duplicate elimination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.predicates import Predicate, TruePredicate, conjuncts


class Expression:
    """Base class of all logical operators."""

    def children(self) -> Tuple["Expression", ...]:
        """Child expressions, left to right."""
        raise NotImplementedError

    def canonical(self) -> str:
        """Canonical textual form used for hashing and unification."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Short operator label for plan display."""
        return type(self).__name__

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.canonical() == other.canonical()

    def __repr__(self) -> str:
        return self.canonical()


@dataclass(frozen=True, eq=False)
class BaseRelation(Expression):
    """A leaf: a named stored relation."""

    name: str

    def children(self) -> Tuple[Expression, ...]:
        return ()

    def canonical(self) -> str:
        return self.name

    @property
    def label(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Select(Expression):
    """Multiset selection ``σ_predicate(child)``."""

    child: Expression
    predicate: Predicate

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def canonical(self) -> str:
        return f"select[{self.predicate.canonical()}]({self.child.canonical()})"

    @property
    def label(self) -> str:
        return f"σ[{self.predicate.canonical()}]"


@dataclass(frozen=True, eq=False)
class Project(Expression):
    """Multiset (duplicate-preserving) projection onto ``columns``."""

    child: Expression
    columns: Tuple[str, ...]

    def __init__(self, child: Expression, columns: Sequence[str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def canonical(self) -> str:
        cols = ",".join(c.rsplit(".", 1)[-1] for c in self.columns)
        return f"project[{cols}]({self.child.canonical()})"

    @property
    def label(self) -> str:
        return f"π[{','.join(self.columns)}]"


@dataclass(frozen=True, eq=False)
class Join(Expression):
    """Multiset equi-join with optional residual predicate.

    ``conditions`` is a tuple of ``(left_column, right_column)`` pairs; the
    optional ``residual`` predicate covers non-equi conditions evaluated on
    the concatenated schema.  An empty ``conditions`` tuple with a true
    residual is a cross product.
    """

    left: Expression
    right: Expression
    conditions: Tuple[Tuple[str, str], ...] = ()
    residual: Predicate = field(default_factory=TruePredicate)

    def __init__(
        self,
        left: Expression,
        right: Expression,
        conditions: Sequence[Tuple[str, str]] = (),
        residual: Optional[Predicate] = None,
    ) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "conditions", tuple((str(a), str(b)) for a, b in conditions))
        object.__setattr__(self, "residual", residual or TruePredicate())

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def canonical(self) -> str:
        conds = sorted(
            "=".join(sorted((a.rsplit(".", 1)[-1], b.rsplit(".", 1)[-1])))
            for a, b in self.conditions
        )
        left = self.left.canonical()
        right = self.right.canonical()
        # Joins are commutative in the multiset algebra: canonicalize operand order.
        if right < left:
            left, right = right, left
        residual = self.residual.canonical()
        return f"join[{','.join(conds)};{residual}]({left},{right})"

    @property
    def label(self) -> str:
        conds = ",".join(f"{a}={b}" for a, b in self.conditions) or "⨯"
        return f"⋈[{conds}]"


class AggregateFunc(enum.Enum):
    """Supported (distributive or algebraic) aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"

    @property
    def is_distributive(self) -> bool:
        """Whether the aggregate can be maintained from deltas alone.

        COUNT and SUM are self-maintainable under inserts and deletes given
        the old aggregate value; AVG is maintainable as SUM/COUNT; MIN/MAX are
        maintainable under inserts but may require recomputation of affected
        groups under deletes (the engine handles that case explicitly).
        """
        return self in (AggregateFunc.COUNT, AggregateFunc.SUM, AggregateFunc.AVG)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``func(column) AS alias``."""

    func: AggregateFunc
    column: Optional[str]
    alias: str

    def canonical(self) -> str:
        target = (self.column or "*").rsplit(".", 1)[-1]
        return f"{self.func.value}({target})->{self.alias}"


@dataclass(frozen=True, eq=False)
class Aggregate(Expression):
    """Group-by / aggregation ``groupbyGaggs(child)``."""

    child: Expression
    group_by: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]

    def __init__(
        self,
        child: Expression,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "aggregates", tuple(aggregates))

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def canonical(self) -> str:
        groups = ",".join(c.rsplit(".", 1)[-1] for c in self.group_by)
        aggs = ",".join(sorted(a.canonical() for a in self.aggregates))
        return f"aggregate[{groups};{aggs}]({self.child.canonical()})"

    @property
    def label(self) -> str:
        return f"γ[{','.join(self.group_by)}]"


@dataclass(frozen=True, eq=False)
class UnionAll(Expression):
    """Multiset union of two or more inputs (duplicates preserved)."""

    inputs: Tuple[Expression, ...]

    def __init__(self, inputs: Sequence[Expression]) -> None:
        object.__setattr__(self, "inputs", tuple(inputs))
        if len(self.inputs) < 2:
            raise ValueError("UnionAll needs at least two inputs")

    def children(self) -> Tuple[Expression, ...]:
        return self.inputs

    def canonical(self) -> str:
        parts = sorted(i.canonical() for i in self.inputs)
        return f"union({','.join(parts)})"

    @property
    def label(self) -> str:
        return "∪"


@dataclass(frozen=True, eq=False)
class Difference(Expression):
    """Multiset difference ``left − right`` (one copy removed per match)."""

    left: Expression
    right: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def canonical(self) -> str:
        return f"difference({self.left.canonical()},{self.right.canonical()})"

    @property
    def label(self) -> str:
        return "−"


@dataclass(frozen=True, eq=False)
class Distinct(Expression):
    """Duplicate elimination."""

    child: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def canonical(self) -> str:
        return f"distinct({self.child.canonical()})"

    @property
    def label(self) -> str:
        return "δ-dup"


# --------------------------------------------------------------------- helpers

def walk(expression: Expression) -> Iterator[Expression]:
    """Yield every node of the expression tree (pre-order)."""
    yield expression
    for child in expression.children():
        yield from walk(child)


def base_relations(expression: Expression) -> FrozenSet[str]:
    """The set of base relation names the expression depends on."""
    return frozenset(
        node.name for node in walk(expression) if isinstance(node, BaseRelation)
    )


def join_conditions(expression: Expression) -> List[Tuple[str, str]]:
    """All equi-join condition pairs appearing anywhere in the expression."""
    pairs: List[Tuple[str, str]] = []
    for node in walk(expression):
        if isinstance(node, Join):
            pairs.extend(node.conditions)
    return pairs


def selection_conjuncts(expression: Expression) -> List[Predicate]:
    """All selection conjuncts appearing anywhere in the expression."""
    preds: List[Predicate] = []
    for node in walk(expression):
        if isinstance(node, Select):
            preds.extend(conjuncts(node.predicate))
    return preds
