"""Logical multiset relational algebra.

Expressions in this package are the *logical* query/view definitions the
optimizer takes as input: immutable trees of operators (scan, select,
project, join, aggregate, union, difference, distinct) over named base
relations, with a small predicate AST.

The DAG builder (:mod:`repro.optimizer.dag_builder`) turns these trees into
AND-OR DAGs; the execution engine (:mod:`repro.engine`) evaluates physical
plans derived from them.
"""

from repro.algebra.predicates import (
    And,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
    col,
    conjuncts,
    eq,
    ge,
    gt,
    le,
    lit,
    lt,
    ne,
)
from repro.algebra.expressions import (
    AggregateFunc,
    AggregateSpec,
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
    base_relations,
    walk,
)
from repro.algebra.schema_derivation import derive_schema, derive_stats

__all__ = [
    "Predicate",
    "TruePredicate",
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "col",
    "lit",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "conjuncts",
    "Expression",
    "BaseRelation",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "AggregateFunc",
    "AggregateSpec",
    "UnionAll",
    "Difference",
    "Distinct",
    "base_relations",
    "walk",
    "derive_schema",
    "derive_stats",
]
