"""Logical rewrites used when preparing expressions for the DAG builder.

Two normalizations keep the expanded DAG small and maximize unification:

* **selection push-down** — conjuncts of a selection above a join that
  reference columns of only one join input are pushed to that input, and
  cascading selections are merged;
* **join flattening** — nested joins are flattened into a *join block*
  (a set of non-join leaf inputs plus the multiset of equi-join conditions),
  which the builder then re-expands into every association order.  This is
  how the expanded DAG ends up with "exactly one equivalence node for every
  subset of {A, B, C}" (paper Figure 1(c)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.algebra.expressions import (
    Aggregate,
    BaseRelation,
    Difference,
    Distinct,
    Expression,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import (
    Predicate,
    TruePredicate,
    conjoin,
    conjuncts,
)
from repro.catalog.catalog import Catalog
from repro.algebra.schema_derivation import derive_schema


def push_down_selections(expression: Expression, catalog: Catalog) -> Expression:
    """Push selection conjuncts as close to the base relations as possible."""

    def referenced(pred: Predicate, node: Expression) -> bool:
        schema = derive_schema(node, catalog)
        return all(column in schema for column in pred.columns())

    def rewrite(node: Expression, pending: List[Predicate]) -> Expression:
        if isinstance(node, Select):
            return rewrite(node.child, pending + conjuncts(node.predicate))

        if isinstance(node, Join):
            left_preds = [p for p in pending if referenced(p, node.left)]
            remaining = [p for p in pending if p not in left_preds]
            right_preds = [p for p in remaining if referenced(p, node.right)]
            still_pending = [p for p in remaining if p not in right_preds]
            new_left = rewrite(node.left, left_preds)
            new_right = rewrite(node.right, right_preds)
            rebuilt: Expression = Join(new_left, new_right, node.conditions, node.residual)
            if still_pending:
                rebuilt = Select(rebuilt, conjoin(still_pending))
            return rebuilt

        if isinstance(node, (Aggregate, Project, Distinct, UnionAll, Difference, BaseRelation)):
            # Rebuild children without selections crossing these operators
            # (pushing through aggregation/projection safely would need
            # column provenance tracking; the paper's workloads do not rely
            # on it, so we stop here and re-apply pending conjuncts on top).
            rebuilt = _rebuild_children(node, catalog)
            if pending:
                return Select(rebuilt, conjoin(pending))
            return rebuilt

        raise TypeError(f"unknown expression type {type(node).__name__}")

    return rewrite(expression, [])


def _rebuild_children(node: Expression, catalog: Catalog) -> Expression:
    if isinstance(node, BaseRelation):
        return node
    if isinstance(node, Aggregate):
        return Aggregate(push_down_selections(node.child, catalog), node.group_by, node.aggregates)
    if isinstance(node, Project):
        return Project(push_down_selections(node.child, catalog), node.columns)
    if isinstance(node, Distinct):
        return Distinct(push_down_selections(node.child, catalog))
    if isinstance(node, UnionAll):
        return UnionAll([push_down_selections(i, catalog) for i in node.inputs])
    if isinstance(node, Difference):
        return Difference(
            push_down_selections(node.left, catalog), push_down_selections(node.right, catalog)
        )
    return node


@dataclass
class JoinBlock:
    """A flattened join: leaf inputs and the equi-join conditions among them.

    ``leaves`` are non-join expressions (base relations, selections over base
    relations, aggregate results, ...).  ``conditions`` keep the original
    ``(left_column, right_column)`` pairs; ``residuals`` collects non-equi
    join predicates which are re-applied on top of the block.
    """

    leaves: List[Expression] = field(default_factory=list)
    conditions: List[Tuple[str, str]] = field(default_factory=list)
    residuals: List[Predicate] = field(default_factory=list)

    @property
    def is_trivial(self) -> bool:
        """Whether the block is a single leaf (no join at all)."""
        return len(self.leaves) <= 1


def flatten_join_block(expression: Expression) -> JoinBlock:
    """Flatten a tree of joins into a :class:`JoinBlock`.

    Non-join operators become leaves; their subtrees are *not* flattened
    further here (the DAG builder recurses into them separately).
    """
    block = JoinBlock()

    def visit(node: Expression) -> None:
        if isinstance(node, Join):
            block.conditions.extend(node.conditions)
            if node.residual is not None and not isinstance(node.residual, TruePredicate):
                block.residuals.append(node.residual)
            visit(node.left)
            visit(node.right)
        else:
            block.leaves.append(node)

    visit(expression)
    return block


def left_deep_join(
    leaves: Sequence[Expression], conditions: Sequence[Tuple[str, str]], catalog: Catalog
) -> Expression:
    """Build a representative left-deep join over ``leaves``.

    Conditions are attached to the first join in which both their columns are
    available; any condition whose columns never become available together is
    ignored (it does not apply to this subset of leaves).
    """
    if not leaves:
        raise ValueError("cannot build a join over zero leaves")
    ordered = sorted(leaves, key=lambda e: e.canonical())
    current = ordered[0]
    unused = list(conditions)
    for leaf in ordered[1:]:
        current_schema = derive_schema(current, catalog)
        leaf_schema = derive_schema(leaf, catalog)
        applicable: List[Tuple[str, str]] = []
        rest: List[Tuple[str, str]] = []
        for a, b in unused:
            if a in current_schema and b in leaf_schema:
                applicable.append((a, b))
            elif b in current_schema and a in leaf_schema:
                applicable.append((b, a))
            else:
                rest.append((a, b))
        unused = rest
        current = Join(current, leaf, applicable)
    return current
