"""Predicate AST.

Predicates appear in selections and (non-equi parts of) join conditions.
They are immutable, hashable, and carry both an evaluation method (used by
the execution engine) and a canonical textual form (used by the DAG builder
to unify logically equivalent expressions and to detect subsumption, e.g.
``σ_{A<5}`` derivable from ``σ_{A<10}``).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.catalog.schema import Schema

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Predicate:
    """Base class for all predicate nodes."""

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> bool:
        """Evaluate the predicate against a row of ``schema``."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """All column names referenced by the predicate."""
        raise NotImplementedError

    def canonical(self) -> str:
        """A canonical string used for hashing/unification."""
        raise NotImplementedError

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.canonical() == other.canonical()

    def __repr__(self) -> str:
        return self.canonical()


@dataclass(frozen=True, eq=False)
class TruePredicate(Predicate):
    """The always-true predicate (an empty selection)."""

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> bool:
        return True

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def canonical(self) -> str:
        return "true"


@dataclass(frozen=True, eq=False)
class ColumnRef(Predicate):
    """Reference to a column; usable as a comparison operand."""

    name: str

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> Any:
        return row[schema.index_of(self.name)]

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def canonical(self) -> str:
        return f"col({self.name.rsplit('.', 1)[-1]})"


@dataclass(frozen=True, eq=False)
class Literal(Predicate):
    """A constant operand."""

    value: Any

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> Any:
        return self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def canonical(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, eq=False)
class Comparison(Predicate):
    """A binary comparison between two operands (columns or literals)."""

    op: str
    left: Predicate
    right: Predicate

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> bool:
        left = self.left.evaluate(row, schema)
        right = self.right.evaluate(row, schema)
        if left is None or right is None:
            return False
        return _OPS[self.op](left, right)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def canonical(self) -> str:
        left = self.left.canonical()
        right = self.right.canonical()
        op = self.op
        # Normalize so that col==col comparisons are order independent and
        # literal-first comparisons are flipped; keeps A==B and B==A unified.
        if op in ("==", "!=") and right < left:
            left, right = right, left
        elif op in ("<", "<=", ">", ">=") and isinstance(self.left, Literal):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            return f"({right} {flipped} {left})"
        return f"({left} {op} {right})"

    @property
    def is_equijoin(self) -> bool:
        """Whether this is a column = column comparison."""
        return (
            self.op == "=="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def negate(self) -> "Comparison":
        """The logically negated comparison."""
        return Comparison(_NEGATED[self.op], self.left, self.right)


@dataclass(frozen=True, eq=False)
class And(Predicate):
    """Conjunction of predicates (stored as a canonical sorted tuple)."""

    parts: Tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]) -> None:
        flattened: List[Predicate] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            elif isinstance(part, TruePredicate):
                continue
            else:
                flattened.append(part)
        ordered = tuple(sorted(flattened, key=lambda p: p.canonical()))
        object.__setattr__(self, "parts", ordered)

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> bool:
        return all(p.evaluate(row, schema) for p in self.parts)

    def columns(self) -> FrozenSet[str]:
        cols: FrozenSet[str] = frozenset()
        for p in self.parts:
            cols |= p.columns()
        return cols

    def canonical(self) -> str:
        if not self.parts:
            return "true"
        return "(" + " and ".join(p.canonical() for p in self.parts) + ")"


@dataclass(frozen=True, eq=False)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: Tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]) -> None:
        ordered = tuple(sorted(parts, key=lambda p: p.canonical()))
        object.__setattr__(self, "parts", ordered)

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> bool:
        return any(p.evaluate(row, schema) for p in self.parts)

    def columns(self) -> FrozenSet[str]:
        cols: FrozenSet[str] = frozenset()
        for p in self.parts:
            cols |= p.columns()
        return cols

    def canonical(self) -> str:
        if not self.parts:
            return "false"
        return "(" + " or ".join(p.canonical() for p in self.parts) + ")"


@dataclass(frozen=True, eq=False)
class Not(Predicate):
    """Negation of a predicate."""

    inner: Predicate

    def evaluate(self, row: Tuple[Any, ...], schema: Schema) -> bool:
        return not self.inner.evaluate(row, schema)

    def columns(self) -> FrozenSet[str]:
        return self.inner.columns()

    def canonical(self) -> str:
        return f"(not {self.inner.canonical()})"


# --------------------------------------------------------------------- helpers

def col(name: str) -> ColumnRef:
    """Shorthand for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for a literal."""
    return Literal(value)


def _operand(value: Any) -> Predicate:
    if isinstance(value, Predicate):
        return value
    if isinstance(value, str):
        return ColumnRef(value)
    return Literal(value)


def eq(left: Any, right: Any) -> Comparison:
    """``left == right`` (strings are treated as column names)."""
    return Comparison("==", _operand(left), _operand(right))


def ne(left: Any, right: Any) -> Comparison:
    """``left != right``."""
    return Comparison("!=", _operand(left), _operand(right))


def lt(left: Any, right: Any) -> Comparison:
    """``left < right``."""
    return Comparison("<", _operand(left), _operand(right))


def le(left: Any, right: Any) -> Comparison:
    """``left <= right``."""
    return Comparison("<=", _operand(left), _operand(right))


def gt(left: Any, right: Any) -> Comparison:
    """``left > right``."""
    return Comparison(">", _operand(left), _operand(right))


def ge(left: Any, right: Any) -> Comparison:
    """``left >= right``."""
    return Comparison(">=", _operand(left), _operand(right))


def conjuncts(predicate: Optional[Predicate]) -> List[Predicate]:
    """Split a predicate into its top-level conjuncts (empty for True/None)."""
    if predicate is None or isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        return list(predicate.parts)
    return [predicate]


def conjoin(parts: Sequence[Predicate]) -> Predicate:
    """Combine conjuncts back into a single predicate."""
    parts = [p for p in parts if not isinstance(p, TruePredicate)]
    if not parts:
        return TruePredicate()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


# ------------------------------------------------------------ compiled closures

def compile_predicate(
    predicate: Optional[Predicate], schema: Schema
) -> Callable[[Tuple[Any, ...]], bool]:
    """Compile a predicate into a fast row closure for ``schema``.

    The interpreted path (:meth:`Predicate.evaluate`) resolves every column
    reference through :meth:`Schema.index_of` on every row — a linear scan of
    the schema per value read.  The compiled closure resolves positions once
    and then touches rows only by integer index, which is what makes batch
    selection and join-residual filtering in the physical engine cheap.

    Semantics match :meth:`Predicate.evaluate` exactly, including the SQL-ish
    rule that comparisons against ``None`` are false.
    """
    if predicate is None or isinstance(predicate, TruePredicate):
        return lambda row: True
    if isinstance(predicate, Comparison):
        op_fn = _OPS[predicate.op]
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            pos = schema.index_of(left.name)
            value = right.value
            if value is None:
                return lambda row: False
            return lambda row: row[pos] is not None and op_fn(row[pos], value)
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            pos = schema.index_of(right.name)
            value = left.value
            if value is None:
                return lambda row: False
            return lambda row: row[pos] is not None and op_fn(value, row[pos])
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            lpos = schema.index_of(left.name)
            rpos = schema.index_of(right.name)
            return (
                lambda row: row[lpos] is not None
                and row[rpos] is not None
                and op_fn(row[lpos], row[rpos])
            )
        if isinstance(left, Literal) and isinstance(right, Literal):
            if left.value is None or right.value is None:
                return lambda row: False
            result = op_fn(left.value, right.value)
            return lambda row: result
    if isinstance(predicate, And):
        compiled = [compile_predicate(part, schema) for part in predicate.parts]
        if not compiled:
            return lambda row: True
        if len(compiled) == 1:
            return compiled[0]
        if len(compiled) == 2:
            first, second = compiled
            return lambda row: first(row) and second(row)
        return lambda row: all(fn(row) for fn in compiled)
    if isinstance(predicate, Or):
        compiled = [compile_predicate(part, schema) for part in predicate.parts]
        if not compiled:
            return lambda row: False
        if len(compiled) == 1:
            return compiled[0]
        return lambda row: any(fn(row) for fn in compiled)
    if isinstance(predicate, Not):
        inner = compile_predicate(predicate.inner, schema)
        return lambda row: not inner(row)
    # Exotic predicate shapes (e.g. comparisons over nested predicates) keep
    # the interpreted semantics.
    return lambda row: predicate.evaluate(row, schema)


def compile_mask(
    predicate: Optional[Predicate], schema: Schema
) -> Callable[[Any], Any]:
    """Compile a predicate into a whole-column boolean-mask producer.

    The returned function takes a column store implementing the vector
    protocol of ``repro.storage.columns`` (``full_mask`` /
    ``compare_literal`` / ``compare_columns`` / ``rowwise_mask``) and
    returns one boolean mask over every row.  Column positions are resolved
    once at compile time, mirroring :func:`compile_predicate`; semantics
    match it exactly, including the SQL-ish rule that comparisons against
    ``None`` (literal or cell) are false.

    One deliberate divergence: conjunctions and disjunctions evaluate every
    part over the full column — there is no per-row short-circuit the way
    the row closures have.  That is the standard vectorization trade: all
    predicates in this engine compare consistently typed columns, so a
    later conjunct never depends on an earlier one to guard its types.
    """
    if predicate is None or isinstance(predicate, TruePredicate):
        return lambda store: store.full_mask(True)
    if isinstance(predicate, Comparison):
        op = predicate.op
        left, right = predicate.left, predicate.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            pos = schema.index_of(left.name)
            value = right.value
            if value is None:
                return lambda store: store.full_mask(False)
            return lambda store: store.compare_literal(pos, op, value)
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            pos = schema.index_of(right.name)
            value = left.value
            if value is None:
                return lambda store: store.full_mask(False)
            return lambda store: store.compare_literal(pos, op, value, reverse=True)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            lpos = schema.index_of(left.name)
            rpos = schema.index_of(right.name)
            return lambda store: store.compare_columns(lpos, op, rpos)
        if isinstance(left, Literal) and isinstance(right, Literal):
            if left.value is None or right.value is None:
                return lambda store: store.full_mask(False)
            result = _OPS[op](left.value, right.value)
            return lambda store: store.full_mask(result)
    if isinstance(predicate, And):
        compiled = [compile_mask(part, schema) for part in predicate.parts]
        if not compiled:
            return lambda store: store.full_mask(True)
        if len(compiled) == 1:
            return compiled[0]

        def all_of(store):
            mask = compiled[0](store)
            for fn in compiled[1:]:
                mask = mask & fn(store)
            return mask

        return all_of
    if isinstance(predicate, Or):
        compiled = [compile_mask(part, schema) for part in predicate.parts]
        if not compiled:
            return lambda store: store.full_mask(False)
        if len(compiled) == 1:
            return compiled[0]

        def any_of(store):
            mask = compiled[0](store)
            for fn in compiled[1:]:
                mask = mask | fn(store)
            return mask

        return any_of
    if isinstance(predicate, Not):
        inner = compile_mask(predicate.inner, schema)
        return lambda store: ~inner(store)
    # Exotic predicate shapes fall back to the compiled row closure,
    # evaluated row-at-a-time into a mask.
    fn = compile_predicate(predicate, schema)
    return lambda store: store.rowwise_mask(fn)


def range_subsumes(general: Comparison, specific: Comparison) -> bool:
    """Whether ``specific`` is implied by ``general`` on the same column.

    Implements the paper's subsumption example: ``σ_{A<5}(E)`` can be derived
    from ``σ_{A<10}(E)``.  Only single-column vs literal comparisons are
    considered.
    """
    if not (isinstance(general.left, ColumnRef) and isinstance(general.right, Literal)):
        return False
    if not (isinstance(specific.left, ColumnRef) and isinstance(specific.right, Literal)):
        return False
    if general.left.canonical() != specific.left.canonical():
        return False
    g_op, g_val = general.op, general.right.value
    s_op, s_val = specific.op, specific.right.value
    try:
        if g_op in ("<", "<=") and s_op in ("<", "<="):
            return s_val <= g_val
        if g_op in (">", ">=") and s_op in (">", ">="):
            return s_val >= g_val
        if g_op in ("<", "<=", ">", ">=") and s_op == "==":
            return _OPS[g_op](s_val, g_val)
    except TypeError:
        return False
    return False
