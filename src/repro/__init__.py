"""repro — Materialized view selection and maintenance using multi-query optimization.

A from-scratch Python reproduction of Mistry, Roy, Ramamritham and Sudarshan,
"Materialized View Selection and Maintenance Using Multi-Query Optimization"
(SIGMOD 2001).  The package contains every substrate the paper relies on:

* ``repro.catalog``   — schemas, statistics, the system catalog
* ``repro.storage``   — bag relations, delta relations, indexes, buffer pool
* ``repro.algebra``   — the logical multiset relational algebra
* ``repro.engine``    — execution and differential (delta) propagation
* ``repro.optimizer`` — AND-OR DAG, cost model, Volcano-style plan search
* ``repro.mqo``       — multi-query optimization (RSSB00 greedy heuristic)
* ``repro.maintenance`` — the paper's contribution: optimal view-maintenance
  plans and greedy selection of extra temporary/permanent materializations
* ``repro.stream``    — streaming ingestion: delta coalescing and
  cost-based deferred refresh scheduling
* ``repro.serving``   — the concurrent serving tier: versioned snapshot
  reads, a background refresh daemon, per-view freshness SLOs
* ``repro.parallel``  — sharded parallel execution: key partitioning,
  per-shard worker processes with exact merges, and a capacity model
* ``repro.workloads`` — TPC-D-style schema, data, update and view generators
* ``repro.bench``     — experiment drivers reproducing the paper's figures
* ``repro.api``       — the public façade: one :class:`Warehouse` session
  object plus the fluent :class:`Q` view builder

The supported entry point is the façade::

    from repro import Q, Warehouse, WarehouseConfig

    wh = Warehouse(WarehouseConfig.profile("paper")).load(scale=0.1)
    wh.define_view(
        "revenue",
        Q.table("lineitem").join("orders").join("customer").join("nation")
         .group_by("n_name").sum("l_extendedprice", "revenue"),
    )
    result = wh.optimize()
    print(wh.explain("revenue"))
"""

from repro.api import (
    Q,
    FreshnessSLO,
    OptimizationResult,
    RefreshReport,
    ServedResult,
    ServingClosedError,
    ServingError,
    ServingSession,
    StaleReadError,
    Staleness,
    StreamClosedError,
    StreamPolicy,
    StreamSession,
    TickDecision,
    UpdateSpec,
    Warehouse,
    WarehouseConfig,
    WarehouseError,
    WarehouseRefreshReport,
    as_expression,
)

__version__ = "1.2.0"

__all__ = [
    # The public façade.
    "Warehouse",
    "WarehouseConfig",
    "WarehouseError",
    "WarehouseRefreshReport",
    "Q",
    "as_expression",
    "UpdateSpec",
    "RefreshReport",
    "OptimizationResult",
    # Streaming ingest (Warehouse.stream()).
    "StreamSession",
    "StreamPolicy",
    "TickDecision",
    "StreamClosedError",
    # Concurrent serving (Warehouse.serve()).
    "ServingSession",
    "ServedResult",
    "FreshnessSLO",
    "Staleness",
    "ServingError",
    "ServingClosedError",
    "StaleReadError",
    # The substrate packages (importable for tests and advanced use).
    "api",
    "catalog",
    "storage",
    "algebra",
    "engine",
    "optimizer",
    "mqo",
    "maintenance",
    "workloads",
    "bench",
    "stream",
    "serving",
    "parallel",
]
