"""repro — Materialized view selection and maintenance using multi-query optimization.

A from-scratch Python reproduction of Mistry, Roy, Ramamritham and Sudarshan,
"Materialized View Selection and Maintenance Using Multi-Query Optimization"
(SIGMOD 2001).  The package contains every substrate the paper relies on:

* ``repro.catalog``   — schemas, statistics, the system catalog
* ``repro.storage``   — bag relations, delta relations, indexes, buffer pool
* ``repro.algebra``   — the logical multiset relational algebra
* ``repro.engine``    — execution and differential (delta) propagation
* ``repro.optimizer`` — AND-OR DAG, cost model, Volcano-style plan search
* ``repro.mqo``       — multi-query optimization (RSSB00 greedy heuristic)
* ``repro.maintenance`` — the paper's contribution: optimal view-maintenance
  plans and greedy selection of extra temporary/permanent materializations
* ``repro.workloads`` — TPC-D-style schema, data, update and view generators
* ``repro.bench``     — experiment drivers reproducing the paper's figures
"""

__version__ = "1.0.0"

__all__ = [
    "catalog",
    "storage",
    "algebra",
    "engine",
    "optimizer",
    "mqo",
    "maintenance",
    "workloads",
    "bench",
]
