"""Estimation-quality benchmark: q-error per operator, plan quality, runtimes.

Every plan the optimizer picks is only as good as its cardinality estimates,
so this experiment measures the estimates themselves.  The fig3/fig5 query
sets run through the physical executor three times, each under a different
configuration of the unified :class:`~repro.catalog.estimator.CardinalityEstimator`:

* ``uniform`` — the System-R baseline: uniformity, independence and
  containment formulas only (histograms and feedback disabled);
* ``histogram`` — equi-depth histograms interpolated for predicate
  selectivities, no runtime feedback;
* ``histogram_feedback`` — histograms plus the runtime feedback loop: a
  first execution records actual output cardinalities per plan node, drifted
  plans are re-optimized against the observed truth, and the re-costed
  execution is what gets scored.

For every executed plan step that carries a logical expression the estimated
and actual output cardinalities are recorded; the per-mode summary reports
the median/mean/maximum q-error (``max(est/act, act/est)`` with +1
smoothing), the total optimizer plan cost, and the end-to-end wall-clock
runtime of the workload, so estimate quality and plan quality are tracked
side by side in ``results/BENCH_estimation.json``.
"""

from __future__ import annotations

import statistics as pystats
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.algebra.expressions import Aggregate, Expression, base_relations
from repro.algebra.predicates import gt, lt
from repro.algebra.expressions import Select
from repro.catalog.estimator import CardinalityEstimator, qerror
from repro.engine.physical import PhysicalExecutor, execute_plan
from repro.workloads import queries
from repro.workloads.datagen import small_database

#: Estimator configurations compared by the benchmark, in presentation order.
ESTIMATION_MODES = ("uniform", "histogram", "histogram_feedback")

#: Selection cut points on ``l_extendedprice`` used to enrich the pure-join
#: figure workloads.  The generated extended price is quantity × unit price —
#: a product of uniforms, so its distribution is decidedly non-uniform and
#: linear min/max interpolation (the System-R baseline) misestimates it,
#: which is exactly what histograms are for.
PRICE_CUTS = (5000.0, 25000.0, 60000.0)


def with_selective_variants(
    views: Mapping[str, Expression], cuts: Optional[Sequence[float]] = None
) -> Dict[str, Expression]:
    """The figure views plus range-selection variants over lineitem prices.

    Every non-aggregate view touching ``lineitem`` gains one σ variant per
    cut point (alternating < and >), so the workload exercises selectivity
    estimation on a skewed column on top of the foreign-key joins the paper's
    figures are made of.
    """
    enriched: Dict[str, Expression] = dict(views)
    for name, expression in views.items():
        if isinstance(expression, Aggregate):
            continue
        if "lineitem" not in base_relations(expression):
            continue
        for index, cut in enumerate(PRICE_CUTS if cuts is None else cuts):
            predicate = lt("l_extendedprice", cut) if index % 2 == 0 else gt("l_extendedprice", cut)
            op = "lt" if index % 2 == 0 else "gt"
            enriched[f"{name}__{op}{int(cut)}"] = Select(expression, predicate)
    return enriched


@dataclass
class OperatorEstimate:
    """Estimated vs actual output cardinality of one executed plan step."""

    view: str
    operator: str
    estimated: float
    actual: float

    @property
    def qerror(self) -> float:
        """Symmetric q-error of the estimate (1.0 = exact)."""
        return qerror(self.estimated, self.actual)


@dataclass
class EstimationModeResult:
    """All estimates and timings for one workload under one estimator mode."""

    mode: str
    estimates: List[OperatorEstimate] = field(default_factory=list)
    plan_cost: float = 0.0
    runtime_seconds: float = 0.0

    @property
    def qerrors(self) -> List[float]:
        """Per-operator q-errors of the *estimated* operators.

        Scans and reuse reads are excluded: their cardinalities come
        straight from the catalog's exact counts, so including them would
        only dilute the metric with guaranteed 1.0 entries.
        """
        return [e.qerror for e in self.estimates if e.operator not in ("scan", "reuse")]

    @property
    def median_qerror(self) -> float:
        """Median per-operator q-error (1.0 = every estimate exact)."""
        errors = self.qerrors
        return pystats.median(errors) if errors else 1.0

    @property
    def mean_qerror(self) -> float:
        """Mean per-operator q-error."""
        errors = self.qerrors
        return pystats.fmean(errors) if errors else 1.0

    @property
    def max_qerror(self) -> float:
        """Worst per-operator q-error."""
        errors = self.qerrors
        return max(errors) if errors else 1.0


@dataclass
class WorkloadEstimation:
    """One workload's results across every estimator mode."""

    workload: str
    views: int
    modes: Dict[str, EstimationModeResult] = field(default_factory=dict)


@dataclass
class EstimationQualityResult:
    """Full outcome of the estimation-quality experiment."""

    experiment: str
    scale_factor: float
    workloads: List[WorkloadEstimation] = field(default_factory=list)

    def workload(self, name: str) -> WorkloadEstimation:
        """Look up one workload's results by name."""
        for workload in self.workloads:
            if workload.workload == name:
                return workload
        raise KeyError(f"unknown workload {name!r}")

    def median_qerror(self, workload: str, mode: str) -> float:
        """Median q-error of one workload under one mode."""
        return self.workload(workload).modes[mode].median_qerror

    def runtime(self, workload: str, mode: str) -> float:
        """End-to-end runtime of one workload under one mode."""
        return self.workload(workload).modes[mode].runtime_seconds

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular rendering."""
        rows: List[Dict[str, object]] = []
        for workload in self.workloads:
            for mode in ESTIMATION_MODES:
                result = workload.modes.get(mode)
                if result is None:
                    continue
                rows.append(
                    {
                        "workload": workload.workload,
                        "mode": mode,
                        "operators": len(result.estimates),
                        "median_qerror": result.median_qerror,
                        "mean_qerror": result.mean_qerror,
                        "max_qerror": result.max_qerror,
                        "plan_cost": result.plan_cost,
                        "runtime_ms": result.runtime_seconds * 1000.0,
                    }
                )
        return rows


def _measure_mode(
    database, views: Mapping[str, object], mode: str, repetitions: int
) -> EstimationModeResult:
    """Run one workload under one estimator configuration and score it."""
    estimator = CardinalityEstimator(
        database.catalog,
        use_histograms=mode != "uniform",
        use_feedback=mode == "histogram_feedback",
    )
    executor = PhysicalExecutor(
        database,
        strict=True,
        estimator=estimator,
        feedback=mode == "histogram_feedback",
    )
    result = EstimationModeResult(mode=mode)

    if mode == "histogram_feedback":
        # Warm-up pass: execute once so actual cardinalities are observed;
        # plans whose estimates drifted re-optimize on their next use.
        for expression in views.values():
            executor.evaluate(expression)

    for name, expression in views.items():
        plan, schema = executor.plan(expression)
        result.plan_cost += plan.total_cost()

        def collect(node, bag, _view=name):
            result.estimates.append(
                OperatorEstimate(
                    view=_view,
                    operator=node.algorithm or node.description,
                    estimated=node.cardinality,
                    actual=float(len(bag)),
                )
            )

        execute_plan(plan, database, strict=True, output_schema=schema, observer=collect)

    def run_all() -> None:
        for expression in views.values():
            executor.evaluate(expression)

    best = float("inf")
    for _ in range(max(1, repetitions)):
        started = time.perf_counter()
        run_all()
        best = min(best, time.perf_counter() - started)
    result.runtime_seconds = best
    return result


def run_estimation_quality(
    scale_factor: float = 0.004,
    repetitions: int = 3,
    workloads: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> EstimationQualityResult:
    """Score estimation quality on the fig3/fig5 query sets.

    Every mode runs against the same measured database; the feedback mode
    additionally gets one warm-up execution per view so its scored pass
    reflects re-costed plans.
    """
    if workloads is None:
        workloads = {
            "fig3": with_selective_variants(
                {**queries.standalone_join_view(), **queries.standalone_agg_view()}
            ),
            "fig5": with_selective_variants(queries.large_view_set()),
        }
    database = small_database(scale_factor=scale_factor)
    result = EstimationQualityResult(experiment="estimation", scale_factor=scale_factor)
    for name, views in workloads.items():
        workload = WorkloadEstimation(workload=name, views=len(views))
        for mode in ESTIMATION_MODES:
            workload.modes[mode] = _measure_mode(database, views, mode, repetitions)
        result.workloads.append(workload)
    return result
