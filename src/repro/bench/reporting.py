"""Rendering of experiment results: text tables and machine-readable JSON.

The paper reports its results as line plots; this reproduction records the
same series as text tables (one row per update percentage) so they can be
diffed, asserted on in benchmarks, and pasted into ``EXPERIMENTS.md``.  Each
result also serializes to a JSON payload (written as ``BENCH_<name>.json``
under ``results/`` by the benchmark suite) so the performance trajectory can
be tracked across changes by tooling instead of eyeballs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.bench.harness import FigurePoint, FigureSeries


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    widths = {col: len(col) for col in columns}
    rendered: List[Dict[str, str]] = []
    for row in rows:
        formatted = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            formatted[col] = text
            widths[col] = max(widths[col], len(text))
        rendered.append(formatted)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(row[col].rjust(widths[col]) for col in columns) for row in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(series: FigureSeries) -> str:
    """Render one figure's sweep as a table, mirroring the paper's plot."""
    rows = series.as_rows()
    table = format_table(rows, ["update_pct", "no_greedy", "greedy", "ratio", "selections"])
    return f"{series.experiment}: {series.description}\n{table}"


def format_comparison(label: str, values: Mapping[str, float]) -> str:
    """Render a simple name→value summary block."""
    lines = [label]
    for key, value in values.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.3f}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)


# -------------------------------------------------------------- JSON payloads

def series_payload(series: FigureSeries) -> Dict[str, Any]:
    """A JSON-serializable payload for one figure sweep.

    Records every :class:`FigurePoint` field (plan costs, selections,
    optimization timings) so cross-change comparisons do not depend on the
    text rendering.
    """
    return {
        "experiment": series.experiment,
        "description": series.description,
        "points": [_point_payload(point) for point in series.points],
        "max_benefit_ratio": series.max_ratio(),
    }


def _point_payload(point: FigurePoint) -> Dict[str, Any]:
    return {
        "update_percentage": point.update_percentage,
        "no_greedy_cost": point.no_greedy_cost,
        "greedy_cost": point.greedy_cost,
        "benefit_ratio": point.benefit_ratio,
        "greedy_selections": point.greedy_selections,
        "greedy_indexes": point.greedy_indexes,
        "greedy_permanent": point.greedy_permanent,
        "greedy_temporary": point.greedy_temporary,
        "optimization_seconds": point.optimization_seconds,
    }


def comparison_payload(label: str, values: Mapping[str, Any]) -> Dict[str, Any]:
    """A JSON-serializable payload for a name→value summary block."""
    return {"label": label, "values": dict(values)}


def execution_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for a physical-vs-interpreter comparison.

    Accepts an :class:`repro.bench.experiments.ExecutionComparisonResult`
    (duck-typed, to keep this module free of experiment imports).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        "total_logical_seconds": result.total_logical_seconds,
        "total_physical_seconds": result.total_physical_seconds,
        "overall_speedup": result.overall_speedup,
        # Physical timings are execution-only: planning is a one-time,
        # cached cost, reported per point as planning_seconds.
        "plan_cache_warmed": True,
        "points": [
            {
                "view": p.view,
                "rows": p.rows,
                "plan_cost": p.plan_cost,
                "logical_seconds": p.logical_seconds,
                "physical_seconds": p.physical_seconds,
                "planning_seconds": p.planning_seconds,
                "speedup": p.speedup,
            }
            for p in result.points
        ],
    }


def refresh_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for a refresh-path comparison.

    Accepts an :class:`repro.bench.experiments.RefreshComparisonResult`
    (duck-typed, like :func:`execution_payload`).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        "update_percentage": result.update_percentage,
        "total_interpreted_seconds": result.total_interpreted_seconds,
        "total_vectorized_seconds": result.total_vectorized_seconds,
        "overall_speedup": result.overall_speedup,
        "all_verified": result.all_verified,
        "points": [
            {
                "workload": p.workload,
                "views": p.views,
                "rounds": p.rounds,
                "changes": p.changes,
                "interpreted_seconds": p.interpreted_seconds,
                "vectorized_seconds": p.vectorized_seconds,
                "speedup": p.speedup,
                "verified": p.verified,
            }
            for p in result.points
        ],
    }


def estimation_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for the estimation-quality experiment.

    Accepts an :class:`repro.bench.estimation.EstimationQualityResult`
    (duck-typed, like :func:`execution_payload`).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        "workloads": [
            {
                "workload": workload.workload,
                "views": workload.views,
                "modes": {
                    mode: {
                        "operators": len(mres.estimates),
                        "estimated_operators": len(mres.qerrors),
                        "median_qerror": mres.median_qerror,
                        "mean_qerror": mres.mean_qerror,
                        "max_qerror": mres.max_qerror,
                        "plan_cost": mres.plan_cost,
                        "runtime_seconds": mres.runtime_seconds,
                    }
                    for mode, mres in workload.modes.items()
                },
            }
            for workload in result.workloads
        ],
    }


def format_estimation(result) -> str:
    """Text table for the estimation-quality experiment."""
    table = format_table(
        result.as_rows(),
        [
            "workload",
            "mode",
            "operators",
            "median_qerror",
            "mean_qerror",
            "max_qerror",
            "plan_cost",
            "runtime_ms",
        ],
    )
    return (
        f"{result.experiment}: histogram + runtime-feedback estimation vs the "
        f"System-R uniformity baseline (scale factor {result.scale_factor})\n{table}"
    )


def format_refresh_comparison(result) -> str:
    """Text table for a refresh-path comparison."""
    table = format_table(
        result.as_rows(),
        [
            "workload",
            "views",
            "rounds",
            "changes",
            "interpreted_ms",
            "vectorized_ms",
            "speedup",
            "verified",
        ],
    )
    summary = (
        f"total: interpreted={result.total_interpreted_seconds * 1000.0:.1f}ms "
        f"vectorized={result.total_vectorized_seconds * 1000.0:.1f}ms "
        f"speedup={result.overall_speedup:.2f}x verified={result.all_verified}"
    )
    return (
        f"{result.experiment}: vectorized differential engine vs interpreted "
        f"differentials (scale factor {result.scale_factor}, "
        f"{result.update_percentage:.0%} updates)\n{table}\n{summary}"
    )


def format_execution_comparison(result) -> str:
    """Text table for a physical-vs-interpreter comparison."""
    table = format_table(
        result.as_rows(),
        ["view", "rows", "plan_cost", "logical_ms", "physical_ms", "speedup"],
    )
    summary = (
        f"total: logical={result.total_logical_seconds * 1000.0:.1f}ms "
        f"physical={result.total_physical_seconds * 1000.0:.1f}ms "
        f"speedup={result.overall_speedup:.2f}x"
    )
    return (
        f"{result.experiment}: vectorized physical plans vs row-at-a-time "
        f"interpreter (scale factor {result.scale_factor})\n{table}\n{summary}"
    )


def render_json(payload: Mapping[str, Any]) -> str:
    """Stable JSON rendering for ``BENCH_*.json`` files."""
    return json.dumps(payload, indent=2, sort_keys=True)
