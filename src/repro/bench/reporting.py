"""Rendering of experiment results: text tables and machine-readable JSON.

The paper reports its results as line plots; this reproduction records the
same series as text tables (one row per update percentage) so they can be
diffed, asserted on in benchmarks, and pasted into ``EXPERIMENTS.md``.  Each
result also serializes to a JSON payload (written as ``BENCH_<name>.json``
under ``results/`` by the benchmark suite) so the performance trajectory can
be tracked across changes by tooling instead of eyeballs.

**Determinism contract.**  Everything written to ``results/*.txt`` is a pure
function of the code and the fixed seeds — plan costs, cardinalities, row
counts, selections — so a PR that does not change behavior produces a
byte-identical file.  Wall-clock measurements (seconds, milliseconds, and
the speedups derived from them) are machine noise by nature; they are
excluded from the text tables and isolated in ``"timing"`` sub-objects of
the JSON payloads (one per payload/point), so a noisy re-run churns exactly
those sub-objects and nothing else.  :func:`split_timing` is the single
classifier both sides use.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.bench.harness import FigurePoint, FigureSeries

#: Key shapes that denote wall-clock measurements (and their derivatives).
_TIMING_SUFFIXES = ("_seconds", "_ms", "_speedup")


def is_timing_key(key: str) -> bool:
    """Whether a result field holds a wall-clock measurement (or derivative)."""
    return key.endswith(_TIMING_SUFFIXES) or key in ("speedup", "seconds", "ms")


def split_timing(values: Mapping[str, Any]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Partition a flat result mapping into (deterministic, timing) halves."""
    deterministic: Dict[str, Any] = {}
    timing: Dict[str, Any] = {}
    for key, value in values.items():
        (timing if is_timing_key(key) else deterministic)[key] = value
    return deterministic, timing


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    widths = {col: len(col) for col in columns}
    rendered: List[Dict[str, str]] = []
    for row in rows:
        formatted = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            formatted[col] = text
            widths[col] = max(widths[col], len(text))
        rendered.append(formatted)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(row[col].rjust(widths[col]) for col in columns) for row in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(series: FigureSeries) -> str:
    """Render one figure's sweep as a table, mirroring the paper's plot."""
    rows = series.as_rows()
    table = format_table(rows, ["update_pct", "no_greedy", "greedy", "ratio", "selections"])
    return f"{series.experiment}: {series.description}\n{table}"


def format_comparison(label: str, values: Mapping[str, float]) -> str:
    """Render a simple name→value summary block.

    Wall-clock fields (see :func:`is_timing_key`) are omitted — they live in
    the JSON payload's ``timing`` sub-object — so the text file stays
    deterministic across re-runs.
    """
    deterministic, timing = split_timing(values)
    lines = [label]
    for key, value in deterministic.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.3f}")
        else:
            lines.append(f"  {key}: {value}")
    if timing:
        lines.append(
            f"  (wall-clock fields — {', '.join(timing)} — recorded in the "
            f"BENCH json only)"
        )
    return "\n".join(lines)


# -------------------------------------------------------------- JSON payloads

def series_payload(series: FigureSeries) -> Dict[str, Any]:
    """A JSON-serializable payload for one figure sweep.

    Records every :class:`FigurePoint` field (plan costs, selections,
    optimization timings) so cross-change comparisons do not depend on the
    text rendering.
    """
    return {
        "experiment": series.experiment,
        "description": series.description,
        "points": [_point_payload(point) for point in series.points],
        "max_benefit_ratio": series.max_ratio(),
    }


def _point_payload(point: FigurePoint) -> Dict[str, Any]:
    return {
        "update_percentage": point.update_percentage,
        "no_greedy_cost": point.no_greedy_cost,
        "greedy_cost": point.greedy_cost,
        "benefit_ratio": point.benefit_ratio,
        "greedy_selections": point.greedy_selections,
        "greedy_indexes": point.greedy_indexes,
        "greedy_permanent": point.greedy_permanent,
        "greedy_temporary": point.greedy_temporary,
        "timing": {"optimization_seconds": point.optimization_seconds},
    }


def comparison_payload(label: str, values: Mapping[str, Any]) -> Dict[str, Any]:
    """A JSON-serializable payload for a name→value summary block.

    Wall-clock fields are split out into the ``timing`` sub-object per the
    module's determinism contract.
    """
    deterministic, timing = split_timing(values)
    payload: Dict[str, Any] = {"label": label, "values": deterministic}
    if timing:
        payload["timing"] = timing
    return payload


def execution_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for a physical-vs-interpreter comparison.

    Accepts an :class:`repro.bench.experiments.ExecutionComparisonResult`
    (duck-typed, to keep this module free of experiment imports).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        # Physical timings are execution-only: planning is a one-time,
        # cached cost, reported per point under timing.planning_seconds.
        "plan_cache_warmed": True,
        "points": [
            {
                "view": p.view,
                "rows": p.rows,
                "plan_cost": p.plan_cost,
                "timing": {
                    "logical_seconds": p.logical_seconds,
                    "physical_seconds": p.physical_seconds,
                    "planning_seconds": p.planning_seconds,
                    "speedup": p.speedup,
                },
            }
            for p in result.points
        ],
        "timing": {
            "total_logical_seconds": result.total_logical_seconds,
            "total_physical_seconds": result.total_physical_seconds,
            "overall_speedup": result.overall_speedup,
        },
    }


def refresh_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for a refresh-path comparison.

    Accepts an :class:`repro.bench.experiments.RefreshComparisonResult`
    (duck-typed, like :func:`execution_payload`).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        "update_percentage": result.update_percentage,
        "all_verified": result.all_verified,
        "points": [
            {
                "workload": p.workload,
                "views": p.views,
                "rounds": p.rounds,
                "changes": p.changes,
                "verified": p.verified,
                "timing": {
                    "interpreted_seconds": p.interpreted_seconds,
                    "vectorized_seconds": p.vectorized_seconds,
                    "speedup": p.speedup,
                },
            }
            for p in result.points
        ],
        "timing": {
            "total_interpreted_seconds": result.total_interpreted_seconds,
            "total_vectorized_seconds": result.total_vectorized_seconds,
            "overall_speedup": result.overall_speedup,
        },
    }


def estimation_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for the estimation-quality experiment.

    Accepts an :class:`repro.bench.estimation.EstimationQualityResult`
    (duck-typed, like :func:`execution_payload`).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        "workloads": [
            {
                "workload": workload.workload,
                "views": workload.views,
                "modes": {
                    mode: {
                        "operators": len(mres.estimates),
                        "estimated_operators": len(mres.qerrors),
                        "median_qerror": mres.median_qerror,
                        "mean_qerror": mres.mean_qerror,
                        "max_qerror": mres.max_qerror,
                        "plan_cost": mres.plan_cost,
                        "timing": {"runtime_seconds": mres.runtime_seconds},
                    }
                    for mode, mres in workload.modes.items()
                },
            }
            for workload in result.workloads
        ],
    }


def _timing_note(experiment: str) -> str:
    return f"(wall-clock timings and speedups: results/BENCH_{experiment}.json)"


def format_estimation(result) -> str:
    """Text table for the estimation-quality experiment (deterministic only)."""
    table = format_table(
        result.as_rows(),
        [
            "workload",
            "mode",
            "operators",
            "median_qerror",
            "mean_qerror",
            "max_qerror",
            "plan_cost",
        ],
    )
    return (
        f"{result.experiment}: histogram + runtime-feedback estimation vs the "
        f"System-R uniformity baseline (scale factor {result.scale_factor})\n"
        f"{table}\n{_timing_note(result.experiment)}"
    )


def format_refresh_comparison(result) -> str:
    """Text table for a refresh-path comparison (deterministic only)."""
    table = format_table(
        result.as_rows(),
        ["workload", "views", "rounds", "changes", "verified"],
    )
    summary = f"verified={result.all_verified} {_timing_note(result.experiment)}"
    return (
        f"{result.experiment}: vectorized differential engine vs interpreted "
        f"differentials (scale factor {result.scale_factor}, "
        f"{result.update_percentage:.0%} updates)\n{table}\n{summary}"
    )


def format_execution_comparison(result) -> str:
    """Text table for a physical-vs-interpreter comparison (deterministic only)."""
    table = format_table(
        result.as_rows(),
        ["view", "rows", "plan_cost"],
    )
    return (
        f"{result.experiment}: vectorized physical plans vs row-at-a-time "
        f"interpreter (scale factor {result.scale_factor})\n{table}\n"
        f"{_timing_note(result.experiment)}"
    )


def stream_payload(result) -> Dict[str, Any]:
    """A JSON-serializable payload for the stream-policy comparison.

    Accepts a :class:`repro.bench.experiments.StreamComparisonResult`
    (duck-typed, like :func:`execution_payload`).
    """
    return {
        "experiment": result.experiment,
        "scale_factor": result.scale_factor,
        "update_percentage": result.update_percentage,
        "rounds": result.rounds,
        "overlap": result.overlap,
        "views": result.views,
        "views_identical": result.views_identical,
        "all_verified": result.all_verified,
        "rows_saved": result.rows_saved,
        "policies": [
            {
                "policy": o.policy,
                "flushes": o.flushes,
                "rounds_refreshed": o.rounds_refreshed,
                "skipped_flushes": o.skipped_flushes,
                "base_rows_applied": o.base_rows_applied,
                "view_rows_changed": o.view_rows_changed,
                "view_recomputations": o.view_recomputations,
                "annihilated_rows": o.annihilated_rows,
                "rows_propagated": o.rows_propagated,
                "verified": o.verified,
                "timing": {"refresh_seconds": o.refresh_seconds},
            }
            for o in result.outcomes.values()
        ],
        "timing": {"speedup": result.speedup},
    }


def format_stream_comparison(result) -> str:
    """Text table for the stream-policy comparison (deterministic only)."""
    table = format_table(
        result.as_rows(),
        [
            "policy",
            "flushes",
            "rounds_refreshed",
            "base_rows",
            "view_rows",
            "recomputes",
            "annihilated",
            "verified",
        ],
    )
    summary = (
        f"rows saved by coalescing+deferral: {result.rows_saved} "
        f"(views identical: {result.views_identical}, verified: "
        f"{result.all_verified}) {_timing_note(result.experiment)}"
    )
    return (
        f"{result.experiment}: eager per-round refresh vs coalesced deferred "
        f"refresh (scale factor {result.scale_factor}, "
        f"{result.update_percentage:.0%} updates x {result.rounds} rounds, "
        f"{result.overlap:.0%} insert/delete overlap)\n{table}\n{summary}"
    )


def render_json(payload: Mapping[str, Any]) -> str:
    """Stable JSON rendering for ``BENCH_*.json`` files."""
    return json.dumps(payload, indent=2, sort_keys=True)
