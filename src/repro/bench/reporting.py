"""Plain-text rendering of experiment results.

The paper reports its results as line plots; this reproduction records the
same series as text tables (one row per update percentage) so they can be
diffed, asserted on in benchmarks, and pasted into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.bench.harness import FigureSeries


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    widths = {col: len(col) for col in columns}
    rendered: List[Dict[str, str]] = []
    for row in rows:
        formatted = {}
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            formatted[col] = text
            widths[col] = max(widths[col], len(text))
        rendered.append(formatted)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(row[col].rjust(widths[col]) for col in columns) for row in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(series: FigureSeries) -> str:
    """Render one figure's sweep as a table, mirroring the paper's plot."""
    rows = series.as_rows()
    table = format_table(rows, ["update_pct", "no_greedy", "greedy", "ratio", "selections"])
    return f"{series.experiment}: {series.description}\n{table}"


def format_comparison(label: str, values: Mapping[str, float]) -> str:
    """Render a simple name→value summary block."""
    lines = [label]
    for key, value in values.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.3f}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
