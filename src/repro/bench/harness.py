"""Generic experiment harness.

Every figure in the paper plots *plan cost* (estimated seconds) against
*update percentage*, for the two algorithms ``NoGreedy`` and ``Greedy``.
``run_figure_sweep`` produces exactly that series for any workload; the
per-figure wrappers in :mod:`repro.bench.experiments` only choose the
workload, the catalog configuration and the sweep points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.algebra.expressions import Expression
from repro.api import Warehouse, WarehouseConfig
from repro.catalog.catalog import Catalog
from repro.maintenance.optimizer import ViewMaintenanceOptimizer
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.cost_model import CostModel, CostParameters
from repro.storage.buffer import BufferPool


@dataclass
class ExperimentConfig:
    """Configuration shared by a sweep: catalog, cost model, optimizer flags."""

    catalog: Catalog
    buffer_blocks: int = 8000
    block_size: int = 4096
    include_differential_candidates: bool = False
    include_index_candidates: bool = True
    use_monotonicity: bool = True
    insert_to_delete_ratio: float = 2.0

    def warehouse_config(self) -> WarehouseConfig:
        """This configuration expressed as a :class:`WarehouseConfig`."""
        return WarehouseConfig(
            buffer_pages=self.buffer_blocks,
            block_size=self.block_size,
            include_differential_candidates=self.include_differential_candidates,
            include_index_candidates=self.include_index_candidates,
            use_monotonicity=self.use_monotonicity,
            insert_to_delete_ratio=self.insert_to_delete_ratio,
        )

    def warehouse(self) -> Warehouse:
        """A :class:`Warehouse` session over this configuration's catalog."""
        return Warehouse(self.warehouse_config()).load(catalog=self.catalog)

    def cost_model(self) -> CostModel:
        """The cost model implied by this configuration."""
        return CostModel(CostParameters(), BufferPool(self.buffer_blocks, self.block_size))

    def optimizer(self) -> ViewMaintenanceOptimizer:
        """Deprecated shim: the warehouse session's underlying optimizer.

        Callers should go through :meth:`warehouse` — kept for one release so
        existing scripts keep working.
        """
        return self.warehouse().optimizer


@dataclass
class FigurePoint:
    """One x-axis point of a figure: costs of both algorithms at one update %."""

    update_percentage: float
    no_greedy_cost: float
    greedy_cost: float
    greedy_selections: int
    greedy_indexes: int
    greedy_permanent: int
    greedy_temporary: int
    optimization_seconds: float

    @property
    def benefit_ratio(self) -> float:
        """NoGreedy cost divided by Greedy cost (≥ 1 when Greedy wins)."""
        if self.greedy_cost <= 0:
            return float("inf")
        return self.no_greedy_cost / self.greedy_cost


@dataclass
class FigureSeries:
    """A full figure: the swept points plus identifying metadata."""

    experiment: str
    description: str
    points: List[FigurePoint] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for tabular rendering."""
        return [
            {
                "update_pct": point.update_percentage * 100.0,
                "no_greedy": point.no_greedy_cost,
                "greedy": point.greedy_cost,
                "ratio": point.benefit_ratio,
                "selections": point.greedy_selections,
            }
            for point in self.points
        ]

    def ratios(self) -> List[float]:
        """Benefit ratios in sweep order."""
        return [point.benefit_ratio for point in self.points]

    def max_ratio(self) -> float:
        """The largest benefit ratio observed (usually at the lowest update %)."""
        return max(self.ratios()) if self.points else 0.0


def run_figure_sweep(
    experiment: str,
    description: str,
    views: Mapping[str, Expression],
    config: ExperimentConfig,
    update_percentages: Sequence[float],
    max_selections: Optional[int] = None,
) -> FigureSeries:
    """Run Greedy and NoGreedy across ``update_percentages`` for one workload."""
    series = FigureSeries(experiment=experiment, description=description)
    warehouse = config.warehouse().define_views(views)
    for percentage in update_percentages:
        spec = UpdateSpec.uniform(percentage, insert_to_delete_ratio=config.insert_to_delete_ratio)
        no_greedy = warehouse.optimize(spec, greedy=False)
        started = time.perf_counter()
        greedy = warehouse.optimize(spec, greedy=True, max_selections=max_selections)
        elapsed = time.perf_counter() - started
        series.points.append(
            FigurePoint(
                update_percentage=percentage,
                no_greedy_cost=no_greedy.total_cost,
                greedy_cost=greedy.total_cost,
                greedy_selections=len(greedy.selection.selections) if greedy.selection else 0,
                greedy_indexes=len(greedy.indexes),
                greedy_permanent=len(greedy.permanent_results),
                greedy_temporary=len(greedy.temporary_results),
                optimization_seconds=elapsed,
            )
        )
    return series
