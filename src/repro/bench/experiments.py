"""One driver per paper figure/table (§7.2).

Each ``run_*`` function reproduces one experiment of the performance study
and returns a structured result; the pytest benchmarks under ``benchmarks/``
call these drivers, assert the qualitative claims the paper makes about
them, and print the regenerated rows/series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.expressions import base_relations
from repro.bench.harness import ExperimentConfig, FigureSeries, run_figure_sweep
from repro.engine.executor import evaluate
from repro.engine.physical import PhysicalExecutor
from repro.maintenance.maintainer import ViewRefresher
from repro.maintenance.update_spec import UpdateSpec
from repro.mqo.greedy import MultiQueryOptimizer, MqoResult
from repro.storage.delta import DeltaStore
from repro.workloads import queries, tpcd
from repro.workloads.datagen import small_database
from repro.workloads.updategen import uniform_deltas

#: The x axis of every figure: update percentages from 1% to 80% (paper §7.1).
DEFAULT_UPDATE_PERCENTAGES: Tuple[float, ...] = (0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80)

#: Scale factor of the paper's TPC-D database (≈ 100 MB).
PAPER_SCALE_FACTOR = 0.1


def _config(
    scale_factor: float = PAPER_SCALE_FACTOR,
    with_pk_indexes: bool = True,
    buffer_blocks: int = 8000,
) -> ExperimentConfig:
    return ExperimentConfig(
        catalog=tpcd.tpcd_catalog(scale_factor=scale_factor, with_pk_indexes=with_pk_indexes),
        buffer_blocks=buffer_blocks,
    )


# ------------------------------------------------------------------- figure 3

def run_fig3a(
    update_percentages: Sequence[float] = DEFAULT_UPDATE_PERCENTAGES,
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> FigureSeries:
    """Figure 3(a): maintaining a stand-alone 4-relation join view."""
    return run_figure_sweep(
        "fig3a",
        "stand-alone view, join of 4 relations, no aggregation",
        queries.standalone_join_view(),
        _config(scale_factor),
        update_percentages,
    )


def run_fig3b(
    update_percentages: Sequence[float] = DEFAULT_UPDATE_PERCENTAGES,
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> FigureSeries:
    """Figure 3(b): the same join with aggregation on top."""
    return run_figure_sweep(
        "fig3b",
        "stand-alone view, aggregation over a join of 4 relations",
        queries.standalone_agg_view(),
        _config(scale_factor),
        update_percentages,
    )


# ------------------------------------------------------------------- figure 4

def run_fig4a(
    update_percentages: Sequence[float] = DEFAULT_UPDATE_PERCENTAGES,
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> FigureSeries:
    """Figure 4(a): a set of five related join views (no aggregation)."""
    return run_figure_sweep(
        "fig4a",
        "set of 5 join views sharing sub-expressions",
        queries.view_set_plain(),
        _config(scale_factor),
        update_percentages,
    )


def run_fig4b(
    update_percentages: Sequence[float] = DEFAULT_UPDATE_PERCENTAGES,
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> FigureSeries:
    """Figure 4(b): a set of five aggregate views over shared joins."""
    return run_figure_sweep(
        "fig4b",
        "set of 5 aggregate views sharing sub-expressions",
        queries.view_set_aggregate(),
        _config(scale_factor),
        update_percentages,
    )


# ------------------------------------------------------------------- figure 5

def run_fig5a(
    update_percentages: Sequence[float] = DEFAULT_UPDATE_PERCENTAGES,
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> FigureSeries:
    """Figure 5(a): ten 3–4-relation join views, primary-key indexes present."""
    return run_figure_sweep(
        "fig5a",
        "10 views (joins of 3-4 relations), PK indexes predefined",
        queries.large_view_set(),
        _config(scale_factor, with_pk_indexes=True),
        update_percentages,
    )


def run_fig5b(
    update_percentages: Sequence[float] = DEFAULT_UPDATE_PERCENTAGES,
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> FigureSeries:
    """Figure 5(b): the same ten views with no indexes initially present."""
    return run_figure_sweep(
        "fig5b",
        "10 views (joins of 3-4 relations), no indexes initially",
        queries.large_view_set(),
        _config(scale_factor, with_pk_indexes=False),
        update_percentages,
    )


# --------------------------------------------------------- cost of optimization

@dataclass
class OptimizationCostResult:
    """§7.2 "Cost of Optimization" — time taken by Greedy vs the savings."""

    view_count: int
    optimization_seconds: float
    no_greedy_cost: float
    greedy_cost: float

    @property
    def savings(self) -> float:
        """Plan-cost savings of one refresh obtained by Greedy."""
        return self.no_greedy_cost - self.greedy_cost


def run_optimization_cost(
    update_percentage: float = 0.10, scale_factor: float = PAPER_SCALE_FACTOR
) -> OptimizationCostResult:
    """Measure Greedy's optimization time for the 10-view workload of Figure 5."""
    config = _config(scale_factor)
    optimizer = config.optimizer()
    views = queries.large_view_set()
    spec = UpdateSpec.uniform(update_percentage)
    no_greedy = optimizer.no_greedy(views, spec)
    started = time.perf_counter()
    greedy = optimizer.optimize(views, spec)
    elapsed = time.perf_counter() - started
    return OptimizationCostResult(
        view_count=len(views),
        optimization_seconds=elapsed,
        no_greedy_cost=no_greedy.total_cost,
        greedy_cost=greedy.total_cost,
    )


# --------------------------------------------- temporary vs permanent statistics

@dataclass
class TempPermCounts:
    """§7.2 "Temporary vs. Permanent Materialization" counts."""

    temporary: int = 0
    permanent: int = 0

    @property
    def total(self) -> int:
        """Total materialized results classified."""
        return self.temporary + self.permanent

    def add(self, other: "TempPermCounts") -> None:
        """Accumulate counts."""
        self.temporary += other.temporary
        self.permanent += other.permanent


@dataclass
class TempPermResult:
    """Counts overall and split into the paper's low/high update-rate buckets."""

    overall: TempPermCounts = field(default_factory=TempPermCounts)
    low_update: TempPermCounts = field(default_factory=TempPermCounts)
    high_update: TempPermCounts = field(default_factory=TempPermCounts)
    by_percentage: Dict[float, TempPermCounts] = field(default_factory=dict)


def run_temp_vs_perm(
    update_percentages: Sequence[float] = (0.01, 0.05, 0.10, 0.20, 0.50, 0.70, 0.90),
    scale_factor: float = PAPER_SCALE_FACTOR,
) -> TempPermResult:
    """Classify every materialized result by its cheaper refresh strategy.

    Mirrors the paper's statistic: across the workloads of the study and the
    swept update percentages, count how many materialized results are cheaper
    to recompute (→ temporary materialization) versus cheaper to maintain
    incrementally (→ permanent materialization).
    """
    workloads = [
        queries.standalone_join_view(),
        queries.standalone_agg_view(),
        queries.view_set_plain(),
        queries.view_set_aggregate(),
        queries.large_view_set(),
    ]
    result = TempPermResult()
    config = _config(scale_factor)
    optimizer = config.optimizer()
    for percentage in update_percentages:
        bucket = TempPermCounts()
        spec = UpdateSpec.uniform(percentage)
        for views in workloads:
            outcome = optimizer.optimize(views, spec)
            engine = outcome.engine
            counted = set()
            for key in engine.materialized:
                if not key.is_full or key.node_id in counted:
                    continue
                counted.add(key.node_id)
                if engine.prefers_recomputation(key.node_id):
                    bucket.temporary += 1
                else:
                    bucket.permanent += 1
        result.by_percentage[percentage] = bucket
        result.overall.add(bucket)
        if percentage <= 0.05:
            result.low_update.add(bucket)
        if percentage >= 0.50:
            result.high_update.add(bucket)
    return result


# -------------------------------------------------------------- buffer size effect

@dataclass
class BufferSizeResult:
    """§7.2 "Effect of Buffer Size" — the same sweep at two buffer sizes."""

    large_buffer: FigureSeries
    small_buffer: FigureSeries

    def ratio_at_lowest_update(self) -> Tuple[float, float]:
        """Benefit ratios at the smallest update percentage (large, small buffer)."""
        return (
            self.large_buffer.points[0].benefit_ratio,
            self.small_buffer.points[0].benefit_ratio,
        )


def run_buffer_size_effect(
    update_percentages: Sequence[float] = (0.01, 0.10, 0.40),
    scale_factor: float = PAPER_SCALE_FACTOR,
    large_blocks: int = 8000,
    small_blocks: int = 1000,
) -> BufferSizeResult:
    """Re-run the Figure 4(a) workload with a small (1000-block) buffer pool."""
    views = queries.view_set_plain()
    large = run_figure_sweep(
        "bufsize-large",
        f"5 join views, buffer = {large_blocks} blocks",
        views,
        _config(scale_factor, buffer_blocks=large_blocks),
        update_percentages,
    )
    small = run_figure_sweep(
        "bufsize-small",
        f"5 join views, buffer = {small_blocks} blocks",
        views,
        _config(scale_factor, buffer_blocks=small_blocks),
        update_percentages,
    )
    return BufferSizeResult(large_buffer=large, small_buffer=small)


# ------------------------------------------- physical executor vs interpreter

@dataclass
class ExecutionComparisonPoint:
    """One view's execution timings under both execution paths."""

    view: str
    rows: int
    plan_cost: float
    logical_seconds: float
    physical_seconds: float
    #: One-time DAG-build + Volcano-search time, paid once per expression
    #: and amortized out of ``physical_seconds`` by the plan cache.
    planning_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Interpreter time divided by physical-pipeline time (> 1 = faster)."""
        if self.physical_seconds <= 0:
            return float("inf")
        return self.logical_seconds / self.physical_seconds


@dataclass
class ExecutionComparisonResult:
    """Vectorized physical execution vs the row-at-a-time interpreter."""

    experiment: str
    scale_factor: float
    points: List[ExecutionComparisonPoint] = field(default_factory=list)

    @property
    def total_logical_seconds(self) -> float:
        """Total interpreter time across the query set."""
        return sum(p.logical_seconds for p in self.points)

    @property
    def total_physical_seconds(self) -> float:
        """Total physical-pipeline time across the query set."""
        return sum(p.physical_seconds for p in self.points)

    @property
    def overall_speedup(self) -> float:
        """Workload-level speedup of the physical path."""
        if self.total_physical_seconds <= 0:
            return float("inf")
        return self.total_logical_seconds / self.total_physical_seconds

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular rendering."""
        return [
            {
                "view": p.view,
                "rows": p.rows,
                "plan_cost": p.plan_cost,
                "logical_ms": p.logical_seconds * 1000.0,
                "physical_ms": p.physical_seconds * 1000.0,
                "speedup": p.speedup,
            }
            for p in self.points
        ]


def run_physical_vs_interpreter(
    scale_factor: float = 0.01,
    repetitions: int = 3,
    views: Optional[Mapping[str, object]] = None,
) -> ExecutionComparisonResult:
    """Execute the fig3/fig5 query sets through both execution paths.

    Every view is first checked for bag-equality between the two paths (the
    physical executor runs strictly — no silent interpreter fallback), then
    timed; the best of ``repetitions`` runs is kept for each path.

    The physical timings measure *execution* with a warm plan cache:
    planning (DAG build + Volcano search) is a once-per-expression cost in
    the paper's setting — maintenance plans are chosen once per
    configuration, then executed refresh after refresh — so it is amortized
    out of ``physical_seconds`` and reported separately as
    ``planning_seconds``.
    """
    if views is None:
        combined: Dict[str, object] = {}
        combined.update(queries.standalone_join_view())
        combined.update(queries.standalone_agg_view())
        combined.update(queries.large_view_set())
        views = combined
    database = small_database(scale_factor=scale_factor)
    executor = PhysicalExecutor(database, strict=True)
    result = ExecutionComparisonResult(
        experiment="physical_exec", scale_factor=scale_factor
    )

    def best_time(fn) -> float:
        best = float("inf")
        for _ in range(max(1, repetitions)):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    for name, expression in views.items():
        planning_started = time.perf_counter()
        plan, _ = executor.plan(expression)
        planning_seconds = time.perf_counter() - planning_started
        reference = evaluate(expression, database)
        produced = executor.evaluate(expression)
        if not reference.same_bag(produced):
            raise AssertionError(
                f"physical execution of {name} differs from the interpreter"
            )
        logical_seconds = best_time(lambda: evaluate(expression, database))
        physical_seconds = best_time(lambda: executor.evaluate(expression))
        result.points.append(
            ExecutionComparisonPoint(
                view=name,
                rows=len(reference),
                plan_cost=plan.total_cost(),
                logical_seconds=logical_seconds,
                physical_seconds=physical_seconds,
                planning_seconds=planning_seconds,
            )
        )
    return result


# ------------------------------------------ differential refresh vs interpreter

@dataclass
class RefreshComparisonPoint:
    """One view set's refresh timings under both differential paths."""

    workload: str
    views: int
    rounds: int
    #: Tuples inserted+deleted across all views and rounds (same for both
    #: paths — the differentials are bag-identical by construction).
    changes: int
    interpreted_seconds: float
    vectorized_seconds: float
    #: Whether ``verify_against_recomputation`` passed for every view after
    #: every refresh round, on both paths.
    verified: bool

    @property
    def speedup(self) -> float:
        """Interpreted-differential time over vectorized-engine time."""
        if self.vectorized_seconds <= 0:
            return float("inf")
        return self.interpreted_seconds / self.vectorized_seconds


@dataclass
class RefreshComparisonResult:
    """Vectorized differential engine vs the interpreted differential path."""

    experiment: str
    scale_factor: float
    update_percentage: float
    points: List[RefreshComparisonPoint] = field(default_factory=list)

    @property
    def total_interpreted_seconds(self) -> float:
        """Total interpreted-differential refresh time."""
        return sum(p.interpreted_seconds for p in self.points)

    @property
    def total_vectorized_seconds(self) -> float:
        """Total vectorized-engine refresh time."""
        return sum(p.vectorized_seconds for p in self.points)

    @property
    def overall_speedup(self) -> float:
        """Workload-level refresh speedup of the vectorized engine."""
        if self.total_vectorized_seconds <= 0:
            return float("inf")
        return self.total_interpreted_seconds / self.total_vectorized_seconds

    @property
    def all_verified(self) -> bool:
        """Whether every benchmarked refresh round verified on both paths."""
        return all(p.verified for p in self.points)

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular rendering."""
        return [
            {
                "workload": p.workload,
                "views": p.views,
                "rounds": p.rounds,
                "changes": p.changes,
                "interpreted_ms": p.interpreted_seconds * 1000.0,
                "vectorized_ms": p.vectorized_seconds * 1000.0,
                "speedup": p.speedup,
                "verified": p.verified,
            }
            for p in self.points
        ]


def run_refresh_comparison(
    scale_factor: float = 0.01,
    update_percentage: float = 0.05,
    refresh_rounds: int = 2,
) -> RefreshComparisonResult:
    """Refresh the fig3/fig5 view sets through both differential paths.

    For each view set, the same sequence of update batches is propagated
    twice from identical database copies: once with the interpreted
    ``differentiate`` (the PR-1 refresh path — full computations already
    physical, differentials row-at-a-time and uncached) and once through the
    vectorized :class:`~repro.engine.differential.DifferentialEngine` with
    its per-round shared old-value cache.  After *every* refresh round each
    path's views are verified against recomputation; a point only counts as
    verified if every view passed every time.

    Update batches are generated against a lock-step simulation of the base
    tables, so both paths replay the identical δ+/δ− bags.
    """
    workloads: Dict[str, Dict[str, object]] = {
        "fig3": {**queries.standalone_join_view(), **queries.standalone_agg_view()},
        "fig5": queries.large_view_set(),
    }
    base = small_database(scale_factor=scale_factor)
    result = RefreshComparisonResult(
        experiment="refresh",
        scale_factor=scale_factor,
        update_percentage=update_percentage,
    )

    for workload, views in workloads.items():
        involved = sorted({r for e in views.values() for r in base_relations(e)})
        # Pre-generate one delta batch per refresh round against a base-table
        # simulation evolved in lock step with the measured databases.
        sim = base.copy()
        batches: List[DeltaStore] = []
        for round_number in range(refresh_rounds):
            deltas = uniform_deltas(
                sim, update_percentage, relations=involved, seed=1000 + round_number
            )
            batches.append(deltas)
            for delta in deltas:
                sim.apply_delta(delta)

        timings: Dict[bool, float] = {}
        verified = True
        changes = 0
        for vectorized in (False, True):
            database = base.copy()
            refresher = ViewRefresher(
                database,
                views,
                use_physical=True,
                vectorized_differentials=vectorized,
            )
            refresher.initialize_views()
            elapsed = 0.0
            for deltas in batches:
                started = time.perf_counter()
                report = refresher.refresh(deltas)
                elapsed += time.perf_counter() - started
                verified = verified and all(
                    refresher.verify_against_recomputation().values()
                )
                if vectorized:
                    changes += report.total_changes()
            timings[vectorized] = elapsed

        result.points.append(
            RefreshComparisonPoint(
                workload=workload,
                views=len(views),
                rounds=refresh_rounds,
                changes=changes,
                interpreted_seconds=timings[False],
                vectorized_seconds=timings[True],
                verified=verified,
            )
        )
    return result


# ------------------------------------------------- stream scheduling policies

@dataclass
class StreamPolicyOutcome:
    """What one refresh policy did with the same update stream."""

    policy: str
    flushes: int
    rounds_refreshed: int
    skipped_flushes: int
    #: Base-table tuples entering the refresher (after coalescing, if any).
    base_rows_applied: int
    #: View tuples changed incrementally across all flushes.
    view_rows_changed: int
    #: Views rebuilt by recomputation across all flushes.
    view_recomputations: int
    #: Tuples annihilated by insert/delete coalescing.
    annihilated_rows: int
    #: Wall-clock seconds spent ingesting + refreshing.
    refresh_seconds: float
    #: Whether every view matched recomputation after the final flush.
    verified: bool

    @property
    def rows_propagated(self) -> int:
        """Total refresh traffic: base rows applied + view rows changed."""
        return self.base_rows_applied + self.view_rows_changed


@dataclass
class StreamComparisonResult:
    """Eager per-round refresh vs coalesced deferred refresh on one stream."""

    experiment: str
    scale_factor: float
    update_percentage: float
    rounds: int
    overlap: float
    views: int
    outcomes: Dict[str, StreamPolicyOutcome] = field(default_factory=dict)
    #: Whether the final view bags are identical across the two policies.
    views_identical: bool = False

    @property
    def speedup(self) -> float:
        """Eager refresh wall-clock over coalesced/deferred wall-clock."""
        coalesced = self.outcomes["coalesce"].refresh_seconds
        if coalesced <= 0:
            return float("inf")
        return self.outcomes["eager"].refresh_seconds / coalesced

    @property
    def rows_saved(self) -> int:
        """Refresh traffic avoided by coalescing + deferral."""
        return (
            self.outcomes["eager"].rows_propagated
            - self.outcomes["coalesce"].rows_propagated
        )

    @property
    def all_verified(self) -> bool:
        """Whether both policies' views matched recomputation at the end."""
        return all(o.verified for o in self.outcomes.values())

    def as_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for tabular rendering (deterministic fields only)."""
        return [
            {
                "policy": o.policy,
                "flushes": o.flushes,
                "rounds_refreshed": o.rounds_refreshed,
                "base_rows": o.base_rows_applied,
                "view_rows": o.view_rows_changed,
                "recomputes": o.view_recomputations,
                "annihilated": o.annihilated_rows,
                "verified": o.verified,
            }
            for o in self.outcomes.values()
        ]


def run_stream_comparison(
    scale_factor: float = 0.002,
    update_percentage: float = 0.03,
    rounds: int = 6,
    overlap: float = 0.6,
) -> StreamComparisonResult:
    """Ingest the same update stream under the eager and coalescing policies.

    The stream is the fig3 workload (the stand-alone join view and its
    aggregate sibling) fed ``rounds`` update rounds in which ``overlap`` of
    each round's deletes target the previous round's inserts — warehouse
    churn where coalescing annihilation pays.  Both policies go through
    ``Warehouse.stream()``: *eager* refreshes after every ingest (the
    pre-stream behavior), *coalesce* defers until the scheduler or the final
    ``close()`` flushes.  Final view contents are verified bag-identical
    between the policies (and against recomputation) before any timing
    counts.
    """
    from repro.api import Warehouse, WarehouseConfig
    from repro.workloads.updategen import generate_update_stream

    views = {**queries.standalone_join_view(), **queries.standalone_agg_view()}
    base = small_database(scale_factor=scale_factor)
    involved = sorted({r for e in views.values() for r in base_relations(e)})
    stream_rounds = generate_update_stream(
        base,
        update_percentage,
        rounds,
        relations=involved,
        overlap=overlap,
        seed=4242,
    )

    result = StreamComparisonResult(
        experiment="stream",
        scale_factor=scale_factor,
        update_percentage=update_percentage,
        rounds=rounds,
        overlap=overlap,
        views=len(views),
    )
    finals: Dict[str, Database] = {}
    for policy in ("eager", "coalesce"):
        database = base.copy()
        wh = Warehouse(WarehouseConfig.profile("fast", stream_policy=policy))
        # The paper's pattern: plan against full-scale statistics (where
        # incremental maintenance wins), execute at a small scale factor.
        wh.load(scale=PAPER_SCALE_FACTOR)
        wh.load_data(database=database)
        wh.define_views(views)
        wh.optimize()
        # Materialize the views before timing so both policies start warm.
        wh.apply(0.0)

        started = time.perf_counter()
        with wh.stream(policy) as session:
            for deltas in stream_rounds:
                session.ingest(deltas)
        elapsed = time.perf_counter() - started

        verified = all(wh.verify().values())
        finals[policy] = database
        result.outcomes[policy] = StreamPolicyOutcome(
            policy=policy,
            flushes=len(session.reports),
            rounds_refreshed=sum(r.rounds for r in session.reports),
            skipped_flushes=session.skipped_flushes,
            base_rows_applied=sum(r.base_rows_applied for r in session.reports),
            view_rows_changed=sum(r.total_changes() for r in session.reports),
            view_recomputations=sum(len(r.recomputed_views) for r in session.reports),
            annihilated_rows=session.annihilated_rows,
            refresh_seconds=elapsed,
            verified=verified,
        )

    result.views_identical = all(
        finals["eager"].view(name).same_bag(finals["coalesce"].view(name))
        for name in views
    )
    return result


# --------------------------------------------------------------- §3.3 examples

@dataclass
class SharingExamplesResult:
    """Sanity benches for Examples 3.1 and 3.2 (sharing illustrations)."""

    example_3_1: MqoResult
    example_3_2_no_greedy: float
    example_3_2_greedy: float


def run_sharing_examples(scale_factor: float = PAPER_SCALE_FACTOR) -> SharingExamplesResult:
    """Run the two sharing examples of §3.3 against the TPC-D catalog."""
    catalog = tpcd.tpcd_catalog(scale_factor=scale_factor)
    mqo = MultiQueryOptimizer(catalog)
    example31 = mqo.optimize(queries.example_3_1_queries())

    config = _config(scale_factor)
    optimizer = config.optimizer()
    spec = UpdateSpec.uniform(0.05)
    views = queries.example_3_2_view()
    no_greedy = optimizer.no_greedy(views, spec).total_cost
    greedy = optimizer.optimize(views, spec).total_cost
    return SharingExamplesResult(
        example_3_1=example31,
        example_3_2_no_greedy=no_greedy,
        example_3_2_greedy=greedy,
    )
