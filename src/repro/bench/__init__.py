"""Benchmark harness reproducing the paper's performance study (§7).

:mod:`repro.bench.harness` provides the generic sweep machinery (run Greedy
and NoGreedy for a workload across update percentages and collect the series
a figure plots); :mod:`repro.bench.experiments` instantiates it once per
paper figure/table; :mod:`repro.bench.reporting` renders the results as the
text tables recorded in ``EXPERIMENTS.md``.
"""

from repro.bench.harness import ExperimentConfig, FigurePoint, FigureSeries, run_figure_sweep
from repro.bench.experiments import (
    DEFAULT_UPDATE_PERCENTAGES,
    run_fig3a,
    run_fig3b,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
    run_optimization_cost,
    run_temp_vs_perm,
    run_buffer_size_effect,
    run_sharing_examples,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "ExperimentConfig",
    "FigurePoint",
    "FigureSeries",
    "run_figure_sweep",
    "DEFAULT_UPDATE_PERCENTAGES",
    "run_fig3a",
    "run_fig3b",
    "run_fig4a",
    "run_fig4b",
    "run_fig5a",
    "run_fig5b",
    "run_optimization_cost",
    "run_temp_vs_perm",
    "run_buffer_size_effect",
    "run_sharing_examples",
    "format_series",
    "format_table",
]
