"""Build the API reference into ``docs/api/`` with pdoc.

Usage: ``python docs/build.py`` (the CI docs job runs exactly this).

The generated tree is git-ignored — the committed documentation is the
hand-written [docs/index.md](index.md) plus the docstrings themselves; this
script exists so the docstring surface is continuously checked against the
generator and so a local ``docs/api/index.html`` is one command away.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_DIR = os.path.join(REPO_ROOT, "docs", "api")

#: Modules whose documented surface the build covers: the package root
#: (re-exporting the public API) and the façade/stream packages behind it.
DOCUMENTED_MODULES = ("repro", "repro.api", "repro.stream")


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        import pdoc  # noqa: F401
        import pdoc.__main__
    except ImportError:
        print(
            "pdoc is not installed — `pip install pdoc` to build the API "
            "reference (the hand-written docs/index.md does not need it)."
        )
        return 1
    sys.argv = ["pdoc", *DOCUMENTED_MODULES, "-o", OUTPUT_DIR]
    pdoc.__main__.cli()
    print(f"API reference written to {OUTPUT_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
