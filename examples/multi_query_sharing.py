"""Multi-query optimization: sharing sub-expressions across a query batch.

Reproduces Example 3.1 of the paper: the locally optimal plans of the two
queries share nothing, but a globally optimal choice evaluates one of them
through a non-optimal join order so that ``orders ⋈ customer`` can be
computed once, materialized temporarily, and reused by both.

The batch goes through the :class:`Warehouse` façade
(``optimize_queries``), with the queries written as fluent :class:`Q`
chains; explicit join orders matter here, so each chain spells out its
join sequence.

Run with:  python examples/multi_query_sharing.py
(after ``pip install -e .`` — or with PYTHONPATH=src)
"""

from repro import Q, Warehouse


def main() -> None:
    wh = Warehouse().load(scale=0.1)

    # Q1 = (orders ⋈ customer) ⋈ lineitem, Q2 = (customer ⋈ nation) ⋈ orders:
    # Q2's alternative plan (orders ⋈ customer) ⋈ nation shares a join with Q1.
    batch = {
        "Q1": Q.table("orders").join("customer").join("lineitem"),
        "Q2": Q.table("customer").join("nation").join("orders"),
    }
    result = wh.optimize_queries(batch)

    print("query batch:", ", ".join(batch))
    print(f"cost optimizing each query independently : {result.unshared_cost:10.2f}")
    print(f"cost with shared temporary materializations: {result.optimized_cost:10.2f}")
    print(f"improvement: {result.improvement_ratio:.1%}")
    print()
    print("sub-expressions chosen for temporary materialization:")
    for key in result.materialized_keys or ["(none — sharing did not pay off)"]:
        print(f"  {key}")
    print()
    for name, plan in result.plans.items():
        print(f"plan for {name} (cost {result.query_costs[name]:.2f}):")
        print(plan.pretty(indent=1))
        print()


if __name__ == "__main__":
    main()
