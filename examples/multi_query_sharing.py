"""Multi-query optimization: sharing sub-expressions across a query batch.

Reproduces Example 3.1 of the paper: the locally optimal plans of the two
queries share nothing, but a globally optimal choice evaluates one of them
through a non-optimal join order so that ``orders ⋈ customer`` can be
computed once, materialized temporarily, and reused by both.

Run with:  python examples/multi_query_sharing.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.mqo import MultiQueryOptimizer
from repro.workloads import queries, tpcd


def main() -> None:
    catalog = tpcd.tpcd_catalog(scale_factor=0.1)
    optimizer = MultiQueryOptimizer(catalog)

    batch = queries.example_3_1_queries()
    result = optimizer.optimize(batch)

    print("query batch:", ", ".join(batch))
    print(f"cost optimizing each query independently : {result.unshared_cost:10.2f}")
    print(f"cost with shared temporary materializations: {result.optimized_cost:10.2f}")
    print(f"improvement: {result.improvement_ratio:.1%}")
    print()
    print("sub-expressions chosen for temporary materialization:")
    for key in result.materialized_keys or ["(none — sharing did not pay off)"]:
        print(f"  {key}")
    print()
    for name, plan in result.plans.items():
        print(f"plan for {name} (cost {result.query_costs[name]:.2f}):")
        print(plan.pretty(indent=1))
        print()


if __name__ == "__main__":
    main()
