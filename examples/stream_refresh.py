"""Streaming ingest: coalesce update rounds, refresh when it stops paying.

``Warehouse.apply()`` pays a full refresh per batch; this example feeds the
same churny update stream (every round deletes part of the previous round's
inserts — corrections arriving one batch late) through two
``Warehouse.stream()`` policies:

* ``eager``    — refresh after every ingested round;
* ``coalesce`` — buffer rounds, annihilate insert-then-delete pairs, and
  flush once the cost model or a staleness bound says so.

Both end with bit-identical view contents; the coalescing session gets
there with one refresh instead of six, propagating fewer tuples.

Run with:  python examples/stream_refresh.py
(after ``pip install -e .`` — or with PYTHONPATH=src)
"""

from repro import Q, Warehouse, WarehouseConfig
from repro.workloads.updategen import generate_update_stream

REVENUE_VIEW = (
    Q.table("lineitem").join("orders").join("customer").join("nation")
    .group_by("n_name")
    .sum("l_extendedprice", "revenue")
)


def build_warehouse() -> Warehouse:
    wh = Warehouse(WarehouseConfig.profile("fast"))
    # The paper's pattern: plan against full-scale statistics, execute small.
    wh.load(scale=0.1).load_data(scale=0.002)
    wh.define_view("v_revenue_by_nation", REVENUE_VIEW)
    wh.optimize()
    wh.apply(0.0)  # materialize the view before streaming
    return wh


def main() -> None:
    eager_wh = build_warehouse()
    deferred_wh = build_warehouse()
    # One pre-generated stream, valid for replay from the identical start
    # state: 60% of each round's deletes target the previous round's inserts.
    rounds = generate_update_stream(
        eager_wh.database,
        update_percentage=0.03,
        rounds=6,
        relations=eager_wh.view_relations,
        overlap=0.6,
        seed=7,
    )

    with eager_wh.stream("eager") as eager:
        for deltas in rounds:
            eager.ingest(deltas)
    with deferred_wh.stream() as deferred:  # config default: coalesce
        for deltas in rounds:
            deferred.ingest(deltas)

    print("deferred session decision trace:")
    print(deferred.explain_schedule())
    print()
    print(f"eager    : {len(eager.reports)} flushes, "
          f"{sum(r.base_rows_applied for r in eager.reports)} base rows applied, "
          f"{sum(r.total_changes() for r in eager.reports)} view tuples changed")
    print(f"coalesce : {len(deferred.reports)} flushes, "
          f"{sum(r.base_rows_applied for r in deferred.reports)} base rows applied, "
          f"{sum(r.total_changes() for r in deferred.reports)} view tuples changed "
          f"({deferred.annihilated_rows} annihilated)")
    identical = eager_wh.database.view("v_revenue_by_nation").same_bag(
        deferred_wh.database.view("v_revenue_by_nation")
    )
    print(f"final views identical: {identical}")
    assert identical


if __name__ == "__main__":
    main()
