"""Warehouse refresh, end to end: optimize, then actually run the refresh.

This is the scenario the paper's introduction motivates — a warehouse with a
set of related materialized views and a nightly batch of inserts and deletes
whose maintenance window keeps shrinking.  The script:

1. generates a small executable TPC-D database;
2. materializes five related views (the Figure 4(a) workload);
3. asks the optimizer for maintenance plans (Greedy vs NoGreedy);
4. executes the refresh with the executable engine, applying the optimizer's
   per-view recompute-vs-incremental decisions;
5. verifies that every refreshed view matches recomputation exactly.

Run with:  python examples/warehouse_refresh.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.maintenance import UpdateSpec, ViewMaintenanceOptimizer, ViewRefresher
from repro.workloads import datagen, queries, tpcd
from repro.workloads.updategen import generate_deltas


def main() -> None:
    update_percentage = 0.10

    # --- executable database (small scale factor so the script runs in seconds)
    database = datagen.small_database(
        scale_factor=0.001, seed=7,
        tables=["region", "nation", "supplier", "customer", "orders", "lineitem"],
    )
    views = queries.view_set_plain()

    # --- plan the refresh against the paper-scale statistics
    optimizer = ViewMaintenanceOptimizer(tpcd.tpcd_catalog(scale_factor=0.1))
    spec = UpdateSpec.uniform(update_percentage)
    no_greedy = optimizer.no_greedy(views, spec)
    greedy = optimizer.optimize(views, spec)

    print(f"planned refresh cost: NoGreedy={no_greedy.total_cost:.1f}  Greedy={greedy.total_cost:.1f}")
    print("per-view decisions under the Greedy configuration:")
    for decision in greedy.plan.decisions:
        print(
            f"  {decision.view:24s} -> {decision.strategy:11s} "
            f"(recompute {decision.recompute_cost:8.1f}, incremental {decision.incremental_cost:8.1f})"
        )
    print("indexes chosen:", ", ".join(greedy.indexes) or "(none)")
    print()

    # --- execute the refresh with the decisions the optimizer made
    recompute = [d.view for d in greedy.plan.decisions if d.strategy == "recompute"]
    refresher = ViewRefresher(database, views, recompute_views=recompute)
    refresher.initialize_views()
    relations = ["customer", "lineitem", "nation", "orders", "supplier"]
    deltas = generate_deltas(database, spec.restricted_to(relations), relations, seed=2024)

    report = refresher.refresh(deltas)
    verification = refresher.verify_against_recomputation()

    print(f"refresh propagated {report.total_changes()} view-tuple changes "
          f"across {len(report.steps)} incremental steps;")
    print(f"views refreshed by recomputation: {report.recomputed_views or '(none)'}")
    print("verification against recomputation:")
    for name, ok in verification.items():
        print(f"  {name:24s} {'OK' if ok else 'MISMATCH'}")
    if not all(verification.values()):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
