"""Warehouse refresh, end to end: optimize, then actually run the refresh.

This is the scenario the paper's introduction motivates — a warehouse with a
set of related materialized views and a nightly batch of inserts and deletes
whose maintenance window keeps shrinking.  One :class:`Warehouse` session
owns the whole loop:

1. ``load()``       — the TPC-D planning statistics at the paper's scale;
2. ``define_view`` — five related views (the Figure 4(a) workload), built
   with the fluent :class:`Q` chains;
3. ``optimize()``  — maintenance plans (Greedy vs NoGreedy);
4. ``load_data()`` — a small executable TPC-D database;
5. ``apply()``     — one transactional update+refresh step executing the
   optimizer's per-view recompute-vs-incremental decisions;
6. the ``verify`` profile checks every refreshed view against recomputation.

Run with:  python examples/warehouse_refresh.py
(after ``pip install -e .`` — or with PYTHONPATH=src)
"""

from repro import Q, Warehouse, WarehouseConfig


def main() -> None:
    update_percentage = 0.10

    # The "verify" profile makes apply() cross-check every differential
    # against the interpreted oracle and every refreshed view against full
    # recomputation — any divergence raises and rolls the batch back.
    wh = Warehouse(WarehouseConfig.profile("verify", update_percentage=update_percentage))
    wh.load(scale=0.1)

    wh.define_views({
        "v_cust_orders": Q.table("orders").join("customer"),
        "v_cust_order_lines": Q.table("lineitem").join("orders").join("customer"),
        "v_cust_order_nations": (
            Q.table("lineitem").join("orders").join("customer").join("nation")
        ),
        "v_order_nations": Q.table("orders").join("customer").join("nation"),
        "v_supplier_lines": Q.table("lineitem").join("supplier").join("nation"),
    })

    # --- plan the refresh against the paper-scale statistics
    no_greedy = wh.optimize(greedy=False)
    greedy = wh.optimize(greedy=True)

    print(f"planned refresh cost: NoGreedy={no_greedy.total_cost:.1f}  Greedy={greedy.total_cost:.1f}")
    print("per-view decisions under the Greedy configuration:")
    for decision in greedy.plan.decisions:
        print(
            f"  {decision.view:24s} -> {decision.strategy:11s} "
            f"(recompute {decision.recompute_cost:8.1f}, incremental {decision.incremental_cost:8.1f})"
        )
    print("indexes chosen:", ", ".join(greedy.indexes) or "(none)")
    print()

    # --- execute the refresh on a small generated database (seconds, not hours)
    wh.load_data(
        scale=0.001, seed=7,
        tables=["region", "nation", "supplier", "customer", "orders", "lineitem"],
    )
    report = wh.apply(update_percentage)

    print(f"refresh propagated {report.total_changes()} view-tuple changes "
          f"across {len(report.steps)} incremental steps;")
    print(f"views refreshed by recomputation: {report.recomputed_views or '(none)'}")
    # Under the "verify" profile a mismatch never reaches this point:
    # apply() rolls the batch back and raises WarehouseError instead.
    assert report.verified
    print("verification against recomputation:")
    for name in report.verification:
        print(f"  {name:24s} OK")


if __name__ == "__main__":
    main()
