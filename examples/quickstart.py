"""Quickstart: optimize the maintenance of one warehouse view.

Builds the TPC-D catalog at the paper's scale factor, defines a single
materialized view (a join of four relations with an aggregation on top),
and compares the two algorithms of the paper for a 5% update batch:

* ``NoGreedy`` — plain optimizer choice between recomputing the view and
  propagating differentials;
* ``Greedy``   — additionally selects extra results and indexes to
  materialize, temporarily or permanently, to speed the refresh up.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.maintenance import UpdateSpec, ViewMaintenanceOptimizer
from repro.workloads import queries, tpcd


def main() -> None:
    # 1. The catalog: TPC-D at scale factor 0.1 (~100 MB), PK indexes present.
    catalog = tpcd.tpcd_catalog(scale_factor=0.1)

    # 2. The materialized view to maintain: revenue per nation.
    views = queries.standalone_agg_view()

    # 3. The update batch: 5% inserts and 2.5% deletes on every relation.
    spec = UpdateSpec.uniform(0.05)

    optimizer = ViewMaintenanceOptimizer(catalog)
    no_greedy = optimizer.no_greedy(views, spec)
    greedy = optimizer.optimize(views, spec)

    print("view:", ", ".join(views))
    print(f"update batch: {spec.describe()}")
    print()
    print(f"NoGreedy refresh cost : {no_greedy.total_cost:10.2f} (estimated seconds)")
    print(f"Greedy refresh cost   : {greedy.total_cost:10.2f}")
    print(f"benefit ratio         : {no_greedy.total_cost / greedy.total_cost:10.2f}x")
    print()
    decision = greedy.plan.decisions[0]
    print(f"chosen strategy for {decision.view}: {decision.strategy}")
    print(f"  recompute cost  : {decision.recompute_cost:.2f}")
    print(f"  incremental cost: {decision.incremental_cost:.2f}")
    print()
    print("extra materializations chosen by Greedy:")
    for label in greedy.permanent_results:
        print(f"  permanent result : {label}")
    for label in greedy.temporary_results:
        print(f"  temporary result : {label}")
    for label in greedy.indexes:
        print(f"  index            : {label}")
    print()
    print(f"optimization took {greedy.optimization_seconds*1000:.0f} ms")


if __name__ == "__main__":
    main()
