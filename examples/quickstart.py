"""Quickstart: optimize the maintenance of one warehouse view.

Everything goes through the public façade (:mod:`repro.api`): a
:class:`Warehouse` session loads the TPC-D statistics at the paper's scale
factor, a fluent :class:`Q` chain defines a single materialized view
(revenue per nation over a four-relation join), and the two algorithms of
the paper are compared for a 5% update batch:

* ``NoGreedy`` — plain optimizer choice between recomputing the view and
  propagating differentials;
* ``Greedy``   — additionally selects extra results and indexes to
  materialize, temporarily or permanently, to speed the refresh up.

Run with:  python examples/quickstart.py
(after ``pip install -e .`` — or with PYTHONPATH=src)
"""

from repro import Q, Warehouse, WarehouseConfig


def main() -> None:
    # One session object owns catalog, estimator, optimizer and refresher.
    # The "paper" profile reproduces the paper's setting: TPC-D statistics,
    # primary-key indexes predeclared, a 5% update batch with twice as many
    # inserts as deletes.
    wh = Warehouse(WarehouseConfig.profile("paper")).load(scale=0.1)

    # The materialized view to maintain: revenue per nation.
    wh.define_view(
        "v_revenue_by_nation",
        Q.table("lineitem").join("orders").join("customer").join("nation")
         .group_by("n_name")
         .sum("l_extendedprice", "revenue")
         .count("order_lines"),
    )

    no_greedy = wh.optimize(greedy=False)
    greedy = wh.optimize(greedy=True)

    print("view:", ", ".join(wh.views))
    print(f"update batch: {wh.update_spec().describe()}")
    print()
    print(f"NoGreedy refresh cost : {no_greedy.total_cost:10.2f} (estimated seconds)")
    print(f"Greedy refresh cost   : {greedy.total_cost:10.2f}")
    print(f"benefit ratio         : {no_greedy.total_cost / greedy.total_cost:10.2f}x")
    print()
    print("extra materializations chosen by Greedy:")
    for label in greedy.permanent_results:
        print(f"  permanent result : {label}")
    for label in greedy.temporary_results:
        print(f"  temporary result : {label}")
    for label in greedy.indexes:
        print(f"  index            : {label}")
    print()
    print(wh.explain("v_revenue_by_nation"))
    print()
    print(f"optimization took {greedy.optimization_seconds*1000:.0f} ms")


if __name__ == "__main__":
    main()
