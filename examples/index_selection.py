"""Index selection for view maintenance (the Figure 5(b) scenario).

The paper observes that when no indexes exist initially, its algorithm
selects all the indexes view maintenance needs, so the final plan cost is
essentially the same as when primary-key indexes were there from the start.
This script demonstrates that behaviour on the 10-view workload and prints
which indexes were chosen.

Run with:  python examples/index_selection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.maintenance import UpdateSpec, ViewMaintenanceOptimizer
from repro.workloads import queries, tpcd


def run(with_pk_indexes: bool, spec: UpdateSpec):
    catalog = tpcd.tpcd_catalog(scale_factor=0.1, with_pk_indexes=with_pk_indexes)
    optimizer = ViewMaintenanceOptimizer(catalog)
    views = queries.large_view_set()
    return optimizer.no_greedy(views, spec), optimizer.optimize(views, spec)


def main() -> None:
    spec = UpdateSpec.uniform(0.05)

    print("=== with primary-key indexes predefined (Figure 5a setting)")
    no_greedy_a, greedy_a = run(True, spec)
    print(f"  NoGreedy={no_greedy_a.total_cost:8.1f}   Greedy={greedy_a.total_cost:8.1f}   "
          f"indexes chosen: {len(greedy_a.indexes)}")

    print("=== with no indexes initially (Figure 5b setting)")
    no_greedy_b, greedy_b = run(False, spec)
    print(f"  NoGreedy={no_greedy_b.total_cost:8.1f}   Greedy={greedy_b.total_cost:8.1f}   "
          f"indexes chosen: {len(greedy_b.indexes)}")
    for label in greedy_b.indexes:
        print(f"    {label}")

    ratio = greedy_b.total_cost / greedy_a.total_cost
    print()
    print(f"Greedy plan cost without initial indexes is {ratio:.2f}x the cost with them —")
    print("all the indexes maintenance needs were selected for materialization,")
    print(f"while the baseline got {no_greedy_b.total_cost / no_greedy_a.total_cost:.2f}x more expensive.")


if __name__ == "__main__":
    main()
