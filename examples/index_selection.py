"""Index selection for view maintenance (the Figure 5(b) scenario).

The paper observes that when no indexes exist initially, its algorithm
selects all the indexes view maintenance needs, so the final plan cost is
essentially the same as when primary-key indexes were there from the start.
This script demonstrates that behaviour on the 10-view workload and prints
which indexes were chosen.  The ``with_pk_indexes`` knob of
:class:`WarehouseConfig` switches between the two settings; the 10 views
are the same fluent :class:`Q` chains either way.

Run with:  python examples/index_selection.py
(after ``pip install -e .`` — or with PYTHONPATH=src)
"""

from repro import Q, Warehouse, WarehouseConfig

#: The Figure 5 workload: ten views, each a join of 3–4 TPC-D relations.
LARGE_VIEW_SET = {
    "v01_order_lines": ["lineitem", "orders", "customer"],
    "v02_order_nations": ["lineitem", "orders", "customer", "nation"],
    "v03_customer_orders": ["orders", "customer", "nation"],
    "v04_supplier_lines": ["lineitem", "supplier", "nation"],
    "v05_part_supply": ["partsupp", "part", "supplier"],
    "v06_part_lines": ["lineitem", "part", "orders"],
    "v07_supply_regions": ["supplier", "nation", "region"],
    "v08_customer_regions": ["customer", "nation", "region"],
    "v09_supply_lines": ["lineitem", "partsupp", "supplier"],
    "v10_order_parts": ["lineitem", "orders", "part"],
}


def build_views():
    views = {}
    for name, relations in LARGE_VIEW_SET.items():
        chain = Q.table(relations[0])
        for relation in relations[1:]:
            chain = chain.join(relation)
        views[name] = chain
    # Guard against drift from the canonical Figure 5 workload definition:
    # the Q chains above must stay equivalent to it, or the printed numbers
    # would stop corresponding to the fig5 benchmarks.
    from repro.workloads import queries

    canonical = queries.large_view_set()
    assert {n: q.build() for n, q in views.items()} == canonical
    return views


def run(with_pk_indexes: bool):
    config = WarehouseConfig.profile("paper", with_pk_indexes=with_pk_indexes)
    wh = Warehouse(config).load(scale=0.1).define_views(build_views())
    return wh.optimize(greedy=False), wh.optimize(greedy=True)


def main() -> None:
    print("=== with primary-key indexes predefined (Figure 5a setting)")
    no_greedy_a, greedy_a = run(True)
    print(f"  NoGreedy={no_greedy_a.total_cost:8.1f}   Greedy={greedy_a.total_cost:8.1f}   "
          f"indexes chosen: {len(greedy_a.indexes)}")

    print("=== with no indexes initially (Figure 5b setting)")
    no_greedy_b, greedy_b = run(False)
    print(f"  NoGreedy={no_greedy_b.total_cost:8.1f}   Greedy={greedy_b.total_cost:8.1f}   "
          f"indexes chosen: {len(greedy_b.indexes)}")
    for label in greedy_b.indexes:
        print(f"    {label}")

    ratio = greedy_b.total_cost / greedy_a.total_cost
    print()
    print(f"Greedy plan cost without initial indexes is {ratio:.2f}x the cost with them —")
    print("all the indexes maintenance needs were selected for materialization,")
    print(f"while the baseline got {no_greedy_b.total_cost / no_greedy_a.total_cost:.2f}x more expensive.")


if __name__ == "__main__":
    main()
