"""Pytest bootstrap: make the ``src`` layout importable without installation.

The canonical way to use the package is ``pip install -e .``; this shim only
exists so the test and benchmark suites also run in fully offline
environments where editable installs are unavailable (pip cannot fetch the
``wheel`` build dependency there).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
